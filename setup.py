"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments whose setuptools
lacks the ``wheel`` package (pip then falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
