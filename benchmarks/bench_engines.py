#!/usr/bin/env python
"""Scalar vs bit-parallel engine throughput; writes ``BENCH_engines.json``.

Measures the two workloads the compiled two-plane engine
(:mod:`repro.circuits.compiled`) was built for and records the speedup
trajectory so regressions are visible across PRs:

1. **Exhaustive two-sort verification** -- all ``|S^B_rg|^2`` valid
   pairs through the paper's ``2-sort(B)`` netlist.

   * scalar: the reference one-trit-per-net interpreter
     (:func:`repro.circuits.evaluate.evaluate_interpreted`) per pair,
     each output compared against the Table 2 order spec.  The full
     domain takes ~a minute at B = 8, so the scalar side is timed on a
     deterministic sample of pairs and its full-domain time is
     extrapolated from the measured per-pair rate (reported as such).
   * compiled: :func:`repro.verify.exhaustive.verify_two_sort_circuit`,
     which runs the *entire* domain in plane space -- measured for
     real, no extrapolation.

2. **Sorting-network simulation** -- a seeded measurement workload
   through the 10-channel size-optimal network: per-vector gate-level
   engine (``sort_words(engine="circuit")``) vs the batched compiled
   path (``sort_words_batch``).

Throughput is reported in **gate-visits per second** (gates x vectors /
time), the metric that is invariant to circuit size.

Usage::

    PYTHONPATH=src python benchmarks/bench_engines.py            # full (B=8)
    PYTHONPATH=src python benchmarks/bench_engines.py --quick    # CI smoke (B=5)

The JSON artifact lands at the repository root (``BENCH_engines.json``)
unless ``--output`` says otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.circuits.compiled import compile_circuit  # noqa: E402
from repro.circuits.evaluate import evaluate_interpreted  # noqa: E402
from repro.core.two_sort import build_two_sort  # noqa: E402
from repro.graycode.ops import two_sort_order  # noqa: E402
from repro.graycode.valid import all_valid_strings  # noqa: E402
from repro.networks.simulate import sort_words, sort_words_batch  # noqa: E402
from repro.networks.topologies import SORT10_SIZE  # noqa: E402
from repro.ternary.word import Word  # noqa: E402
from repro.verify.exhaustive import verify_two_sort_circuit  # noqa: E402
from repro.verify.parallel import verify_two_sort_sharded  # noqa: E402
from repro.verify.random_valid import measurement_sweep  # noqa: E402


def bench_exhaustive_verification(width: int, scalar_sample: int) -> dict:
    """Scalar (sampled + extrapolated) vs compiled (full domain)."""
    circuit = build_two_sort(width)
    gates = circuit.gate_count()
    strings = all_valid_strings(width)
    total_pairs = len(strings) ** 2

    # Deterministic sample: stride through the pair domain.
    sample = min(scalar_sample, total_pairs)
    stride = max(1, total_pairs // sample)
    indices = range(0, total_pairs, stride)
    inputs_of = circuit.inputs
    t0 = time.perf_counter()
    checked = 0
    for idx in indices:
        g = strings[idx // len(strings)]
        h = strings[idx % len(strings)]
        values = evaluate_interpreted(
            circuit, dict(zip(inputs_of, list(g) + list(h)))
        )
        out = Word([values[n] for n in circuit.outputs])
        want = two_sort_order(g, h)
        assert (out[:width], out[width:]) == want, (g, h)
        checked += 1
    scalar_time = time.perf_counter() - t0
    scalar_rate = checked / scalar_time
    scalar_full_time = total_pairs / scalar_rate

    # Compiled: the real thing, full domain, warm compile cache excluded
    # from the first timing by compiling up front.
    compile_circuit(circuit)
    t0 = time.perf_counter()
    result = verify_two_sort_circuit(circuit, width)
    compiled_time = time.perf_counter() - t0
    assert result.ok and result.checked == total_pairs, result.summary()

    return {
        "width": width,
        "gates": gates,
        "pairs": total_pairs,
        "scalar": {
            "pairs_measured": checked,
            "sampled": checked < total_pairs,
            "time_s": round(scalar_time, 4),
            "full_domain_time_s_extrapolated": round(scalar_full_time, 2),
            "pairs_per_s": round(scalar_rate, 1),
            "gate_visits_per_s": round(scalar_rate * gates, 1),
        },
        "compiled": {
            "pairs_measured": total_pairs,
            "sampled": False,
            "time_s": round(compiled_time, 4),
            "pairs_per_s": round(total_pairs / compiled_time, 1),
            "gate_visits_per_s": round(total_pairs / compiled_time * gates, 1),
        },
        "speedup": round(scalar_full_time / compiled_time, 1),
    }


def bench_network_simulation(width: int, vectors: int) -> dict:
    """Per-vector gate-level engine vs the batched compiled path."""
    network = SORT10_SIZE
    workload = measurement_sweep(
        width, network.channels, vectors, meta_rate=0.3, seed=2018
    )
    comparators = network.size
    gates = build_two_sort(width).gate_count() * comparators

    # Warm both caches (netlist + compiled program) outside the timers.
    # The "circuit" engine is the scalar reference interpreter.
    sort_words(network, workload[0], engine="circuit")
    sort_words_batch(network, workload[:1])

    scalar_vectors = workload[: max(4, vectors // 8)]
    t0 = time.perf_counter()
    scalar_out = [
        sort_words(network, v, engine="circuit") for v in scalar_vectors
    ]
    scalar_time = time.perf_counter() - t0
    scalar_rate = len(scalar_vectors) / scalar_time

    t0 = time.perf_counter()
    batch_out = sort_words_batch(network, workload)
    compiled_time = time.perf_counter() - t0
    compiled_rate = len(workload) / compiled_time

    assert batch_out[: len(scalar_out)] == scalar_out

    return {
        "width": width,
        "network": network.name,
        "comparators": comparators,
        "vectors": len(workload),
        "scalar": {
            "vectors_measured": len(scalar_vectors),
            "time_s": round(scalar_time, 4),
            "vectors_per_s": round(scalar_rate, 1),
            "gate_visits_per_s": round(scalar_rate * gates, 1),
        },
        "compiled": {
            "vectors_measured": len(workload),
            "time_s": round(compiled_time, 4),
            "vectors_per_s": round(compiled_rate, 1),
            "gate_visits_per_s": round(compiled_rate * gates, 1),
        },
        "speedup": round(compiled_rate / scalar_rate, 1),
    }


def bench_plane_backends(
    width: int, repeats: int = 3, parity_width: int = 0
) -> dict:
    """Exhaustive-verification wall clock per plane backend.

    Sweeps the registered backends (``bigint`` big-int planes vs
    ``array`` lane-word planes) over the identical full pair domain,
    plus the stdlib ``array`` fallback variant explicitly when numpy is
    importable (CI covers it by uninstalling numpy; here it is recorded
    for the trajectory).  Each entry asserts bit-identical counts and
    reports best-of-``repeats`` -- the ``vs_bigint`` ratio is the
    acceptance metric (array must stay within 2x of bigint).

    When ``parity_width`` is set (full mode), an extra array-vs-bigint
    row runs at that width.  Below ~B=8 the array backend is known
    slower than bigint -- per-ufunc dispatch dominates when shards are
    a few words wide (documented in :mod:`repro.backends.array_backend`)
    -- so the tightened acceptance bound is near-parity at B>=10, where
    slab width amortizes dispatch.
    """
    from repro.backends import ArrayBackend, get_backend, numpy_disabled_by_env

    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None

    circuit = build_two_sort(width)
    total_pairs = len(all_valid_strings(width)) ** 2

    candidates = [
        ("bigint", get_backend("bigint")),
        ("array", get_backend("array")),
    ]
    array_be = get_backend("array")
    if getattr(array_be, "uses_numpy", False):
        # The dependency-free fallback, timed alongside for the record.
        candidates.append(("array-fallback", ArrayBackend(use_numpy=False)))

    backends = {}
    best_times = {}
    for label, be in candidates:
        compile_circuit(circuit, be)  # warm the program cache
        best = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = verify_two_sort_circuit(circuit, width, backend=be)
            elapsed = time.perf_counter() - t0
            assert result.ok and result.checked == total_pairs, result.summary()
            best = elapsed if best is None else min(best, elapsed)
        best_times[label] = best
        backends[label] = {
            "variant": getattr(be, "variant", label),
            "time_s": round(best, 4),
            "pairs_per_s": round(total_pairs / best, 1),
        }
    for label, entry in backends.items():
        # Ratio from the unrounded times: sub-millisecond runs would
        # otherwise quantize (or divide by a rounded-to-zero baseline).
        entry["vs_bigint"] = round(
            best_times[label] / best_times["bigint"], 2
        )

    section = {
        "width": width,
        "pairs": total_pairs,
        "numpy": {
            "available": numpy_version is not None,
            "version": numpy_version,
            "disabled_by_env": numpy_disabled_by_env(),
        },
        "backends": backends,
    }

    if parity_width and numpy_version is not None:
        parity_circuit = build_two_sort(parity_width)
        times = {}
        for label in ("bigint", "array"):
            be = get_backend(label)
            compile_circuit(parity_circuit, be)
            best = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                result = verify_two_sort_circuit(
                    parity_circuit, parity_width, backend=be
                )
                elapsed = time.perf_counter() - t0
                assert result.ok, result.summary()
                best = elapsed if best is None else min(best, elapsed)
            times[label] = best
        section["parity"] = {
            "width": parity_width,
            "bigint_time_s": round(times["bigint"], 4),
            "array_time_s": round(times["array"], 4),
            "array_vs_bigint": round(times["array"] / times["bigint"], 2),
        }

    return section


def bench_native_backend(
    width: int, large_width: int = 0, repeats: int = 3
) -> dict:
    """One-call C kernel vs big-int planes on the exhaustive sweep.

    The acceptance metric for the native backend: best-of-``repeats``
    single-core wall clock of the identical sharded serial sweep under
    ``bigint`` and ``native``, with the reports asserted byte-identical.
    ``speedup_vs_bigint`` is gated by ``main`` (>=10x full, >=5x quick
    -- both at B=8; the native sweep is milliseconds, so quick mode
    affords the real width).  When ``large_width`` is set (full mode),
    a second row demonstrates the raised exhaustive cap at B=12 --
    single repeat, the bigint side alone takes tens of seconds there.

    On hosts where the kernel cannot build, the section records the
    fallback reason and no timings; the gate is skipped (the fallback
    path's behavior is covered by the equivalence tests, not by perf).
    """
    from repro.backends import get_backend, resolve_backend_name

    native = get_backend("native")
    built = bool(getattr(native, "built", False))
    section = {
        "width": width,
        "built": built,
        "variant": getattr(native, "variant", None),
        "auto_resolves_to": resolve_backend_name("auto"),
    }
    if not built:
        from repro.backends._kernel import load_failure_reason

        section["fallback_reason"] = load_failure_reason()
        return section

    def run(w: int, backend: str, reps: int):
        circuit = build_two_sort(w)
        compile_circuit(circuit, get_backend(backend))
        total = len(all_valid_strings(w)) ** 2
        best, report = None, None
        for _ in range(reps):
            t0 = time.perf_counter()
            result = verify_two_sort_sharded(
                circuit, w, jobs=1, executor="serial", backend=backend
            )
            elapsed = time.perf_counter() - t0
            assert result.ok and result.checked == total, result.summary()
            best = elapsed if best is None else min(best, elapsed)
            report = result.to_json()
        return best, report, total

    b_time, b_report, pairs = run(width, "bigint", repeats)
    n_time, n_report, _ = run(width, "native", repeats)
    section.update(
        {
            "pairs": pairs,
            "bigint_time_s": round(b_time, 4),
            "native_time_s": round(n_time, 4),
            "native_pairs_per_s": round(pairs / n_time, 1),
            "speedup_vs_bigint": round(b_time / n_time, 2),
            "reports_identical": b_report == n_report,
        }
    )

    if large_width:
        b_time, b_report, pairs = run(large_width, "bigint", 1)
        n_time, n_report, _ = run(large_width, "native", 1)
        section["large"] = {
            "width": large_width,
            "pairs": pairs,
            "bigint_time_s": round(b_time, 4),
            "native_time_s": round(n_time, 4),
            "native_pairs_per_s": round(pairs / n_time, 1),
            "speedup_vs_bigint": round(b_time / n_time, 2),
            "reports_identical": b_report == n_report,
        }

    return section


def bench_parallel_verification(width: int, jobs_list) -> dict:
    """Worker-count scaling of the sharded exhaustive sweep.

    Every row -- the serial baseline included -- runs the *same* shard
    set (one shard size, computed for the largest worker count), so the
    curve isolates pool/parallelism effects from shard-size effects.
    Each entry asserts bit-identical verification counts.  Speedups are
    honest wall-clock ratios -- on a single-core host the pool overhead
    makes them <= 1, which is exactly what the recorded ``cpu_count``
    explains.
    """
    import os

    from repro.verify.parallel import _default_pair_shard_size

    circuit = build_two_sort(width)
    compile_circuit(circuit)  # warm the program cache outside the timers
    total_pairs = len(all_valid_strings(width)) ** 2
    shard_size = _default_pair_shard_size(width, max(jobs_list))

    t0 = time.perf_counter()
    baseline = verify_two_sort_sharded(
        circuit, width, jobs=1, shard_size=shard_size, executor="serial"
    )
    serial_time = time.perf_counter() - t0
    assert baseline.ok and baseline.checked == total_pairs

    workers = []
    for jobs in jobs_list:
        t0 = time.perf_counter()
        result = verify_two_sort_sharded(
            circuit, width, jobs=jobs, shard_size=shard_size,
            executor="process",
        )
        elapsed = time.perf_counter() - t0
        assert result.ok and result.checked == baseline.checked
        workers.append(
            {
                "jobs": jobs,
                "checked": result.checked,
                "time_s": round(elapsed, 4),
                "speedup_vs_serial": round(serial_time / elapsed, 2),
            }
        )

    return {
        "width": width,
        "pairs": total_pairs,
        "cpu_count": os.cpu_count(),
        "shard_size": shard_size,
        "serial_time_s": round(serial_time, 4),
        "workers": workers,
    }


def bench_distributed_verification(width: int, workers_list) -> dict:
    """Throughput of the socket work-queue executor on localhost.

    Runs the exhaustive sweep through a real :class:`ShardCoordinator`
    (ephemeral port) with N in-process worker agents attached -- the
    full wire protocol (lease, heartbeat, pickle transport, in-order
    merge), minus actual network distance.  Counts are asserted
    bit-identical to the serial baseline for every worker count; on a
    single-core host the numbers show protocol overhead, not speedup,
    which the recorded ``cpu_count`` explains (the execution itself is
    the same engine the ``parallel_verification`` section measures).
    """
    import os
    import threading

    from repro.distributed import ShardCoordinator, ShardWorker, use_coordinator
    from repro.verify.parallel import _default_pair_shard_size

    circuit = build_two_sort(width)
    compile_circuit(circuit)
    total_pairs = len(all_valid_strings(width)) ** 2
    shard_size = _default_pair_shard_size(width, max(workers_list))

    t0 = time.perf_counter()
    baseline = verify_two_sort_sharded(
        circuit, width, jobs=1, shard_size=shard_size, executor="serial"
    )
    serial_time = time.perf_counter() - t0
    assert baseline.ok and baseline.checked == total_pairs

    rows = []
    for workers in workers_list:
        coordinator = ShardCoordinator(host="127.0.0.1", port=0).start()
        stop = threading.Event()
        agents = [
            ShardWorker("127.0.0.1", coordinator.port, name=f"bench{i}")
            for i in range(workers)
        ]
        threads = [
            threading.Thread(target=a.run, args=(stop,), daemon=True)
            for a in agents
        ]
        for t in threads:
            t.start()
        try:
            with use_coordinator(coordinator):
                t0 = time.perf_counter()
                result = verify_two_sort_sharded(
                    circuit, width, shard_size=shard_size,
                    executor="distributed",
                )
                elapsed = time.perf_counter() - t0
        finally:
            stop.set()
            stats = coordinator.stats()
            coordinator.close()
            for t in threads:
                t.join(timeout=10)
        assert result.ok and result.checked == baseline.checked
        shards = stats["batches"][-1]["tasks"] if stats["batches"] else 0
        rows.append(
            {
                "workers": workers,
                "checked": result.checked,
                "shards": shards,
                "time_s": round(elapsed, 4),
                "shards_per_s": round(shards / elapsed, 1) if elapsed else None,
                "speedup_vs_serial": round(serial_time / elapsed, 2),
            }
        )

    return {
        "width": width,
        "pairs": total_pairs,
        "cpu_count": os.cpu_count(),
        "shard_size": shard_size,
        "serial_time_s": round(serial_time, 4),
        "transport": "json-lines TCP work queue (localhost)",
        "workers": rows,
    }


def bench_fault_tolerance(width: int) -> dict:
    """Cost of durability and the payoff of shard-range leases.

    * ``checkpoint``: the identical serial sweep bare, journaling every
      shard through :class:`SweepCheckpoint` (fsync per record), and
      then resumed from the finished journal.  The resume executes zero
      shards -- its wall clock is pure journal replay plus merge -- and
      must still produce a bit-identical report.
    * ``range_leases``: the distributed sweep against a coordinator
      capped at one shard per lease RPC vs the default adaptive range
      (``max_range=32``).  The RPC counts show the amortization; the
      wall clocks show what it buys even on a localhost wire.
    """
    import os
    import tempfile
    import threading

    from repro.distributed import ShardCoordinator, ShardWorker, use_coordinator
    from repro.distributed.checkpoint import SweepCheckpoint
    from repro.verify.parallel import _default_pair_shard_size

    circuit = build_two_sort(width)
    compile_circuit(circuit)
    total_pairs = len(all_valid_strings(width)) ** 2
    shard_size = _default_pair_shard_size(width, 4)

    t0 = time.perf_counter()
    baseline = verify_two_sort_sharded(
        circuit, width, jobs=1, shard_size=shard_size, executor="serial"
    )
    bare_time = time.perf_counter() - t0
    assert baseline.ok and baseline.checked == total_pairs

    with tempfile.TemporaryDirectory() as tmp:
        journal_path = os.path.join(tmp, "bench.jsonl")
        with SweepCheckpoint(journal_path) as journal:
            t0 = time.perf_counter()
            checkpointed = verify_two_sort_sharded(
                circuit, width, jobs=1, shard_size=shard_size,
                executor="serial", cache=journal,
            )
            journal_time = time.perf_counter() - t0
            shards = len(journal)
        assert checkpointed.to_json() == baseline.to_json()

        with SweepCheckpoint(journal_path) as journal:
            t0 = time.perf_counter()
            resumed = verify_two_sort_sharded(
                circuit, width, jobs=1, shard_size=shard_size,
                executor="serial", cache=journal,
            )
            resume_time = time.perf_counter() - t0
            resume_hits = journal.hits
        assert resumed.to_json() == baseline.to_json()
        assert resume_hits == shards, (resume_hits, shards)

    checkpoint = {
        "shards": shards,
        "bare_time_s": round(bare_time, 4),
        "journaled_time_s": round(journal_time, 4),
        "journal_overhead_x": round(journal_time / bare_time, 2),
        "resume_time_s": round(resume_time, 4),
        "resume_shards_recomputed": shards - resume_hits,
    }

    rows = []
    for max_range in (1, 32):
        coordinator = ShardCoordinator(
            host="127.0.0.1", port=0, max_range=max_range
        ).start()
        stop = threading.Event()
        agent = ShardWorker("127.0.0.1", coordinator.port, name="bench-ft")
        thread = threading.Thread(target=agent.run, args=(stop,), daemon=True)
        thread.start()
        try:
            with use_coordinator(coordinator):
                t0 = time.perf_counter()
                result = verify_two_sort_sharded(
                    circuit, width, shard_size=shard_size,
                    executor="distributed",
                )
                elapsed = time.perf_counter() - t0
        finally:
            stop.set()
            stats = coordinator.stats()
            coordinator.close()
            thread.join(timeout=10)
        assert result.ok and result.checked == baseline.checked
        rows.append(
            {
                "max_range": max_range,
                "shards": stats["tasks_leased_total"],
                "lease_rpcs": stats["lease_rpcs_total"],
                "time_s": round(elapsed, 4),
            }
        )
    amortization = (
        round(rows[0]["lease_rpcs"] / rows[1]["lease_rpcs"], 1)
        if rows[1]["lease_rpcs"]
        else None
    )

    return {
        "width": width,
        "pairs": total_pairs,
        "shard_size": shard_size,
        "checkpoint": checkpoint,
        "range_leases": {
            "rows": rows,
            "rpc_amortization_x": amortization,
        },
    }


def bench_verification_store(width: int) -> dict:
    """Cold vs warm store sweeps and the one-gate-edit incremental cost.

    * ``cold`` vs ``warm``: the identical serial sweep against a fresh
      WAL-sqlite store and then again against the populated store.  The
      warm run must execute **zero** shards (``puts == 0``) and still
      produce a bit-identical report -- its wall clock is pure lookup
      plus merge.
    * ``incremental``: a double-INV splice on one output (functionally
      identity, structurally a new netlist) re-verified against the warm
      store.  Per-region hashing means only the edited cone's shards
      re-execute; everything else is a region hit.
    * ``journal_cold``: the same cold sweep through the JSON-lines
      backend, so the sqlite-vs-journal write cost is on the record.
    """
    import os
    import tempfile

    from repro.circuits.gates import INV
    from repro.store import open_store
    from repro.verify.parallel import _default_pair_shard_size

    circuit = build_two_sort(width)
    compile_circuit(circuit)
    total_pairs = len(all_valid_strings(width)) ** 2
    regions = 2 * width
    shard_size = _default_pair_shard_size(width, 4)

    t0 = time.perf_counter()
    baseline = verify_two_sort_sharded(
        circuit, width, jobs=1, shard_size=shard_size, executor="serial"
    )
    bare_time = time.perf_counter() - t0
    assert baseline.ok and baseline.checked == total_pairs

    # Functionally-identity structural edit confined to one output cone.
    edited = circuit.copy()
    root = edited.outputs[3]
    n1 = edited.add_gate(INV, [root], output="__bench_inv0")
    n2 = edited.add_gate(INV, [n1], output="__bench_inv1")
    edited.replace_output(3, n2)

    def sweep(target, store):
        before = dict(store.counters())
        t0 = time.perf_counter()
        result = verify_two_sort_sharded(
            target, width, jobs=1, shard_size=shard_size,
            executor="serial", store=store,
        )
        elapsed = time.perf_counter() - t0
        assert result.ok and result.checked == total_pairs
        after = store.counters()
        delta = {k: after[k] - before.get(k, 0) for k in ("hits", "misses", "puts")}
        return result, elapsed, delta

    with tempfile.TemporaryDirectory() as tmp:
        with open_store(os.path.join(tmp, "bench.db")) as store:
            cold, cold_time, cold_io = sweep(circuit, store)
            assert cold.to_json() == baseline.to_json()
            warm, warm_time, warm_io = sweep(circuit, store)
            assert warm.to_json() == baseline.to_json()
            inc, inc_time, inc_io = sweep(edited, store)
            runs = store.runs()
            digests = [r.result_digest for r in runs]
            audited_runs = len(runs)
        assert digests[0] == digests[1], digests

        with open_store(os.path.join(tmp, "bench.jsonl")) as journal:
            jcold, jcold_time, jcold_io = sweep(circuit, journal)
            assert jcold.to_json() == baseline.to_json()

    return {
        "width": width,
        "pairs": total_pairs,
        "regions": regions,
        "shard_size": shard_size,
        "bare_time_s": round(bare_time, 4),
        "cold": {
            "backend": "sqlite",
            "time_s": round(cold_time, 4),
            "puts": cold_io["puts"],
            "overhead_x": round(cold_time / bare_time, 2),
        },
        "warm": {
            "backend": "sqlite",
            "time_s": round(warm_time, 4),
            "hits": warm_io["hits"],
            "puts": warm_io["puts"],
            "speedup_vs_cold": round(cold_time / warm_time, 1)
            if warm_time
            else None,
        },
        "incremental_one_gate_edit": {
            "edited_region": 3,
            "time_s": round(inc_time, 4),
            "puts": inc_io["puts"],
            "vs_cold_puts_x": round(cold_io["puts"] / inc_io["puts"], 1)
            if inc_io["puts"]
            else None,
        },
        "journal_cold": {
            "backend": "journal",
            "time_s": round(jcold_time, 4),
            "puts": jcold_io["puts"],
            "vs_sqlite_cold_x": round(jcold_time / cold_time, 2)
            if cold_time
            else None,
        },
        "audited_runs": audited_runs,
        "cold_warm_digests_match": digests[0] == digests[1],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small widths / workloads (CI smoke run)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_engines.json",
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    if args.quick:
        verify_width, scalar_sample = 5, 500
        net_width, net_vectors = 5, 32
        parallel_width, parallel_jobs = 6, [1, 2]
        backend_width, parity_width = 5, 0
        native_width, native_large, native_gate = 8, 0, 5.0
        distributed_width, distributed_workers = 6, [1, 2]
        fault_width = 6
        store_width = 6
    else:
        verify_width, scalar_sample = 8, 4000
        net_width, net_vectors = 8, 1024
        parallel_width, parallel_jobs = 9, [1, 2, 4]
        backend_width, parity_width = 8, 10
        native_width, native_large, native_gate = 8, 12, 10.0
        distributed_width, distributed_workers = 8, [1, 2, 4]
        fault_width = 8
        store_width = 8

    print(f"== exhaustive 2-sort verification (B={verify_width}) ==")
    exhaustive = bench_exhaustive_verification(verify_width, scalar_sample)
    print(
        f"  scalar:   {exhaustive['scalar']['pairs_per_s']:>12,.0f} pairs/s "
        f"({exhaustive['scalar']['gate_visits_per_s']:,.0f} gate-visits/s)"
    )
    print(
        f"  compiled: {exhaustive['compiled']['pairs_per_s']:>12,.0f} pairs/s "
        f"({exhaustive['compiled']['gate_visits_per_s']:,.0f} gate-visits/s)"
    )
    print(f"  speedup:  {exhaustive['speedup']:,.1f}x")

    print(f"== sorting-network simulation (B={net_width}, 10 channels) ==")
    network = bench_network_simulation(net_width, net_vectors)
    print(f"  scalar:   {network['scalar']['vectors_per_s']:>12,.1f} vectors/s")
    print(f"  compiled: {network['compiled']['vectors_per_s']:>12,.1f} vectors/s")
    print(f"  speedup:  {network['speedup']:,.1f}x")

    print(f"== plane backends (B={backend_width}) ==")
    plane_backends = bench_plane_backends(backend_width, parity_width=parity_width)
    for label, entry in plane_backends["backends"].items():
        print(
            f"  {label + ' (' + entry['variant'] + ')':24s} "
            f"{entry['time_s']:>8.4f}s  ({entry['vs_bigint']:.2f}x bigint)"
        )
    if "parity" in plane_backends:
        parity = plane_backends["parity"]
        print(
            f"  parity @ B={parity['width']}: array "
            f"{parity['array_time_s']:.4f}s vs bigint "
            f"{parity['bigint_time_s']:.4f}s "
            f"({parity['array_vs_bigint']:.2f}x)"
        )

    print(f"== native backend (B={native_width}) ==")
    native = bench_native_backend(native_width, large_width=native_large)
    if native["built"]:
        print(
            f"  bigint:   {native['bigint_time_s']:>8.4f}s   "
            f"native: {native['native_time_s']:>8.4f}s   "
            f"speedup {native['speedup_vs_bigint']:.2f}x  "
            f"(reports identical: {native['reports_identical']})"
        )
        if "large" in native:
            lg = native["large"]
            print(
                f"  B={lg['width']}: bigint {lg['bigint_time_s']:.2f}s, "
                f"native {lg['native_time_s']:.2f}s "
                f"({lg['speedup_vs_bigint']:.2f}x, {lg['pairs']:,} pairs)"
            )
    else:
        print(f"  not built: {native.get('fallback_reason')}")

    print(f"== sharded parallel verification (B={parallel_width}) ==")
    parallel = bench_parallel_verification(parallel_width, parallel_jobs)
    print(
        f"  serial:   {parallel['serial_time_s']:>8.4f}s "
        f"({parallel['pairs']:,} pairs, {parallel['cpu_count']} cores)"
    )
    for entry in parallel["workers"]:
        print(
            f"  jobs={entry['jobs']}:   {entry['time_s']:>8.4f}s "
            f"({entry['speedup_vs_serial']:,.2f}x vs serial)"
        )

    print(f"== distributed work-queue verification (B={distributed_width}) ==")
    distributed = bench_distributed_verification(
        distributed_width, distributed_workers
    )
    print(
        f"  serial:      {distributed['serial_time_s']:>8.4f}s "
        f"({distributed['pairs']:,} pairs, {distributed['cpu_count']} cores)"
    )
    for entry in distributed["workers"]:
        print(
            f"  workers={entry['workers']}: {entry['time_s']:>8.4f}s "
            f"({entry['shards']} shards, "
            f"{entry['speedup_vs_serial']:,.2f}x vs serial)"
        )

    print(f"== fault tolerance (B={fault_width}) ==")
    fault = bench_fault_tolerance(fault_width)
    cp = fault["checkpoint"]
    print(
        f"  checkpoint:  bare {cp['bare_time_s']:.4f}s, journaled "
        f"{cp['journaled_time_s']:.4f}s ({cp['journal_overhead_x']:.2f}x), "
        f"resume {cp['resume_time_s']:.4f}s "
        f"({cp['resume_shards_recomputed']} shards recomputed)"
    )
    for row in fault["range_leases"]["rows"]:
        print(
            f"  max_range={row['max_range']:<3d} {row['lease_rpcs']:>4d} "
            f"lease RPCs for {row['shards']} shards in {row['time_s']:.4f}s"
        )
    print(
        "  rpc amortization: "
        f"{fault['range_leases']['rpc_amortization_x']}x"
    )

    print(f"== verification store (B={store_width}) ==")
    store = bench_verification_store(store_width)
    print(
        f"  cold (sqlite):  {store['cold']['time_s']:>8.4f}s "
        f"({store['cold']['puts']} puts, "
        f"{store['cold']['overhead_x']:.2f}x bare)"
    )
    print(
        f"  warm (sqlite):  {store['warm']['time_s']:>8.4f}s "
        f"({store['warm']['hits']} hits, {store['warm']['puts']} puts, "
        f"{store['warm']['speedup_vs_cold']}x vs cold)"
    )
    inc = store["incremental_one_gate_edit"]
    print(
        f"  one-gate edit:  {inc['time_s']:>8.4f}s "
        f"({inc['puts']} puts, {inc['vs_cold_puts_x']}x fewer than cold)"
    )
    print(
        f"  cold (journal): {store['journal_cold']['time_s']:>8.4f}s "
        f"({store['journal_cold']['vs_sqlite_cold_x']}x sqlite cold)"
    )

    payload = {
        "benchmark": "scalar interpreter vs compiled two-plane engine",
        "quick": args.quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "exhaustive_verification": exhaustive,
        "network_simulation": network,
        "plane_backends": plane_backends,
        "native_backend": native,
        "parallel_verification": parallel,
        "distributed_verification": distributed,
        "fault_tolerance": fault,
        "verification_store": store,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if exhaustive["speedup"] < 20:
        print("FAIL: compiled engine is less than 20x the scalar interpreter")
        return 1
    array_ratio = plane_backends["backends"]["array"]["vs_bigint"]
    # The 2x bound is defined at B=8; --quick runs B=5 where sub-ms
    # absolute times are pure per-call overhead, so only report there.
    if (
        not args.quick
        and plane_backends["numpy"]["available"]
        and array_ratio > 2.0
    ):
        print(
            f"FAIL: array backend is {array_ratio}x bigint "
            f"(acceptance bound: 2x at B={backend_width})"
        )
        return 1
    parity = plane_backends.get("parity")
    if parity is not None and parity["array_vs_bigint"] > 1.3:
        print(
            f"FAIL: array backend is {parity['array_vs_bigint']}x bigint "
            f"at B={parity['width']} (acceptance bound: near-parity 1.3x "
            "-- slab width amortizes ufunc dispatch at B>=10)"
        )
        return 1
    if native["built"]:
        if not native["reports_identical"] or not native.get(
            "large", {"reports_identical": True}
        )["reports_identical"]:
            print("FAIL: native and bigint verification reports differ")
            return 1
        if native["speedup_vs_bigint"] < native_gate:
            print(
                f"FAIL: native backend is only "
                f"{native['speedup_vs_bigint']}x bigint at B={native_width} "
                f"(acceptance bound: {native_gate}x single-core)"
            )
            return 1
    if store["warm"]["puts"] != 0:
        print(
            f"FAIL: warm store run executed {store['warm']['puts']} shards "
            "(acceptance bound: 0 -- a warm run must be pure lookup)"
        )
        return 1
    inc_puts = store["incremental_one_gate_edit"]["puts"]
    if inc_puts * 5 > store["cold"]["puts"]:
        print(
            f"FAIL: one-gate edit re-executed {inc_puts} of "
            f"{store['cold']['puts']} cold shards "
            "(acceptance bound: at least 5x fewer than cold)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
