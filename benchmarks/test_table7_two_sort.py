"""E2 -- Table 7: 2-sort(B) gate count / area / delay, three designs.

Regenerates the paper's Table 7 rows (B ∈ {2, 4, 8, 16} x {this paper,
[2], Bin-comp}) and prints measured values next to the published ones.
Reproduction criteria: "this paper" gate counts and areas exact;
orderings between designs (who is smallest/fastest) preserved.
"""

import pytest

from repro.analysis.compare import PAPER_WIDTHS, table7_rows
from repro.analysis.published import TABLE7
from repro.analysis.tables import render_table

DESIGN_LABEL = {
    "this-paper": "This paper",
    "date17": "[2] (DATE'17, reconstruction)",
    "bincomp": "Bin-comp",
}


def _rows():
    return table7_rows()


def test_table7(benchmark, emit):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)

    table_rows = []
    for row in rows:
        design = row.label.split()[0]
        p = row.published
        table_rows.append(
            [
                row.label,
                row.measured.gate_count,
                f"{row.measured.area_um2:.3f}",
                f"{row.measured.delay_ps:.0f}",
                p.gates,
                f"{p.area_um2:.3f}",
                f"{p.delay_ps:.0f}",
            ]
        )
    emit(
        "table7",
        render_table(
            ["circuit", "#gates", "area[µm²]", "delay[ps]",
             "paper #g", "paper area", "paper delay"],
            table_rows,
            title="Table 7 -- 2-sort(B): measured vs published",
        ),
    )

    by_key = {
        (row.label.split()[0], width): row
        for row, width in zip(rows, [w for w in PAPER_WIDTHS for _ in range(3)])
    }
    # 'This paper' gate counts exact; area within 0.2%.
    for width in PAPER_WIDTHS:
        ours = by_key[("this-paper", width)]
        assert ours.measured.gate_count == TABLE7["this-paper"][width].gates
        assert abs(ours.area_deviation_pct) < 0.2
    # Shape: bincomp < this-paper < date17 in gates (all B) and in area
    # (B >= 4; at B = 2 our Bin-comp carries 4 MUX2 + 2 XNOR2 cells,
    # whose area outweighs 13 small cells -- the paper's synthesised
    # 8-gate version was leaner, see EXPERIMENTS.md).
    for width in PAPER_WIDTHS:
        b = by_key[("bincomp", width)].measured
        o = by_key[("this-paper", width)].measured
        d = by_key[("date17", width)].measured
        assert b.gate_count < o.gate_count < d.gate_count
        if width >= 4:
            assert b.area_um2 < o.area_um2 < d.area_um2
        assert o.delay_ps < d.delay_ps
