"""E8 -- Equation 3: PPC cost/delay formulas vs generated circuits.

The paper quotes (from [5]) ``delay(PPC(n)) = (2 log2 n - 1) delay(OP)``
and ``cost(PPC(n)) = (2n - log2 n - 2) cost(OP)`` for powers of two.
This bench builds the actual prefix networks and compares: cost matches
the formula exactly; measured depth is bounded by the formula (the
Fig. 4 recursion beats the bound by one OP level at n >= 4, which the
output makes visible).
"""

import math

import pytest

from repro.analysis.tables import render_table
from repro.circuits.analysis import logic_depth
from repro.circuits.builder import or2
from repro.circuits.netlist import Circuit
from repro.ppc.circuit import build_ppc
from repro.ppc.prefix import eq3_cost_pow2, eq3_delay_pow2, lf_depth, lf_op_count


def _or_ppc(n):
    c = Circuit(f"ppc{n}")
    items = [(c.add_input(f"i{k}"),) for k in range(n)]
    outs = build_ppc(c, items, lambda cc, a, b: (or2(cc, a[0], b[0]),))
    c.add_outputs(net for (net,) in outs)
    return c


def test_eq3(benchmark, emit):
    sizes = (2, 4, 8, 16, 32, 64, 128)
    circuits = benchmark.pedantic(
        lambda: {n: _or_ppc(n) for n in sizes}, rounds=1, iterations=1
    )
    rows = []
    for n in sizes:
        c = circuits[n]
        rows.append(
            [
                n,
                c.gate_count(), eq3_cost_pow2(n),
                lf_depth(n), eq3_delay_pow2(n),
            ]
        )
    emit(
        "eq3_ppc",
        render_table(
            ["n", "ops built", "Eq.3 cost", "op depth", "Eq.3 delay bound"],
            rows,
            title="Equation 3 -- Ladner-Fischer PPC cost and depth",
        ),
    )
    for n in sizes:
        assert circuits[n].gate_count() == eq3_cost_pow2(n) == lf_op_count(n)
        assert lf_depth(n) <= eq3_delay_pow2(n)
        assert logic_depth(circuits[n]) == lf_depth(n)
