"""E1 -- Figure 1: area, delay, and gate count of 2-sort(B), ours vs [2].

Figure 1 plots the same quantities as Table 7 restricted to the two MC
designs, as three bar groups over B ∈ {2, 4, 8, 16}.  This bench
regenerates the three data series and checks the improvement factors
the paper highlights (abstract: up to 71.58% area / 48.46% delay at
B = 16 for the sorting networks; at the 2-sort level the gate-count
ratio reaches ~3.3x).
"""

import pytest

from repro.analysis.compare import PAPER_WIDTHS, measure_two_sort
from repro.analysis.published import TABLE7, improvement_pct
from repro.analysis.tables import render_table


def _series():
    data = {}
    for design in ("this-paper", "date17"):
        data[design] = {w: measure_two_sort(design, w).measured for w in PAPER_WIDTHS}
    return data


def test_figure1(benchmark, emit):
    data = benchmark.pedantic(_series, rounds=1, iterations=1)

    rows = []
    for width in PAPER_WIDTHS:
        ours, theirs = data["this-paper"][width], data["date17"][width]
        rows.append(
            [
                f"B={width}",
                ours.gate_count, theirs.gate_count,
                f"{theirs.gate_count / ours.gate_count:.2f}x",
                f"{ours.area_um2:.1f}", f"{theirs.area_um2:.1f}",
                f"{improvement_pct(ours.area_um2, theirs.area_um2):.1f}%",
                f"{ours.delay_ps:.0f}", f"{theirs.delay_ps:.0f}",
                f"{improvement_pct(ours.delay_ps, theirs.delay_ps):.1f}%",
            ]
        )
    emit(
        "figure1",
        render_table(
            ["B", "#g ours", "#g [2]", "ratio",
             "area ours", "area [2]", "saved",
             "delay ours", "delay [2]", "saved"],
            rows,
            title="Figure 1 -- 2-sort(B) scaling: this paper vs [2]",
        ),
    )

    # Shape assertions: improvements grow with B and are large at B=16.
    area_saved = [
        improvement_pct(
            data["this-paper"][w].area_um2, data["date17"][w].area_um2
        )
        for w in PAPER_WIDTHS
    ]
    assert area_saved[-1] > 60.0
    gate_ratio_16 = (
        data["date17"][16].gate_count / data["this-paper"][16].gate_count
    )
    published_ratio_16 = (
        TABLE7["date17"][16].gates / TABLE7["this-paper"][16].gates
    )
    # our reconstruction's ratio within 15% of the published 3.30x
    assert abs(gate_ratio_16 - published_ratio_16) / published_ratio_16 < 0.15
    # Delay improvement direction holds but is smaller than the paper's
    # 34.7% at the 2-sort level: our [2] reconstruction is *faster* than
    # the real DATE'17 netlists (depth 25 vs an implied ~38 levels), so
    # it under-states the paper's win.  See EXPERIMENTS.md.
    delay_saved_16 = improvement_pct(
        data["this-paper"][16].delay_ps, data["date17"][16].delay_ps
    )
    assert delay_saved_16 > 12.0
