#!/usr/bin/env python
"""CI gate: fail when ``BENCH_engines.json`` regresses past thresholds.

Compares a freshly generated benchmark artifact (usually quick mode, run
by the ``bench-regression`` CI job) against the committed baselines in
``benchmarks/thresholds.json`` and exits non-zero when any metric has
regressed by more than the tolerance (default 25%).

The thresholds file pins *ratio* metrics (speedups, overhead factors) --
these are stable across host speeds, unlike absolute wall clocks, so the
gate catches real code regressions rather than CI hardware jitter.  Each
entry names a dotted path into the artifact::

    {
      "tolerance_pct": 25,
      "modes": {
        "quick": {
          "exhaustive_verification.speedup": {"baseline": 900.0},
          "fault_tolerance.checkpoint.journal_overhead_x":
              {"baseline": 3.0, "direction": "lower"},
          "native_backend.speedup_vs_bigint":
              {"baseline": 9.0, "only_if": "native_backend.built"}
        },
        "full": { ... }
      }
    }

* ``direction`` -- ``"higher"`` (default) means bigger is better and the
  check fails when ``value < baseline * (1 - tol)``; ``"lower"`` means
  smaller is better and the check fails when
  ``value > baseline * (1 + tol)``.
* ``only_if`` -- a dotted path that must be truthy in the artifact for
  the metric to apply (e.g. native timings exist only where the C kernel
  built); otherwise the metric is reported as skipped, not failed.

Usage::

    PYTHONPATH=src python benchmarks/bench_engines.py --quick --output bench.json
    python benchmarks/check_regression.py --bench bench.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent


def lookup(doc: dict, path: str):
    """Resolve a dotted path; None when any component is missing."""
    cur = doc
    for part in path.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    return cur


def check(bench: dict, spec: dict) -> int:
    mode = "quick" if bench.get("quick") else "full"
    tol = spec.get("tolerance_pct", 25) / 100.0
    metrics = spec["modes"].get(mode, {})
    print(f"checking {len(metrics)} {mode}-mode metrics (tolerance {tol:.0%})")

    failures = 0
    for path, rule in sorted(metrics.items()):
        gate = rule.get("only_if")
        if gate is not None and not lookup(bench, gate):
            print(f"  SKIP {path} ({gate} is falsy)")
            continue
        value = lookup(bench, path)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            print(f"  FAIL {path}: missing from artifact")
            failures += 1
            continue
        baseline = rule["baseline"]
        if rule.get("direction", "higher") == "lower":
            bound = baseline * (1 + tol)
            ok = value <= bound
            rel = "<="
        else:
            bound = baseline * (1 - tol)
            ok = value >= bound
            rel = ">="
        status = "ok  " if ok else "FAIL"
        print(
            f"  {status} {path}: {value:g} "
            f"(required {rel} {bound:g}, baseline {baseline:g})"
        )
        failures += 0 if ok else 1

    if failures:
        print(f"{failures} metric(s) regressed past the {tol:.0%} tolerance")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench",
        type=pathlib.Path,
        default=HERE.parent / "BENCH_engines.json",
        help="benchmark artifact to check (default: committed full run)",
    )
    parser.add_argument(
        "--thresholds",
        type=pathlib.Path,
        default=HERE / "thresholds.json",
        help="committed baselines",
    )
    args = parser.parse_args(argv)

    bench = json.loads(args.bench.read_text())
    spec = json.loads(args.thresholds.read_text())
    return check(bench, spec)


if __name__ == "__main__":
    sys.exit(main())
