"""E10 (ablation) -- system-level simulation: throughput and MC overhead.

Times the word-level sorting engines on realistic measurement workloads
(pytest-benchmark measures these properly, many rounds), and checks the
functional price of skipping containment: on workloads with metastable
readings, the non-containing binary comparator corrupts a measurable
fraction of vectors while the MC network never does.
"""

import pytest

from repro.analysis.tables import render_table
from repro.circuits.evaluate import evaluate_words
from repro.baselines.bincomp import build_bincomp_two_sort
from repro.core.two_sort import build_two_sort
from repro.graycode.valid import is_valid
from repro.networks.simulate import sort_words, sort_words_batch
from repro.networks.topologies import SORT10_SIZE
from repro.verify.random_valid import measurement_sweep

WIDTH = 8
CHANNELS = 10
VECTORS = 24


@pytest.fixture(scope="module")
def workload():
    return measurement_sweep(WIDTH, CHANNELS, VECTORS, meta_rate=0.3, seed=2018)


def test_throughput_rank_engine(benchmark, workload):
    """Fast path: rank-order comparators (workload generation speed)."""
    result = benchmark(
        lambda: [sort_words(SORT10_SIZE, v, engine="rank") for v in workload]
    )
    assert len(result) == VECTORS


def test_throughput_fsm_engine(benchmark, workload):
    """The paper's decomposition evaluated at word level."""
    result = benchmark(
        lambda: [sort_words(SORT10_SIZE, v, engine="fsm") for v in workload]
    )
    assert len(result) == VECTORS


def test_throughput_gate_level(benchmark, workload):
    """Full three-valued netlist simulation (the 'hardware' path)."""
    result = benchmark.pedantic(
        lambda: [sort_words(SORT10_SIZE, v, engine="circuit") for v in workload[:6]],
        rounds=1, iterations=1,
    )
    assert len(result) == 6


def test_throughput_compiled_batch(benchmark, workload):
    """Bit-parallel gate-level simulation: all vectors in one batch.

    Same netlist semantics as ``engine="circuit"`` but every comparator
    visit evaluates the whole workload simultaneously on two bit-planes
    (see ``benchmarks/bench_engines.py`` for the tracked speedup ratio).
    """
    result = benchmark(lambda: sort_words_batch(SORT10_SIZE, workload))
    assert len(result) == VECTORS
    assert result == [sort_words(SORT10_SIZE, v, engine="rank") for v in workload]


def test_containment_fault_rate(benchmark, emit):
    """MC vs non-containing comparator: corrupted-output rate.

    The workload is the hard case motivating the paper: *near-equal*
    measurements, where one reading is caught mid-transition and the
    other sits on an adjacent value -- so the comparison genuinely
    depends on how the metastable bit resolves.  (On pairs decided by
    higher-order bits even a binary comparator survives; containment
    matters exactly when measurements race.)
    """
    from repro.graycode.valid import make_valid

    mc = build_two_sort(WIDTH)
    binary = build_bincomp_two_sort(WIDTH)
    import random

    rng = random.Random(2018)
    pairs_in = []
    for _ in range(80):
        x = rng.randrange((1 << WIDTH) - 1)
        g = make_valid(x, WIDTH, metastable=True)
        h = make_valid(min(x + rng.choice((0, 1)), (1 << WIDTH) - 1), WIDTH)
        pairs_in.append((g, h))

    def run():
        mc_bad = bin_bad = pairs = 0
        for g, h in pairs_in:
            pairs += 1
            out = evaluate_words(mc, g, h)
            if not (is_valid(out[:WIDTH]) and is_valid(out[WIDTH:])):
                mc_bad += 1
            out = evaluate_words(binary, g, h)
            if not (is_valid(out[:WIDTH]) and is_valid(out[WIDTH:])):
                bin_bad += 1
        return mc_bad, bin_bad, pairs

    mc_bad, bin_bad, pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_containment",
        render_table(
            ["design", "corrupted pairs", "total", "rate"],
            [
                ["this-paper 2-sort", mc_bad, pairs, f"{mc_bad / pairs:.1%}"],
                ["Bin-comp", bin_bad, pairs, f"{bin_bad / pairs:.1%}"],
            ],
            title=(
                "Ablation -- containment under metastable inputs "
                f"(B={WIDTH}, meta rate 0.3/reading)"
            ),
        ),
    )
    assert mc_bad == 0
    assert bin_bad > 0
