"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one artifact of the paper (a table or a
figure's data series), prints it, and also writes it to
``benchmarks/results/<name>.txt`` so the evidence survives pytest's
output capture.  Run with ``pytest benchmarks/ --benchmark-only -s`` to
see the tables inline.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Print an artifact and persist it under benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
