"""E4-E7 -- regenerate the paper's definitional tables (1, 2, 3, 5).

These are not performance artifacts but correctness anchors: the bench
prints each table exactly as the code reproduces it, so the text output
can be compared line by line against the paper.
"""

import pytest

from repro.analysis.tables import render_grouped, render_table
from repro.core.diamond import DIAMOND_TABLE
from repro.core.out_op import OUT_TABLE
from repro.graycode.rgc import gray_decode, gray_encode
from repro.graycode.valid import all_valid_strings
from repro.ternary.kleene import kleene_and, kleene_not, kleene_or
from repro.ternary.trit import Trit

STATES = ("00", "01", "11", "10")


def _table1():
    rows = [[x, str(gray_encode(x, 4))] for x in range(16)]
    return render_table(["x", "rg4(x)"], rows, title="Table 1 -- 4-bit binary reflected Gray code")


def _table2():
    rows = []
    for w in all_valid_strings(4):
        value = str(gray_decode(w)) if w.is_stable else "-"
        rows.append([str(w), value])
    return render_table(["g", "<g>"], rows, title="Table 2 -- 4-bit valid inputs")


def _table3():
    t = [Trit.ZERO, Trit.ONE, Trit.META]
    and_rows = [[a.to_char()] + [kleene_and(a, b).to_char() for b in t] for a in t]
    or_rows = [[a.to_char()] + [kleene_or(a, b).to_char() for b in t] for a in t]
    inv_rows = [[a.to_char(), kleene_not(a).to_char()] for a in t]
    return render_grouped(
        "Table 3 -- gate behaviour on metastable inputs",
        [
            ("AND", render_table(["a\\b", "0", "1", "M"], and_rows)),
            ("OR", render_table(["a\\b", "0", "1", "M"], or_rows)),
            ("INV", render_table(["a", "~a"], inv_rows)),
        ],
    )


def _table5():
    diamond_rows = [[s] + [DIAMOND_TABLE[(s, b)] for b in STATES] for s in STATES]
    out_rows = [[s] + [OUT_TABLE[(s, b)] for b in STATES] for s in STATES]
    return render_grouped(
        "Table 5 -- the ⋄ operator and the out operator",
        [
            ("⋄ (state transition)", render_table(["s\\b"] + list(STATES), diamond_rows)),
            ("out (output bits)", render_table(["s\\b"] + list(STATES), out_rows)),
        ],
    )


def test_definitional_tables(benchmark, emit):
    tables = benchmark.pedantic(
        lambda: (_table1(), _table2(), _table3(), _table5()),
        rounds=1, iterations=1,
    )
    for name, text in zip(("table1", "table2", "table3", "table5"), tables):
        emit(name, text)
    # spot anchors from the paper text
    assert "1000" in tables[0].splitlines()[-1]        # rg4(15) = 1000
    assert tables[1].count("-") >= 15                  # 15 superposed rows
    assert "M" in tables[2]
    assert DIAMOND_TABLE[("11", "11")] == "00"
