"""E9 (ablation) -- prefix schedule choice inside 2-sort(B).

The paper's design choice is the size-optimal Ladner-Fischer schedule
(its Fig. 4).  This ablation swaps the prefix network for the serial
(ASYNC'16-style ripple) and Sklansky (minimum-depth) schedules and
measures the cost/delay landscape -- quantifying both what PPC buys
over bit-serial evaluation and what the LF compromise saves over
depth-optimal prefixes.
"""

import pytest

from repro.analysis.tables import render_table
from repro.circuits.analysis import report
from repro.core.two_sort import build_two_sort

SCHEDULES = ("serial", "ladner_fischer", "sklansky")
WIDTHS = (4, 8, 16, 32)


def _sweep():
    return {
        (schedule, width): report(build_two_sort(width, schedule=schedule))
        for schedule in SCHEDULES
        for width in WIDTHS
    }


def test_schedule_ablation(benchmark, emit):
    data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for width in WIDTHS:
        for schedule in SCHEDULES:
            r = data[(schedule, width)]
            rows.append(
                [f"B={width}", schedule, r.gate_count, r.depth,
                 f"{r.area_um2:.1f}", f"{r.delay_ps:.0f}"]
            )
    emit(
        "ablation_ppc",
        render_table(
            ["B", "schedule", "#gates", "depth", "area[µm²]", "delay[ps]"],
            rows,
            title="Ablation -- prefix schedule inside 2-sort(B)",
        ),
    )

    for width in WIDTHS:
        serial = data[("serial", width)]
        lf = data[("ladner_fischer", width)]
        sklansky = data[("sklansky", width)]
        # PPC's raison d'être: delay win over bit-serial.  (At B = 4 the
        # LF recursion over 3 items degenerates to the serial chain --
        # same 2 ops -- so equality is expected there.)
        if width > 4:
            assert lf.delay_ps < serial.delay_ps
        else:
            assert lf.delay_ps <= serial.delay_ps
        # LF vs Sklansky: LF never larger; Sklansky never deeper.
        assert lf.gate_count <= sklansky.gate_count
        assert sklansky.depth <= lf.depth
    # The serial-vs-LF delay gap widens with B (linear vs logarithmic).
    gaps = [
        data[("serial", w)].delay_ps - data[("ladner_fischer", w)].delay_ps
        for w in WIDTHS
    ]
    assert gaps == sorted(gaps)
