"""E3 -- Table 8: full sorting networks, n ∈ {4, 7, 10#, 10d}, B ∈ {2..16}.

Regenerates all 48 cells of the paper's Table 8 (4 networks x 4 widths
x 3 designs): gate count, area, delay -- measured on flattened netlists
-- next to the published values.  Reproduction criteria:

* "here" gate counts and areas exact (they factorise as
  size(network) x 2-sort(B) cost);
* orderings preserved: here < [2] everywhere, Bin-comp smallest;
* 10-sortd faster but larger than 10-sort# within each (design, B);
* the abstract's headline: ~48%/~72% delay/area improvement over [2]
  at 10 channels, B = 16 (delay in shape, area near-exact).
"""

import pytest

from repro.analysis.compare import measure_network
from repro.analysis.published import NETWORK_SIZES, TABLE7, TABLE8, improvement_pct
from repro.analysis.tables import render_grouped, render_table

WIDTHS = (2, 4, 8, 16)
NETWORKS = ("4-sort", "7-sort", "10-sort#", "10-sortd")
DESIGNS = ("this-paper", "date17", "bincomp")


def _measure_all():
    return {
        (design, label, width): measure_network(design, label, width)
        for width in WIDTHS
        for label in NETWORKS
        for design in DESIGNS
    }


@pytest.fixture(scope="module")
def measurements():
    return _measure_all()


def test_table8(benchmark, emit, measurements):
    benchmark.pedantic(lambda: measure_network("this-paper", "4-sort", 2),
                       rounds=1, iterations=1)
    groups = []
    for width in WIDTHS:
        rows = []
        for label in NETWORKS:
            for design in DESIGNS:
                row = measurements[(design, label, width)]
                p = row.published
                rows.append(
                    [
                        label, design,
                        row.measured.gate_count,
                        f"{row.measured.area_um2:.1f}",
                        f"{row.measured.delay_ps:.0f}",
                        p.gates, f"{p.area_um2:.1f}", f"{p.delay_ps:.0f}",
                    ]
                )
        groups.append(
            (
                f"B = {width}",
                render_table(
                    ["network", "design", "#gates", "area", "delay",
                     "paper #g", "paper area", "paper delay"],
                    rows,
                ),
            )
        )
    emit("table8", render_grouped(
        "Table 8 -- n-channel MC sorting networks: measured vs published",
        groups,
    ))


def test_table8_exact_gate_counts(measurements):
    """'here' rows: gates exact, area within 0.2% of Table 8."""
    for width in WIDTHS:
        for label in NETWORKS:
            row = measurements[("this-paper", label, width)]
            assert row.measured.gate_count == TABLE8["this-paper"][label][width].gates
            assert abs(row.area_deviation_pct) < 0.2, (label, width)


def test_table8_factorisation(measurements):
    """Network cost = comparator count x 2-sort cost (structural check)."""
    for width in WIDTHS:
        for label in NETWORKS:
            row = measurements[("this-paper", label, width)]
            assert (
                row.measured.gate_count
                == NETWORK_SIZES[label] * TABLE7["this-paper"][width].gates
            )


def test_table8_orderings(measurements):
    """Who-beats-whom, per cell group -- the table's qualitative story."""
    for width in WIDTHS:
        for label in NETWORKS:
            ours = measurements[("this-paper", label, width)].measured
            theirs = measurements[("date17", label, width)].measured
            binary = measurements[("bincomp", label, width)].measured
            assert binary.gate_count < ours.gate_count < theirs.gate_count
            # Bin-comp area at B = 2 exceeds ours due to its MUX2/XNOR2
            # cell mix (same caveat as Table 7; see EXPERIMENTS.md).
            if width >= 4:
                assert binary.area_um2 < ours.area_um2
            assert ours.area_um2 < theirs.area_um2
            assert ours.delay_ps < theirs.delay_ps


def test_table8_depth_vs_size_tradeoff(measurements):
    """10-sortd is faster but larger than 10-sort# (both MC designs)."""
    for width in WIDTHS:
        for design in ("this-paper", "date17"):
            size_opt = measurements[(design, "10-sort#", width)].measured
            depth_opt = measurements[(design, "10-sortd", width)].measured
            assert depth_opt.delay_ps < size_opt.delay_ps, (design, width)
            assert depth_opt.gate_count > size_opt.gate_count


def test_headline_improvements(measurements, emit):
    """Abstract: 48.46% delay and 71.58% area improvement over [2]
    (10 channels, B = 16, depth-optimal network)."""
    ours = measurements[("this-paper", "10-sortd", 16)].measured
    theirs = measurements[("date17", "10-sortd", 16)].measured
    delay_saved = improvement_pct(ours.delay_ps, theirs.delay_ps)
    area_saved = improvement_pct(ours.area_um2, theirs.area_um2)
    emit(
        "headline",
        f"Headline (10-sortd, B=16) vs [2]-reconstruction:\n"
        f"  delay saved: {delay_saved:.2f}%   (paper: 48.46%)\n"
        f"  area  saved: {area_saved:.2f}%   (paper: 71.58%)",
    )
    # The area headline reproduces almost exactly; the delay improvement
    # has the right sign but is under-stated because our [2]
    # reconstruction is faster than the genuine DATE'17 netlists
    # (see EXPERIMENTS.md).
    assert delay_saved > 12.0
    assert area_saved > 60.0
