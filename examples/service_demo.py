#!/usr/bin/env python
"""Service demo: submit, stream, cancel, and cache-hit verification jobs.

Spins up the JSON-lines TCP service in-process (the same server
``python -m repro serve`` runs), then walks the job API end to end:

  1. submit an exhaustive B=8 verification and stream its per-shard
     progress + result,
  2. resubmit the same request -- the shard cache answers instantly,
  3. start a B=10 job and cancel it cooperatively mid-run.

Run:  PYTHONPATH=src python examples/service_demo.py

The same flow works across processes/machines:

  python -m repro serve --port 7421 --jobs 2 &
  python -m repro submit verify --width 8 --port 7421
  python -m repro status <job-id> --port 7421
"""

import asyncio

from repro.service import (
    AsyncServiceClient,
    JobManager,
    ReproServer,
    VerifyRequest,
)


async def main() -> None:
    async with ReproServer(JobManager(jobs=2), port=0) as server:
        print(f"service up on 127.0.0.1:{server.port}\n")
        async with AsyncServiceClient(port=server.port) as client:
            # -- 1. submit + stream ------------------------------------
            job_id = await client.submit(VerifyRequest(width=8))
            print(f"[1] submitted B=8 verification as {job_id}")
            async for event in client.stream(job_id):
                if event["event"] == "progress":
                    print(
                        f"    {event['shards_done']:>3}/"
                        f"{event['shards_total']} shards  "
                        f"{event['checked']:>7} pairs checked"
                    )
                elif event["event"] == "failure":
                    print(f"    FAIL {event['message']}")
            response = await client.result(job_id)
            result = response["result"]
            print(
                f"    -> {response['state']}: {result['checked']} pairs, "
                f"{result['failure_count']} failures "
                f"in {result.get('elapsed_s', 0):.3f}s\n"
            )

            # -- 2. resubmit: the shard cache answers ------------------
            job_id = await client.submit(VerifyRequest(width=8))
            response = await client.result(job_id)
            stats = (await client.jobs())["stats"]["cache"]
            print(
                f"[2] resubmitted: {response['state']} again "
                f"({response['result']['checked']} pairs) -- shard cache "
                f"{stats['hits']} hits / {stats['misses']} misses\n"
            )

            # -- 3. cancel a bigger job mid-run ------------------------
            job_id = await client.submit(VerifyRequest(width=10))
            print(f"[3] submitted B=10 verification as {job_id}")
            progress_seen = 0
            async with AsyncServiceClient(port=server.port) as side:
                async for event in client.stream(job_id):
                    if event["event"] == "progress":
                        progress_seen += 1
                        if progress_seen == 3:
                            print("    cancelling after 3 shards...")
                            await side.cancel(job_id)
                    elif event["event"] == "done":
                        done = event
            print(
                f"    -> {done['state']} at "
                f"{done['progress']['shards_done']}/"
                f"{done['progress']['shards_total']} shards "
                f"({done['progress']['checked']} pairs checked)"
            )


if __name__ == "__main__":
    asyncio.run(main())
