#!/usr/bin/env python
"""Explore the design space: networks x 2-sort designs x bit widths.

A small design-space exploration tool on top of the library, in the
spirit of the paper's Table 8 but open-ended: pick any channel count
(optimal fixed networks where known, Batcher otherwise), any of the
three comparator designs, and sweep bit widths to see cost scaling and
the crossovers the paper discusses.

Run:  python examples/network_explorer.py [channels]
"""

import sys

from repro.analysis.tables import render_table
from repro.circuits.analysis import report
from repro.networks.build import TWO_SORT_BUILDERS, build_sorting_circuit
from repro.networks.topologies import (
    SORT10_DEPTH,
    batcher_odd_even,
    best_known,
    insertion,
)

WIDTHS = (2, 4, 8, 16)


def explore(channels: int) -> None:
    candidates = [best_known(channels)]
    if channels == 10:
        candidates.append(SORT10_DEPTH)
    batcher = batcher_odd_even(channels)
    if batcher.name != candidates[0].name:
        candidates.append(batcher)
    candidates.append(insertion(channels))

    print(f"=== {channels}-channel sorting networks ===")
    rows = [
        [net.name, net.size, net.depth] for net in candidates
    ]
    print(render_table(["topology", "#comparators", "depth"], rows))
    print()

    for design in TWO_SORT_BUILDERS:
        rows = []
        for net in candidates:
            for width in WIDTHS:
                r = report(build_sorting_circuit(net, width, two_sort=design))
                rows.append(
                    [net.name, f"B={width}", r.gate_count,
                     f"{r.area_um2:.0f}", f"{r.delay_ps:.0f}"]
                )
        print(render_table(
            ["topology", "width", "#gates", "area[µm²]", "delay[ps]"],
            rows,
            title=f"--- comparator design: {design} ---",
        ))
        print()

    # The headline trade-off at a glance: MC cost vs containment.
    width = 16
    net = candidates[0]
    ours = report(build_sorting_circuit(net, width, two_sort="this-paper"))
    binary = report(build_sorting_circuit(net, width, two_sort="bincomp"))
    print(
        f"containment premium on {net.name} at B={width}: "
        f"{ours.area_um2 / binary.area_um2:.2f}x area, "
        f"{ours.delay_ps / binary.delay_ps:.2f}x delay\n"
        f"-> the paper's point: delay is comparable while gate-level "
        f"optimisation (not done here or there) would close the area gap."
    )


def main() -> None:
    channels = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    explore(channels)


if __name__ == "__main__":
    main()
