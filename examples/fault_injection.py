#!/usr/bin/env python
"""Fault injection: where does a metastable bit go?

For every input bit position of a 2-sort(B), inject ``M`` into an
otherwise-stable measurement pair and trace how far the uncertainty
spreads through each design:

* the paper's MC 2-sort keeps the output *exactly* as uncertain as the
  input semantics demand (the metastable closure -- provably minimal),
* the binary comparator lets a single M fan out across both output
  words.

This is the library-level analogue of the glitch analysis a designer
would run in a simulator before trusting a circuit near a clock-domain
boundary.

Run:  python examples/fault_injection.py
"""

from repro import Word, build_two_sort, evaluate_words
from repro.baselines.bincomp import build_bincomp_two_sort
from repro.circuits.evaluate import evaluate_all_resolutions
from repro.graycode import gray_encode, is_valid
from repro.analysis.tables import render_table

WIDTH = 6


def meta_bits(word: Word) -> int:
    return word.metastable_count


def inject(base: Word, position: int) -> Word:
    return base.replace_bit(position, "M")


def main() -> None:
    mc = build_two_sort(WIDTH)
    binary = build_bincomp_two_sort(WIDTH)

    # Neighbouring measurements -- the interesting (racing) case.
    g_val, h_val = 23, 24
    g0 = gray_encode(g_val, WIDTH)
    h0 = gray_encode(h_val, WIDTH)
    print(f"baseline: g = {g0} ({g_val}),  h = {h0} ({h_val})\n")

    rows = []
    for pos in range(1, WIDTH + 1):
        g = inject(g0, pos)

        mc_out = evaluate_words(mc, g, h0)
        mc_spread = meta_bits(mc_out)
        mc_valid = is_valid(mc_out[:WIDTH]) and is_valid(mc_out[WIDTH:])

        bin_out = evaluate_words(binary, g, h0)
        bin_spread = meta_bits(bin_out)
        bin_valid = is_valid(bin_out[:WIDTH]) and is_valid(bin_out[WIDTH:])

        # The information-theoretic floor: closure of the Boolean function.
        ideal = evaluate_all_resolutions(mc, g, h0)
        floor = meta_bits(ideal)

        note = "valid input" if is_valid(g) else "INVALID input"
        rows.append(
            [
                f"g bit {pos}", note,
                f"{mc_spread} ({'ok' if mc_valid else 'invalid'})",
                f"{bin_spread} ({'ok' if bin_valid else 'invalid'})",
                floor,
            ]
        )

    print(render_table(
        ["injection", "input class",
         "MC out M-bits", "Bin-comp out M-bits", "closure floor"],
        rows,
        title=f"M-bit spread after one injected fault (B={WIDTH}, values "
              f"{g_val} vs {h_val})",
    ))

    print(
        "\nReading the table: on *valid* inputs (the single Gray transition\n"
        "bit), the MC design stays at the closure floor -- it adds zero\n"
        "extra uncertainty and its outputs remain valid strings.  The\n"
        "binary comparator spreads one M across several output bits and\n"
        "produces non-codewords.  Injections at other positions leave the\n"
        "valid-string domain (two adjacent codewords never differ there),\n"
        "so even the MC circuit makes no promise -- yet it often still\n"
        "tracks the floor."
    )


if __name__ == "__main__":
    main()
