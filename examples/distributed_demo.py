#!/usr/bin/env python
"""Tour of the distributed shard executor -- all on localhost.

Starts a :class:`ShardCoordinator` on an ephemeral port, attaches two
in-process :class:`ShardWorker` agents (stand-ins for agents on other
hosts -- the wire protocol is identical), and drives one exhaustive
verification sweep through the ``"distributed"`` executor:

1. the sweep streams per-shard progress exactly like the local
   executors (same ``on_shard`` seam the service layer uses);
2. one extra "doomed" client leases a shard and dies mid-sweep -- the
   coordinator re-queues its lease and the merged result is still
   byte-identical to a serial run;
3. coordinator stats show who did what (leases, re-queues, duplicates).

Across real machines the only difference is addressing::

    host-a$ python -m repro verify --width 10 --executor distributed --listen 7422
    host-b$ python -m repro worker --connect host-a:7422 --jobs 8

Run me::

    PYTHONPATH=src python examples/distributed_demo.py
"""

import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.two_sort import build_two_sort  # noqa: E402
from repro.distributed import (  # noqa: E402
    LineChannel,
    ShardCoordinator,
    ShardWorker,
    use_coordinator,
)
from repro.verify.parallel import verify_two_sort_sharded  # noqa: E402

WIDTH = 7
SHARD_SIZE = 255 * 16  # 16 g-rows per shard -> 16 shards at B=7


def main() -> None:
    circuit = build_two_sort(WIDTH)
    serial = verify_two_sort_sharded(
        circuit, WIDTH, jobs=1, executor="serial", shard_size=SHARD_SIZE
    )
    print(f"serial reference: {serial.summary()}")

    coordinator = ShardCoordinator(host="127.0.0.1", port=0).start()
    print(f"coordinator listening on 127.0.0.1:{coordinator.port}")

    # Submit the sweep (it blocks until workers deliver every shard).
    def on_shard(done, total, result):
        print(f"  shard {done}/{total}: {result.checked} pairs", flush=True)

    out = {}

    def sweep():
        with use_coordinator(coordinator):
            out["result"] = verify_two_sort_sharded(
                circuit,
                WIDTH,
                executor="distributed",
                shard_size=SHARD_SIZE,
                on_shard=on_shard,
            )

    sweep_thread = threading.Thread(target=sweep, daemon=True)
    sweep_thread.start()

    # A client that takes a lease and dies without returning it: the
    # coordinator notices the dropped connection and re-queues.
    doomed = LineChannel.connect("127.0.0.1", coordinator.port)
    doomed.request({"op": "hello", "name": "doomed", "slots": 1})
    leased = doomed.request({"op": "next"})
    while leased.get("kind") != "task":  # queue may not be filled yet
        time.sleep(0.05)
        leased = doomed.request({"op": "next"})
    print(f"doomed worker leased shard {leased['index']} ... and dies")
    doomed.close()

    # Now the real workers (on other hosts they'd `repro worker --connect`).
    stop = threading.Event()
    agents = [
        ShardWorker("127.0.0.1", coordinator.port, name=f"agent-{i}")
        for i in range(2)
    ]
    threads = [
        threading.Thread(target=a.run, args=(stop,), daemon=True)
        for a in agents
    ]
    for t in threads:
        t.start()
    print(f"{len(agents)} workers attached")

    sweep_thread.join(timeout=120)
    distributed = out["result"]
    print(f"distributed run : {distributed.summary()}")
    identical = distributed.to_json() == serial.to_json()
    print(f"byte-identical to serial: {identical}")

    stats = coordinator.stats()
    stop.set()
    coordinator.close()
    for t in threads:
        t.join(timeout=10)
    print("coordinator stats:")
    print(json.dumps({k: stats[k] for k in ("requeued_total", "workers")},
                     indent=2))
    print(f"shards per agent: { {a.name: a.completed for a in agents} }")
    if not identical or stats["requeued_total"] < 1:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
