#!/usr/bin/env python
"""Tour of the distributed shard executor -- all on localhost.

Scene 1 (in-process): starts a :class:`ShardCoordinator` on an
ephemeral port, attaches two in-process :class:`ShardWorker` agents
(stand-ins for agents on other hosts -- the wire protocol is
identical), and drives one exhaustive verification sweep through the
``"distributed"`` executor:

1. the sweep streams per-shard progress exactly like the local
   executors (same ``on_shard`` seam the service layer uses);
2. one extra "doomed" client leases a shard range and dies mid-sweep --
   the coordinator re-queues its leases and the merged result is still
   byte-identical to a serial run;
3. coordinator stats show who did what (leases, re-queues, duplicates).

Scene 2 (subprocesses): fault tolerance end to end.  A worker process
is started *first* (initial-connect retries), then a coordinator run
with ``--checkpoint``; mid-sweep the coordinator is SIGKILLed.  The
worker's supervisor backs off and redials while a second coordinator
run ``--resume``\\ s the journal on the same port: only the shards not
already on file are executed, and the final report is byte-identical
to the serial reference.

Across real machines the only difference is addressing::

    host-a$ python -m repro verify --width 10 --executor distributed --listen 7422
    host-b$ python -m repro worker --connect host-a:7422 --jobs 8

Run me::

    PYTHONPATH=src python examples/distributed_demo.py
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.two_sort import build_two_sort  # noqa: E402
from repro.distributed import (  # noqa: E402
    LineChannel,
    ShardCoordinator,
    ShardWorker,
    use_coordinator,
)
from repro.verify.parallel import verify_two_sort_sharded  # noqa: E402

WIDTH = 7
SHARD_SIZE = 255 * 16  # 16 g-rows per shard -> 16 shards at B=7


def scene_one() -> None:
    print("=== scene 1: leases, a dying client, byte-identical merge ===")
    circuit = build_two_sort(WIDTH)
    serial = verify_two_sort_sharded(
        circuit, WIDTH, jobs=1, executor="serial", shard_size=SHARD_SIZE
    )
    print(f"serial reference: {serial.summary()}")

    coordinator = ShardCoordinator(host="127.0.0.1", port=0).start()
    print(f"coordinator listening on 127.0.0.1:{coordinator.port}")

    # Submit the sweep (it blocks until workers deliver every shard).
    def on_shard(done, total, result):
        print(f"  shard {done}/{total}: {result.checked} pairs", flush=True)

    out = {}

    def sweep():
        with use_coordinator(coordinator):
            out["result"] = verify_two_sort_sharded(
                circuit,
                WIDTH,
                executor="distributed",
                shard_size=SHARD_SIZE,
                on_shard=on_shard,
            )

    sweep_thread = threading.Thread(target=sweep, daemon=True)
    sweep_thread.start()

    # A client that takes a lease and dies without returning it: the
    # coordinator notices the dropped connection and re-queues.  One
    # "next" now grants a contiguous *range* of shards (``items``);
    # every shard in the range has its own lease, so only the
    # unreported tail is re-queued when the holder dies.
    doomed = LineChannel.connect("127.0.0.1", coordinator.port)
    doomed.request({"op": "hello", "name": "doomed", "slots": 1})
    leased = doomed.request({"op": "next"})
    while leased.get("kind") != "task":  # queue may not be filled yet
        time.sleep(0.05)
        leased = doomed.request({"op": "next"})
    indices = [index for index, _task in leased["items"]]
    print(f"doomed worker leased shard range {indices} ... and dies")
    doomed.close()

    # Now the real workers (on other hosts they'd `repro worker --connect`).
    stop = threading.Event()
    agents = [
        ShardWorker("127.0.0.1", coordinator.port, name=f"agent-{i}")
        for i in range(2)
    ]
    threads = [
        threading.Thread(target=a.run, args=(stop,), daemon=True)
        for a in agents
    ]
    for t in threads:
        t.start()
    print(f"{len(agents)} workers attached")

    sweep_thread.join(timeout=120)
    distributed = out["result"]
    print(f"distributed run : {distributed.summary()}")
    identical = distributed.to_json() == serial.to_json()
    print(f"byte-identical to serial: {identical}")

    stats = coordinator.stats()
    stop.set()
    coordinator.close()
    for t in threads:
        t.join(timeout=10)
    print("coordinator stats:")
    print(json.dumps({k: stats[k] for k in ("requeued_total", "workers")},
                     indent=2))
    print(f"shards per agent: { {a.name: a.completed for a in agents} }")
    if not identical or stats["requeued_total"] < 1:
        raise SystemExit(1)


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _journaled(journal: Path) -> int:
    if not journal.exists():
        return 0
    count = 0
    for line in journal.read_bytes().splitlines():
        try:
            if json.loads(line).get("type") == "result":
                count += 1
        except ValueError:
            pass  # torn tail -- exactly what the journal tolerates
    return count


def scene_two() -> None:
    print()
    print("=== scene 2: SIGKILL the coordinator, resume the checkpoint ===")
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    cli = [sys.executable, "-m", "repro"]
    verify_args = [
        "verify", "--width", str(WIDTH), "--shard-size", str(SHARD_SIZE),
        "--executor", "distributed",
    ]
    serial = subprocess.run(
        cli + ["verify", "--width", str(WIDTH), "--shard-size",
               str(SHARD_SIZE)],
        env=env, capture_output=True, text=True, check=True,
    ).stdout
    print(f"serial reference: {serial.strip()}")

    port = _free_port()
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "sweep.jsonl"
        # The worker starts FIRST: its initial-connect retries ride out
        # the coordinator not being up yet.
        worker = subprocess.Popen(
            cli + ["worker", "--connect", f"127.0.0.1:{port}",
                   "--throttle", "0.25", "--retry-max", "200",
                   "--backoff-base", "0.1"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            run_a = subprocess.Popen(
                cli + verify_args + ["--listen", f"127.0.0.1:{port}",
                                     "--checkpoint", str(journal)],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            deadline = time.monotonic() + 120
            while _journaled(journal) < 4 and time.monotonic() < deadline:
                time.sleep(0.1)
            on_file = _journaled(journal)
            os.kill(run_a.pid, signal.SIGKILL)
            run_a.wait(timeout=30)
            print(f"coordinator SIGKILLed with {on_file} shard(s) journaled;"
                  " worker is now backing off and redialing")

            run_b = subprocess.run(
                cli + verify_args + ["--listen", f"127.0.0.1:{port}",
                                     "--resume", str(journal)],
                env=env, capture_output=True, text=True, timeout=300,
            )
            print(f"resume stderr   : {run_b.stderr.strip()}")
            print(f"resumed run     : {run_b.stdout.strip()}")
            identical = run_b.stdout == serial
            print(f"byte-identical to serial: {identical}")
            final = _journaled(journal)
            print(f"journal now holds {final} shard results "
                  f"({on_file} survived the crash, {final - on_file} ran "
                  "after resume)")
            # The resumed coordinator said goodbye on shutdown, so the
            # worker exits on its own.
            worker.wait(timeout=30)
            if not identical or run_b.returncode != 0:
                raise SystemExit(1)
        finally:
            if worker.poll() is None:
                worker.kill()


def main() -> None:
    scene_one()
    scene_two()


if __name__ == "__main__":
    main()
