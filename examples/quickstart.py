#!/usr/bin/env python
"""Quickstart: build the paper's 2-sort(B), sort metastable measurements.

Walks through the core objects in ~60 lines:
  1. Gray-code values and *valid strings* (measurements caught
     mid-transition, one metastable bit),
  2. the gate-level metastability-containing 2-sort circuit,
  3. three-valued simulation and the closure specification,
  4. the cost report matching the paper's Table 7.

Run:  python examples/quickstart.py
"""

from repro import (
    Word,
    build_two_sort,
    evaluate_words,
    gray_encode,
    make_valid,
    report,
    two_sort_closure,
)


def main() -> None:
    width = 4

    # -- 1. Inputs ------------------------------------------------------
    # A stable reading of value 4, and a reading caught between 3 and 4:
    g = make_valid(3, width, metastable=True)  # rg(3) * rg(4) = 0M10
    h = gray_encode(4, width)                  # 0110
    print(f"g = {g}   (a measurement between 3 and 4, bit 2 metastable)")
    print(f"h = {h}   (a stable measurement of 4)")

    # -- 2. The circuit ---------------------------------------------------
    circuit = build_two_sort(width)
    print(f"\ncircuit: {report(circuit)}")
    print(f"cells  : {dict(circuit.gate_histogram())}  (AND/OR/INV only)")

    # -- 3. Simulate ------------------------------------------------------
    out = evaluate_words(circuit, g, h)
    mx, mn = out[:width], out[width:]
    print(f"\n2-sort output:  max = {mx}, min = {mn}")
    print("The metastable bit is *contained*: it stays a single bit of")
    print("uncertainty in the min word instead of spreading.")

    # The gate-level result equals the mathematical specification
    # (the metastable closure of max/min, Definition 2.8):
    assert (mx, mn) == two_sort_closure(g, h)
    print("\ncircuit output == metastable closure spec  [verified]")

    # -- 4. Paper check ---------------------------------------------------
    table7 = {2: 13, 4: 55, 8: 169, 16: 407}
    for b, gates in table7.items():
        actual = build_two_sort(b).gate_count()
        marker = "==" if actual == gates else "!="
        print(f"2-sort({b:2d}): {actual:3d} gates {marker} Table 7's {gates}")


if __name__ == "__main__":
    main()
