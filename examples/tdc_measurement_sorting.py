#!/usr/bin/env python
"""Sorting time-to-digital-converter readings across clock domains.

The paper's motivating scenario (Section 1-2, citing [7]): several
channels measure the arrival time of a pulse with TDCs whose Gray-code
outputs may contain one metastable bit -- the measurement was taken
*while* the counter was transitioning.  Classic designs would first
synchronize (spending time and admitting residual failure probability);
the paper's circuits sort the raw readings immediately, metastability
and all.

This example simulates a 10-channel measurement round end to end:

  * generate readings around a true event time, some caught in flight,
  * sort them with the paper's MC network (10-sort#, gate-level),
  * show that the binary comparator alternative corrupts the same data.

Run:  python examples/tdc_measurement_sorting.py
"""

import random

from repro import Word, build_sorting_circuit, evaluate_words, SORT10_SIZE
from repro.baselines.bincomp import build_bincomp_two_sort
from repro.graycode import gray_decode, is_valid, make_valid, rank, value_interval
from repro.networks.properties import check_mc_sort

WIDTH = 8
CHANNELS = 10


def take_measurements(rng: random.Random, true_time: int):
    """Each channel reads true_time + jitter; ~40% are caught mid-tick."""
    readings = []
    for _ in range(CHANNELS):
        value = max(0, min((1 << WIDTH) - 2, true_time + rng.randint(-2, 2)))
        in_flight = rng.random() < 0.4
        readings.append(make_valid(value, WIDTH, metastable=in_flight))
    return readings


def describe(word: Word) -> str:
    lo, hi = value_interval(word)
    if lo == hi:
        return f"{word}  = {lo}"
    return f"{word}  = {lo} or {hi} (in flight)"


def main() -> None:
    rng = random.Random(7)
    true_time = 113
    readings = take_measurements(rng, true_time)

    print(f"true event time: {true_time} ticks; raw channel readings:")
    for ch, r in enumerate(readings):
        print(f"  ch{ch}: {describe(r)}")

    # ------------------------------------------------------------------
    # Sort with the paper's network at gate level (29 x 2-sort(8)).
    # ------------------------------------------------------------------
    circuit = build_sorting_circuit(SORT10_SIZE, WIDTH, two_sort="this-paper")
    print(
        f"\nMC sorting circuit: {circuit.gate_count()} gates "
        f"({SORT10_SIZE.size} comparators x 169)"
    )
    out = evaluate_words(circuit, *readings)
    ranked = [out[i * WIDTH : (i + 1) * WIDTH] for i in range(CHANNELS)]

    print("sorted (ascending):")
    for i, r in enumerate(ranked):
        print(f"  rank {i}: {describe(r)}")

    problems = check_mc_sort(readings, ranked)
    assert not problems, problems
    print("containment + order verified: every output is a valid string,")
    print("ranks ascend, and the rank multiset is preserved.")

    # Median of the measurement round -- a typical downstream use.
    median = ranked[CHANNELS // 2]
    lo, hi = value_interval(median)
    print(f"\nmedian reading: {describe(median)}")
    assert abs(lo - true_time) <= 2

    # ------------------------------------------------------------------
    # What the standard binary comparator would have done.
    # ------------------------------------------------------------------
    print("\n--- same data through the non-containing Bin-comp ---")
    bincomp = build_bincomp_two_sort(WIDTH)
    corrupted = 0
    for g, h in zip(readings[::2], readings[1::2]):
        out = evaluate_words(bincomp, g, h)
        hi_w, lo_w = out[:WIDTH], out[WIDTH:]
        ok = is_valid(hi_w) and is_valid(lo_w)
        if not ok:
            corrupted += 1
            print(f"  compare({g}, {h}) -> {hi_w}, {lo_w}   CORRUPTED")
    if corrupted:
        print(f"{corrupted} of {CHANNELS // 2} comparisons produced garbage --")
        print("exactly the failure mode metastability containment removes.")
    else:
        print("(no pair happened to race this round; rerun with other seeds)")


if __name__ == "__main__":
    main()
