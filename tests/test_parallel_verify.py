"""Tests for repro.verify.parallel (sharded parallel verification)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.netlist import Circuit
from repro.core.two_sort import build_two_sort
from repro.verify.exhaustive import (
    VerificationResult,
    pair_shards,
    verify_two_sort_circuit,
)
from repro.verify.parallel import (
    available_executors,
    plan_shards,
    register_executor,
    run_sharded,
    verify_two_sort_sharded,
)


def _broken_two_sort(width):
    """A 2-sort with swapped max/min busses (fails on every unequal pair)."""
    good = build_two_sort(width)
    broken = Circuit("broken")
    ins = [broken.add_input(n) for n in good.inputs]
    outs = broken.instantiate(good, ins)
    broken.add_outputs(outs[width:] + outs[:width])
    return broken


class TestPlanShards:
    def test_exact_cover(self):
        shards = plan_shards(10, 3)
        assert shards == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_empty(self):
        assert plan_shards(0, 4) == []

    def test_degenerate_size_clamped(self):
        assert plan_shards(3, 0) == [(0, 1), (1, 2), (2, 3)]

    def test_cover_is_disjoint_and_ordered(self):
        for total, size in [(1, 1), (7, 7), (100, 13)]:
            shards = plan_shards(total, size)
            flat = [i for lo, hi in shards for i in range(lo, hi)]
            assert flat == list(range(total))


class TestPairShards:
    def test_cover_full_string_domain(self):
        width = 5
        S = (1 << (width + 1)) - 1
        for shard_size in (None, 100, S, 10 * S):
            shards = pair_shards(width, shard_size)
            flat = [i for lo, hi in shards for i in range(lo, hi)]
            assert flat == list(range(S))

    def test_small_shard_size_gives_many_shards(self):
        width = 4
        S = (1 << (width + 1)) - 1
        assert len(pair_shards(width, S)) == S  # one g-row per shard


class TestExecutorRegistry:
    def test_builtin_executors_present(self):
        assert {"serial", "process"} <= set(available_executors())

    def test_unknown_executor_rejected(self):
        with pytest.raises(KeyError, match="unknown executor"):
            run_sharded(lambda t: t, [1, 2], jobs=2, executor="quantum")

    def test_register_executor_hook(self):
        calls = []

        def recording(worker, tasks, jobs, initializer=None, initargs=()):
            calls.append((len(tasks), jobs))
            if initializer is not None:
                initializer(*initargs)
            return [worker(t) for t in tasks]

        register_executor("recording", recording)
        try:
            out = run_sharded(lambda t: t * 2, [1, 2, 3], jobs=5,
                              executor="recording")
            assert out == [2, 4, 6]
            assert calls == [(3, 5)]
        finally:
            from repro.verify.parallel import _EXECUTORS

            del _EXECUTORS["recording"]

    def test_results_in_task_order(self):
        out = run_sharded(lambda t: -t, list(range(20)), jobs=1)
        assert out == [-t for t in range(20)]


class TestMerge:
    def test_merge_sums_and_caps(self):
        parts = []
        for k in range(3):
            r = VerificationResult()
            r.checked = 10
            for i in range(15):
                r.record(f"shard{k}-{i}")
            parts.append(r)
        merged = VerificationResult.merge(parts)
        assert merged.checked == 30
        assert merged.failure_count == 45
        assert len(merged.failures) == 20
        # deterministic shard order: shard0 messages first
        assert merged.failures[0] == "shard0-0"
        assert merged.failures[-1] == "shard1-4"


class TestShardedVerification:
    def test_serial_matches_single_process(self):
        circuit = build_two_sort(4)
        base = verify_two_sort_circuit(circuit, 4)
        sharded = verify_two_sort_sharded(circuit, 4, jobs=1, shard_size=100)
        assert (sharded.checked, sharded.failure_count) == (
            base.checked,
            base.failure_count,
        )
        assert base.ok and sharded.ok

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_identical_counts_across_job_counts(self, jobs):
        """The acceptance contract: --jobs N never changes the result."""
        circuit = build_two_sort(5)
        result = verify_two_sort_sharded(
            circuit, 5, jobs=jobs, executor="process"
        )
        assert result.ok
        assert result.checked == ((1 << 6) - 1) ** 2  # 3969

    def test_process_pool_catches_failures(self):
        broken = _broken_two_sort(3)
        base = verify_two_sort_circuit(broken, 3)
        sharded = verify_two_sort_sharded(
            broken, 3, jobs=2, shard_size=30, executor="process"
        )
        assert not sharded.ok
        assert sharded.failure_count == base.failure_count
        assert sharded.checked == base.checked

    def test_failure_report_deterministic(self):
        broken = _broken_two_sort(3)
        a = verify_two_sort_sharded(broken, 3, jobs=2, shard_size=30,
                                    executor="process")
        b = verify_two_sort_sharded(broken, 3, jobs=4, shard_size=30,
                                    executor="process")
        c = verify_two_sort_sharded(broken, 3, jobs=2, shard_size=30,
                                    executor="serial")
        assert a.failures == b.failures == c.failures

    def test_shape_checked_before_dispatch(self):
        with pytest.raises(ValueError, match="needs 8 inputs"):
            verify_two_sort_sharded(build_two_sort(3), 4, jobs=2)

    def test_jobs_zero_means_all_cores(self):
        """jobs=0 follows the CLI convention (all cores), not 1 worker."""
        result = verify_two_sort_sharded(build_two_sort(4), 4, jobs=0)
        assert result.ok and result.checked == 961

    def test_run_sharded_jobs_zero(self):
        out = run_sharded(lambda t: t + 1, [1, 2, 3], jobs=0,
                          executor="serial")
        assert out == [2, 3, 4]

    def test_huge_shard_size_clamped(self):
        """A giant --shard-size must not collapse the sweep into one
        memory-hungry mega-shard beyond the hard lane ceiling."""
        from repro.verify.exhaustive import _MAX_SHARD_LANES

        width = 4
        S = (1 << (width + 1)) - 1
        shards = pair_shards(width, 10**12)
        assert all((hi - lo) * S <= _MAX_SHARD_LANES for lo, hi in shards)
        result = verify_two_sort_sharded(
            build_two_sort(width), width, jobs=1, shard_size=10**12
        )
        assert result.ok and result.checked == S * S


class TestStreamingAndCancellation:
    """run_sharded's on_result/should_stop hooks: the seam the async
    service layer (repro.service) is built on."""

    def test_serial_on_result_fires_in_order(self):
        seen = []
        out = run_sharded(
            lambda t: t * 10, [1, 2, 3], jobs=1, executor="serial",
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert out == [10, 20, 30]
        assert seen == [(0, 10), (1, 20), (2, 30)]

    def test_process_on_result_fires_in_order(self):
        seen = []
        out = run_sharded(
            _double, list(range(6)), jobs=2, executor="process",
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert out == [2 * t for t in range(6)]
        assert seen == [(i, 2 * i) for i in range(6)]

    def test_serial_should_stop_raises_with_partial(self):
        from repro.verify.parallel import SweepCancelled

        stop_after = 3
        done = []

        def worker(t):
            done.append(t)
            return t

        with pytest.raises(SweepCancelled) as info:
            run_sharded(
                worker, list(range(10)), jobs=1, executor="serial",
                should_stop=lambda: len(done) >= stop_after,
            )
        assert info.value.results == [0, 1, 2]
        assert done == [0, 1, 2]  # tasks 3..9 never ran

    def test_process_should_stop_raises_with_partial(self):
        from repro.verify.parallel import SweepCancelled

        seen = []

        with pytest.raises(SweepCancelled) as info:
            run_sharded(
                _double, list(range(8)), jobs=2, executor="process",
                on_result=lambda i, r: seen.append(r),
                should_stop=lambda: len(seen) >= 2,
            )
        assert info.value.results == seen == [0, 2]

    def test_legacy_executor_replays_on_result(self):
        """Executors registered without the streaming keywords still
        satisfy the on_result contract (after the fact)."""

        def legacy(worker, tasks, jobs, initializer=None, initargs=()):
            if initializer is not None:
                initializer(*initargs)
            return [worker(t) for t in tasks]

        register_executor("legacy", legacy)
        seen = []
        try:
            out = run_sharded(
                lambda t: -t, [1, 2], jobs=1, executor="legacy",
                on_result=lambda i, r: seen.append((i, r)),
            )
        finally:
            from repro.verify.parallel import _EXECUTORS

            del _EXECUTORS["legacy"]
        assert out == [-1, -2]
        assert seen == [(0, -1), (1, -2)]

    def test_verify_on_shard_progress_complete(self):
        snapshots = []
        result = verify_two_sort_sharded(
            build_two_sort(4), 4, jobs=1, shard_size=100,
            on_shard=lambda done, total, res: snapshots.append(
                (done, total, res.checked)
            ),
        )
        assert result.ok and result.checked == 961
        dones = [d for d, _, _ in snapshots]
        totals = {t for _, t, _ in snapshots}
        assert dones == list(range(1, len(snapshots) + 1))
        assert totals == {len(snapshots)}
        assert sum(c for _, _, c in snapshots) == result.checked

    def test_verify_should_stop_cancels_between_shards(self):
        from repro.verify.parallel import SweepCancelled

        snapshots = []
        with pytest.raises(SweepCancelled):
            verify_two_sort_sharded(
                build_two_sort(4), 4, jobs=1, shard_size=100,
                on_shard=lambda done, total, res: snapshots.append(done),
                should_stop=lambda: len(snapshots) >= 2,
            )
        assert snapshots == [1, 2]


def _double(t):
    return 2 * t


class TestProgressMonotonicity:
    """Hypothesis: for any width/shard size, on_shard reports strictly
    increasing done counts, a constant total, and exact coverage."""

    @given(
        width=st.integers(min_value=2, max_value=4),
        shard_size=st.integers(min_value=1, max_value=2000),
    )
    @settings(max_examples=25, deadline=None)
    def test_progress_is_monotone_and_exact(self, width, shard_size):
        snapshots = []
        result = verify_two_sort_sharded(
            build_two_sort(width), width, jobs=1, shard_size=shard_size,
            on_shard=lambda done, total, res: snapshots.append((done, total)),
        )
        S = (1 << (width + 1)) - 1
        assert result.ok and result.checked == S * S
        dones = [d for d, _ in snapshots]
        assert dones == list(range(1, len(snapshots) + 1))  # strict +1 steps
        assert {t for _, t in snapshots} == {len(snapshots)}
        assert dones[-1] == len(snapshots)
