"""Tests for the ⋄ operator and its closure (Table 5, Thm 4.1)."""

import itertools

import pytest

from repro.core.diamond import (
    DIAMOND_TABLE,
    add_mod4,
    add_mod4_m,
    diamond,
    diamond_hat,
    diamond_hat_m,
    diamond_m,
    n_transform,
)
from repro.core.fsm import fsm_step
from repro.graycode.valid import all_valid_strings
from repro.ppc.prefix import ladner_fischer_prefixes, serial_prefixes
from repro.ternary.trit import Trit
from repro.ternary.word import Word

STABLE2 = [Word(s) for s in ("00", "01", "11", "10")]


class TestTable5:
    def test_table_is_total(self):
        assert len(DIAMOND_TABLE) == 16

    def test_identity_row(self):
        """00 ⋄ y = y."""
        for y in STABLE2:
            assert diamond(Word("00"), y) == y

    def test_absorbing_rows(self):
        """01 ⋄ y = 01 and 10 ⋄ y = 10."""
        for y in STABLE2:
            assert diamond(Word("01"), y) == Word("01")
            assert diamond(Word("10"), y) == Word("10")

    def test_negating_row(self):
        """11 ⋄ y = ȳ (bitwise complement)."""
        for y in STABLE2:
            assert diamond(Word("11"), y) == y.invert()

    def test_matches_fsm_transition(self):
        """⋄ with state as left operand is exactly the Fig. 2 step."""
        for s in STABLE2:
            for b in STABLE2:
                assert diamond(s, b) == fsm_step(s, b.bit(1), b.bit(2))

    def test_associative_on_stable(self):
        """Observation 3.3: ⋄ is associative on binary operands."""
        for a, b, c in itertools.product(STABLE2, repeat=3):
            assert diamond(diamond(a, b), c) == diamond(a, diamond(b, c))

    def test_width_check(self):
        with pytest.raises(ValueError):
            diamond(Word("0"), Word("00"))


class TestNTransform:
    def test_inverts_first_bit_only(self):
        assert n_transform(Word("00")) == Word("10")
        assert n_transform(Word("1M")) == Word("0M")
        assert n_transform(Word("M1")) == Word("M1")

    def test_involution(self):
        for w in [Word(a + b) for a in "01M" for b in "01M"]:
            assert n_transform(n_transform(w)) == w

    def test_hat_definition(self):
        """x ⋄̂ y = N(Nx ⋄ Ny) on stable words."""
        for x in STABLE2:
            for y in STABLE2:
                assert diamond_hat(x, y) == n_transform(
                    diamond(n_transform(x), n_transform(y))
                )

    def test_hat_closure_commutes_with_n(self):
        """⋄̂_M(x, y) == N(⋄_M(Nx, Ny)) on all 81 ternary pairs."""
        words = [Word(a + b) for a in "01M" for b in "01M"]
        for x in words:
            for y in words:
                assert diamond_hat_m(x, y) == n_transform(
                    diamond_m(n_transform(x), n_transform(y))
                )


class TestClosureBehaviour:
    def test_closure_on_stable_is_diamond(self):
        for a in STABLE2:
            for b in STABLE2:
                assert diamond_m(a, b) == diamond(a, b)

    def test_absorbing_states_mask_metastability(self):
        """01/10 are absorbing even against MM input."""
        assert diamond_m(Word("01"), Word("MM")) == Word("01")
        assert diamond_m(Word("10"), Word("MM")) == Word("10")

    def test_mm_state_poisons(self):
        assert diamond_m(Word("MM"), Word("00")) == Word("MM")

    def test_identity_state_passes_m(self):
        assert diamond_m(Word("00"), Word("M0")) == Word("M0")


class TestTheorem41:
    """⋄_M behaves associatively on valid-string input sequences."""

    @pytest.mark.parametrize("width", [2, 3, 4, 5])
    def test_lf_order_equals_serial_order(self, width):
        strings = all_valid_strings(width)
        for g in strings:
            for h in strings:
                items = [Word([g.bit(i), h.bit(i)]) for i in range(1, width + 1)]
                assert ladner_fischer_prefixes(items, diamond_m) == serial_prefixes(
                    items, diamond_m
                ), (g, h)

    def test_all_parenthesizations_width4(self):
        """Full associativity over every evaluation tree, width 4."""

        def all_folds(items):
            if len(items) == 1:
                return {items[0]}
            results = set()
            for split in range(1, len(items)):
                for left in all_folds(items[:split]):
                    for right in all_folds(items[split:]):
                        results.add(diamond_m(left, right))
            return results

        strings = all_valid_strings(4)
        # sample the diagonal plus mixed pairs to keep runtime sane
        pairs = [(g, h) for g in strings[::3] for h in strings[::5]]
        for g, h in pairs:
            items = [Word([g.bit(i), h.bit(i)]) for i in range(1, 5)]
            assert len(all_folds(items)) == 1, (g, h)

    def test_closure_not_associative_in_general(self):
        """The paper's counter-example: +_M mod 4 is not associative."""
        a, b, c = Word("0M"), Word("01"), Word("01")
        left = add_mod4_m(add_mod4_m(a, b), c)
        right = add_mod4_m(a, add_mod4_m(b, c))
        assert left == Word("MM")
        assert right == Word("1M")
        assert left != right

    def test_add_mod4_is_associative_on_stable(self):
        for a, b, c in itertools.product(STABLE2, repeat=3):
            assert add_mod4(add_mod4(a, b), c) == add_mod4(a, add_mod4(b, c))


class TestObservation42:
    """∗⋄-fold is MM iff g and h share a metastable bit with equal prefix."""

    def test_mm_iff_joint_metastable_position(self):
        from repro.ternary.resolution import resolutions, superpose

        width = 4
        strings = all_valid_strings(width)
        for g in strings[::2]:
            for h in strings[::2]:
                items = [Word([g.bit(i), h.bit(i)]) for i in range(1, width + 1)]
                folded = serial_prefixes(items, diamond_m)[-1]
                joint = any(
                    g.bit(i).is_metastable
                    and h.bit(i).is_metastable
                    and g.substring(1, i) == h.substring(1, i)
                    for i in range(1, width + 1)
                )
                assert (folded == Word("MM")) == joint, (g, h)
