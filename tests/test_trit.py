"""Unit tests for repro.ternary.trit."""

import pytest

from repro.ternary.trit import ALL_TRITS, META, ONE, ZERO, Trit, trit


class TestConstruction:
    def test_from_char(self):
        assert Trit.from_char("0") is ZERO
        assert Trit.from_char("1") is ONE
        assert Trit.from_char("M") is META
        assert Trit.from_char("m") is META

    def test_from_char_rejects_junk(self):
        with pytest.raises(ValueError):
            Trit.from_char("2")
        with pytest.raises(ValueError):
            Trit.from_char("")

    def test_from_int(self):
        assert Trit.from_int(0) is ZERO
        assert Trit.from_int(1) is ONE

    def test_from_int_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Trit.from_int(2)
        with pytest.raises(ValueError):
            Trit.from_int(-1)

    def test_coerce_identity(self):
        for t in ALL_TRITS:
            assert Trit.coerce(t) is t

    def test_coerce_bool(self):
        assert Trit.coerce(True) is ONE
        assert Trit.coerce(False) is ZERO

    def test_coerce_rejects_float(self):
        with pytest.raises(TypeError):
            Trit.coerce(1.0)

    def test_functional_alias(self):
        assert trit("M") is META


class TestPredicates:
    def test_stability(self):
        assert ZERO.is_stable and ONE.is_stable
        assert not META.is_stable
        assert META.is_metastable
        assert not ZERO.is_metastable


class TestConversions:
    def test_round_trip_int(self):
        assert ZERO.to_int() == 0
        assert ONE.to_int() == 1

    def test_meta_to_int_raises(self):
        with pytest.raises(ValueError):
            META.to_int()

    def test_to_char(self):
        assert [t.to_char() for t in ALL_TRITS] == ["0", "1", "M"]

    def test_str(self):
        assert str(META) == "M"


class TestResolutions:
    def test_stable_resolves_to_self(self):
        assert tuple(ZERO.resolutions()) == (ZERO,)
        assert tuple(ONE.resolutions()) == (ONE,)

    def test_meta_resolves_to_both_rails(self):
        assert tuple(META.resolutions()) == (ZERO, ONE)


class TestSuperpose:
    def test_equal_values_survive(self):
        for t in ALL_TRITS:
            assert t.superpose(t) is t

    def test_disagreement_gives_meta(self):
        assert ZERO.superpose(ONE) is META
        assert ONE.superpose(ZERO) is META

    def test_meta_absorbs(self):
        assert META.superpose(ZERO) is META
        assert ONE.superpose(META) is META
