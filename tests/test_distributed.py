"""Tests for repro.distributed (cross-host shard execution).

The in-process tests run a real ShardCoordinator on an ephemeral
localhost port with ShardWorker agents on threads -- the same code
paths as cross-host deployment, minus the network.  The kill test
drives actual ``python -m repro worker`` subprocesses and SIGKILLs one
mid-lease.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.circuits.netlist import Circuit
from repro.core.two_sort import build_two_sort
from repro.distributed import (
    LineChannel,
    ShardCoordinator,
    ShardWorker,
    decode_line,
    encode_line,
    pack,
    unpack,
    use_coordinator,
)
from repro.verify.exhaustive import SweepEpoch, VerificationResult
from repro.verify.parallel import (
    SweepCancelled,
    available_executors,
    run_sharded,
    verify_two_sort_sharded,
)

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


# ----------------------------------------------------------------------
# Module-level task functions (picklable by reference, like pool tasks)
# ----------------------------------------------------------------------
def _triple(task):
    return 3 * task


def _boom(task):
    raise ValueError(f"boom on {task}")


def _slow_triple(task):
    time.sleep(0.05)
    return 3 * task


@contextmanager
def _cluster(workers=2, lease_timeout=5.0, start_workers=True, **worker_kwargs):
    """A coordinator (ephemeral port) plus in-process worker threads."""
    coordinator = ShardCoordinator(
        host="127.0.0.1", port=0, lease_timeout=lease_timeout
    ).start()
    stop = threading.Event()
    agents = [
        ShardWorker(
            "127.0.0.1", coordinator.port, name=f"w{i}", **worker_kwargs
        )
        for i in range(workers)
    ]
    threads = [
        threading.Thread(target=a.run, args=(stop,), daemon=True)
        for a in agents
    ]
    if start_workers:
        for t in threads:
            t.start()
    try:
        with use_coordinator(coordinator):
            yield coordinator, agents
    finally:
        stop.set()
        coordinator.close()
        for t in threads:
            if t.is_alive() or start_workers:
                t.join(timeout=10)


def _wait_until(predicate, timeout=20.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWire:
    def test_encode_decode_roundtrip(self):
        msg = {"op": "next", "n": 3, "nested": {"a": [1, 2]}}
        assert decode_line(encode_line(msg)) == msg

    def test_one_message_per_line(self):
        assert encode_line({"a": 1}).endswith(b"\n")
        assert b"\n" not in encode_line({"a": "x"})[:-1]

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError, match="invalid JSON"):
            decode_line(b"{nope\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            decode_line(b"[1,2]\n")

    def test_pack_unpack_roundtrip(self):
        result = VerificationResult(checked=7)
        result.record("x")
        back = unpack(pack(result))
        assert back.checked == 7 and back.failures == ["x"]
        assert unpack(pack((_triple, (1, 2)))) == (_triple, (1, 2))

    def test_service_server_shares_the_framing(self):
        from repro.service import server

        assert server.encode_line is encode_line


# ----------------------------------------------------------------------
# Circuit.content_hash
# ----------------------------------------------------------------------
class TestContentHash:
    def test_stable_across_rebuilds(self):
        assert (
            build_two_sort(4).content_hash() == build_two_sort(4).content_hash()
        )

    def test_differs_across_widths(self):
        assert (
            build_two_sort(3).content_hash() != build_two_sort(4).content_hash()
        )

    def test_changes_on_structural_edit(self):
        circuit = build_two_sort(3)
        before = circuit.content_hash()
        from repro.circuits.gates import INV

        circuit.add_gate(INV, [circuit.inputs[0]])
        assert circuit.content_hash() != before

    def test_cached_per_version(self):
        circuit = build_two_sort(3)
        assert circuit.content_hash() is circuit.content_hash()

    def test_survives_pickling(self):
        import pickle

        circuit = build_two_sort(4)
        clone = pickle.loads(pickle.dumps(circuit))
        assert clone.content_hash() == circuit.content_hash()

    def test_no_delimiter_injection_through_net_names(self):
        """Net names containing the old join characters must not let
        two different wirings hash identically (fields are
        length-prefixed)."""
        from repro.circuits.gates import AND2

        def make(first, second):
            c = Circuit("x")
            for net in ("x", "x,y", "y,x", "y"):
                c.add_input(net)
            c.add_output(c.add_gate(AND2, [first, second]))
            return c

        # Same declared inputs; a naive ","-join would feed ",x,y,x"
        # for both gate input lists.
        assert (
            make("x,y", "x").content_hash()
            != make("x", "y,x").content_hash()
        )

    def test_lazy_package_import(self):
        """Importing the shared wire format (as the service layer does)
        must not drag in the coordinator/worker machinery."""
        import subprocess
        import sys

        code = (
            "import sys; import repro.service; "
            "mods = sorted(m for m in sys.modules "
            "if m.startswith('repro.distributed')); "
            "assert mods == ['repro.distributed', "
            "'repro.distributed.wire'], mods"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": SRC_DIR},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_same_name_and_version_different_structure_differ(self):
        """The collision the old (name, version) cache key allowed:
        equal mutation counts on structurally different netlists."""
        from repro.circuits.gates import AND2, OR2

        def make(kind):
            c = Circuit("x")
            a = c.add_input()
            b = c.add_input()
            c.add_output(c.add_gate(kind, [a, b]))
            return c

        c1, c2 = make(AND2), make(OR2)
        assert c1.name == c2.name and c1.version == c2.version
        assert c1.content_hash() != c2.content_hash()


# ----------------------------------------------------------------------
# Coordinator + workers over localhost
# ----------------------------------------------------------------------
class TestDistributedExecution:
    def test_registered_executor(self):
        assert "distributed" in available_executors()

    def test_requires_a_coordinator(self):
        with pytest.raises(RuntimeError, match="--listen|coordinator"):
            run_sharded(_triple, [1, 2], jobs=1, executor="distributed")

    def test_generic_tasks_two_workers(self):
        with _cluster(workers=2):
            out = run_sharded(
                _triple, list(range(12)), jobs=1, executor="distributed"
            )
        assert out == [3 * t for t in range(12)]

    def test_two_workers_byte_identical_to_serial(self):
        """The acceptance contract at B=7: coordinator + 2 workers ==
        the serial executor, via to_json()."""
        circuit = build_two_sort(7)
        serial = verify_two_sort_sharded(
            circuit, 7, jobs=1, executor="serial", shard_size=255 * 16
        )
        with _cluster(workers=2) as (coordinator, agents):
            distributed = verify_two_sort_sharded(
                circuit, 7, executor="distributed", shard_size=255 * 16
            )
        assert distributed.to_json() == serial.to_json()
        # Both agents actually contributed under one sweep.
        assert all(a.completed >= 1 for a in agents)

    def test_on_result_streams_in_task_order(self):
        seen = []
        with _cluster(workers=2):
            out = run_sharded(
                _triple,
                list(range(16)),
                jobs=1,
                executor="distributed",
                on_result=lambda i, r: seen.append((i, r)),
            )
        assert out == [3 * t for t in range(16)]
        assert seen == [(i, 3 * i) for i in range(16)]  # strict order

    def test_should_stop_cancels_with_ordered_partial(self):
        seen = []
        with _cluster(workers=1, throttle=0.02) as (coordinator, _):
            with pytest.raises(SweepCancelled) as info:
                run_sharded(
                    _triple,
                    list(range(50)),
                    jobs=1,
                    executor="distributed",
                    on_result=lambda i, r: seen.append(r),
                    should_stop=lambda: len(seen) >= 3,
                )
            assert info.value.results == seen
            assert seen == [3 * t for t in range(len(seen))]
            assert len(seen) >= 3
            batch = coordinator.stats()["batches"][0]
            assert batch["cancelled"] and batch["pending"] == 0

    def test_worker_error_fails_the_batch(self):
        with _cluster(workers=1):
            with pytest.raises(RuntimeError, match="boom on"):
                run_sharded(_boom, [1, 2, 3], jobs=1, executor="distributed")

    def test_verify_progress_hooks_and_cache(self):
        """The service-layer seams (on_shard, cache) work unchanged
        through the distributed executor."""
        from repro.service.cache import ShardCache

        circuit = build_two_sort(5)
        cache = ShardCache()
        snapshots = []
        with _cluster(workers=2):
            first = verify_two_sort_sharded(
                circuit, 5, executor="distributed", shard_size=200,
                cache=cache,
                on_shard=lambda done, total, r: snapshots.append((done, total)),
            )
            second = verify_two_sort_sharded(
                circuit, 5, executor="distributed", shard_size=200,
                cache=cache,
            )
        assert first.to_json() == second.to_json()
        assert first.checked == 3969
        dones = [d for d, _ in snapshots]
        assert dones == list(range(1, len(snapshots) + 1))
        assert cache.hits == len(snapshots)  # second run fully cached

    def test_collected_batches_are_retired(self):
        """A long-running coordinator must not accumulate finished
        batches: collect() frees the batch, stats keep a summary."""
        with _cluster(workers=1) as (coordinator, _):
            for _ in range(3):
                run_sharded(
                    _triple, list(range(4)), jobs=1, executor="distributed"
                )
            assert coordinator._batches == {}  # all retired
            summaries = coordinator.stats()["batches"]
            assert len(summaries) == 3
            assert all(s["done"] == s["tasks"] == 4 for s in summaries)

    def test_epoch_compiled_once_across_batches(self):
        """Two sweeps of the same (circuit, backend, width) share one
        worker-side epoch -- the compile-once contract."""
        circuit = build_two_sort(4)
        with _cluster(workers=1) as (coordinator, agents):
            for _ in range(2):
                verify_two_sort_sharded(
                    circuit, 4, executor="distributed", shard_size=100
                )
            assert _wait_until(lambda: len(agents[0]._epochs) >= 1, 5)
            assert len(agents[0]._epochs) == 1

    def test_epoch_hash_mismatch_refuses_batch(self):
        """A worker that deserializes a different circuit than the
        epoch describes must refuse rather than merge wrong results."""
        from repro.verify.parallel import _init_verify_worker, _verify_shard_worker

        circuit = build_two_sort(4)
        lying_epoch = SweepEpoch(
            kind="verify-two-sort",
            circuit_name=circuit.name,
            circuit_hash="0badc0ffee0badc0",  # not the real hash
            width=4,
            backend=None,
        )
        with _cluster(workers=1) as (coordinator, _):
            handle = coordinator.submit(
                _verify_shard_worker,
                [(4, 0, 10)],
                initializer=_init_verify_worker,
                initargs=(circuit, None),
                epoch=lying_epoch.to_dict(),
            )
            with pytest.raises(RuntimeError, match="hash mismatch"):
                handle.collect()


class TestFailureRecovery:
    def test_dropped_connection_requeues_leases(self):
        """A worker that dies holding a lease (abrupt close) loses the
        shard back to the queue; the sweep still matches serial."""
        circuit = build_two_sort(5)
        serial = verify_two_sort_sharded(
            circuit, 5, jobs=1, executor="serial", shard_size=200
        )
        coordinator = ShardCoordinator(
            host="127.0.0.1", port=0, lease_timeout=10.0
        ).start()
        out = {}

        def sweep():
            with use_coordinator(coordinator):
                out["result"] = verify_two_sort_sharded(
                    circuit, 5, executor="distributed", shard_size=200
                )

        thread = threading.Thread(target=sweep, daemon=True)
        thread.start()
        # Doomed client: lease one shard, die without returning it.
        doomed = LineChannel.connect("127.0.0.1", coordinator.port)
        doomed.request({"op": "hello", "name": "doomed", "slots": 1})
        reply = doomed.request({"op": "next"})
        assert reply["kind"] == "task"
        doomed.close()

        stop = threading.Event()
        survivor = ShardWorker("127.0.0.1", coordinator.port, name="survivor")
        wt = threading.Thread(target=survivor.run, args=(stop,), daemon=True)
        wt.start()
        thread.join(timeout=30)
        assert not thread.is_alive(), "sweep wedged after worker death"
        assert out["result"].to_json() == serial.to_json()
        stats = coordinator.stats()
        assert stats["requeued_total"] >= 1
        batch = stats["batches"][0]
        assert batch["done"] == batch["tasks"]  # nothing lost
        assert batch["duplicates"] == 0  # nothing double-merged
        stop.set()
        coordinator.close()
        wt.join(timeout=10)

    def test_silent_worker_lease_expires_and_requeues(self):
        """A connected-but-wedged worker (no heartbeat) forfeits its
        lease at the deadline."""
        circuit = build_two_sort(4)
        serial = verify_two_sort_sharded(
            circuit, 4, jobs=1, executor="serial", shard_size=100
        )
        coordinator = ShardCoordinator(
            host="127.0.0.1", port=0, lease_timeout=0.4
        ).start()
        out = {}

        def sweep():
            with use_coordinator(coordinator):
                out["result"] = verify_two_sort_sharded(
                    circuit, 4, executor="distributed", shard_size=100
                )

        thread = threading.Thread(target=sweep, daemon=True)
        thread.start()
        silent = LineChannel.connect("127.0.0.1", coordinator.port)
        silent.request({"op": "hello", "name": "silent", "slots": 1})
        assert silent.request({"op": "next"})["kind"] == "task"
        # ... and now say nothing: no heartbeat, no result.
        stop = threading.Event()
        survivor = ShardWorker("127.0.0.1", coordinator.port, name="survivor")
        wt = threading.Thread(target=survivor.run, args=(stop,), daemon=True)
        wt.start()
        thread.join(timeout=30)
        assert not thread.is_alive(), "sweep wedged behind an expired lease"
        assert out["result"].to_json() == serial.to_json()
        assert coordinator.stats()["requeued_total"] >= 1
        silent.close()
        stop.set()
        coordinator.close()
        wt.join(timeout=10)

    def test_kill_worker_process_mid_sweep_b8(self):
        """The acceptance criterion: a B=8 sweep over >= 2 worker
        *processes* stays byte-identical to serial after one worker is
        SIGKILLed mid-sweep (its leased shards re-queued, none lost or
        double-merged)."""
        circuit = build_two_sort(8)
        serial = verify_two_sort_sharded(
            circuit, 8, jobs=1, executor="serial", shard_size=511 * 8
        )
        coordinator = ShardCoordinator(
            host="127.0.0.1", port=0, lease_timeout=10.0
        ).start()
        out = {}

        def sweep():
            with use_coordinator(coordinator):
                out["result"] = verify_two_sort_sharded(
                    circuit, 8, executor="distributed", shard_size=511 * 8
                )

        thread = threading.Thread(target=sweep, daemon=True)
        thread.start()

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")

        def spawn(name, throttle):
            return subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--connect", f"127.0.0.1:{coordinator.port}",
                    "--name", name, "--throttle", str(throttle),
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )

        doomed = spawn("doomed", throttle=0.10)
        steady = spawn("steady", throttle=0.01)
        try:
            # Wait until the doomed worker demonstrably holds work,
            # then kill it without ceremony.
            def doomed_busy():
                for w in coordinator.stats()["workers"]:
                    if w["name"] == "doomed" and w["results"] >= 1 and w["leases"] >= 1:
                        return True
                return False

            assert _wait_until(doomed_busy, timeout=60), (
                "doomed worker never took work"
            )
            os.kill(doomed.pid, signal.SIGKILL)
            doomed.wait(timeout=10)
            thread.join(timeout=120)
            assert not thread.is_alive(), "sweep wedged after SIGKILL"
        finally:
            for proc in (doomed, steady):
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)
            stats = coordinator.stats()
            coordinator.close()
            thread.join(timeout=10)
        assert out["result"].to_json() == serial.to_json()
        assert out["result"].checked == 261121
        assert stats["requeued_total"] >= 1
        batch = stats["batches"][0]
        assert batch["done"] == batch["tasks"]
        assert batch["duplicates"] == 0


# ----------------------------------------------------------------------
# Determinism of the in-order merge
# ----------------------------------------------------------------------
class TestMergeOrderInvariance:
    @given(
        shards=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.lists(st.text("ab", min_size=1, max_size=3), max_size=4),
            ),
            min_size=1,
            max_size=8,
        ),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_arrival_order_never_changes_the_merge(self, shards, seed):
        """Results arriving in any order merge identically, because
        the coordinator buffers and releases them by shard index --
        the exact algorithm BatchHandle.collect runs."""
        import random

        results = []
        for checked, messages in shards:
            r = VerificationResult(checked=checked)
            for m in messages:
                r.record(m)
            results.append(r)
        reference = VerificationResult.merge(results)

        arrival = list(range(len(results)))
        random.Random(seed).shuffle(arrival)
        # Re-enact the reorder buffer: record in arrival order, release
        # the contiguous prefix as it becomes available.
        buffered = {}
        released = []
        for index in arrival:
            buffered[index] = results[index]
            while len(released) in buffered:
                released.append(buffered[len(released)])
        assert released == results  # every arrival order converges
        merged = VerificationResult.merge(released)
        assert merged.to_json() == reference.to_json()
        # And even an *unordered* merge can never change the counts,
        # only the capped failure listing.
        unordered = VerificationResult.merge([results[i] for i in arrival])
        assert unordered.checked == reference.checked
        assert unordered.failure_count == reference.failure_count
        assert unordered.ok == reference.ok


# ----------------------------------------------------------------------
# Content-hash cache keys
# ----------------------------------------------------------------------
class TestContentHashCacheKeys:
    def test_rebuilt_identical_circuit_hits(self):
        from repro.service.cache import ShardCache

        cache = ShardCache()
        verify_two_sort_sharded(
            build_two_sort(4), 4, jobs=1, shard_size=100, cache=cache
        )
        misses = cache.misses
        assert cache.hits == 0
        result = verify_two_sort_sharded(
            build_two_sort(4), 4, jobs=1, shard_size=100, cache=cache
        )
        assert result.ok and result.checked == 961
        assert cache.hits == misses  # fully answered from cache
        assert cache.misses == misses

    def test_cache_keys_carry_the_content_hash(self):
        """Shard keys identify the netlist by structure digest, so two
        circuits sharing (name, version) -- possible with the old
        mutation-counter key -- can never collide."""
        circuit = build_two_sort(3)
        keys = []

        class Spy:
            def get(self, key):
                keys.append(key)
                return None

            def put(self, key, value):
                pass

        verify_two_sort_sharded(circuit, 3, jobs=1, shard_size=50, cache=Spy())
        assert keys
        assert all(circuit.content_hash() in key for key in keys)

    def test_edited_circuit_misses_cleanly(self):
        from repro.circuits.gates import BUF
        from repro.service.cache import ShardCache

        cache = ShardCache()
        circuit = build_two_sort(3)
        verify_two_sort_sharded(circuit, 3, jobs=1, shard_size=50, cache=cache)
        # A structural edit that keeps the 2-sort shape (and, with the
        # old key, would have changed version exactly like any rebuild).
        circuit._outputs[0] = circuit.add_gate(BUF, [circuit.outputs[0]])
        verify_two_sort_sharded(circuit, 3, jobs=1, shard_size=50, cache=cache)
        assert cache.hits == 0  # every shard re-ran
