"""Tests for the pluggable plane-backend subsystem (repro.backends).

The load-bearing property is that every backend is a *drop-in*
representation: identical TritVec semantics, identical compiled-program
results, identical (bit-for-bit) verification reports -- big-int planes,
numpy lane-word planes, and the dependency-free stdlib ``array``
fallback must be indistinguishable except in wall-clock time.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import (
    AUTO_BACKEND,
    ArrayBackend,
    BigIntBackend,
    NativeBackend,
    available_backends,
    default_backend_name,
    get_backend,
    known_backend_names,
    numpy_disabled_by_env,
    register_backend,
    resolve_backend_name,
    set_default_backend,
    use_backend,
)
from repro.circuits.compiled import TritVec, compile_circuit
from repro.circuits.netlist import Circuit
from repro.circuits.gates import AND2, OR2
from repro.core.two_sort import build_two_sort
from repro.networks.comparator import from_comparator_list
from repro.networks.simulate import sort_words, sort_words_batch
from repro.ternary.trit import ALL_TRITS, Trit
from repro.ternary.word import Word
from repro.verify.exhaustive import verify_two_sort_circuit
from repro.verify.parallel import (
    _default_pair_shard_size,
    available_executors,
    verify_two_sort_sharded,
)
from repro.graycode.valid import from_rank


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _backend_params():
    """Every representation under test, fallback variant included.

    ``native`` is the registry proxy: on hosts with a C compiler it
    resolves to the kernel-backed word-array representation, elsewhere
    to the bigint fallback -- either way it must be a drop-in.
    """
    params = [
        pytest.param(BigIntBackend(), id="bigint"),
        pytest.param(ArrayBackend(use_numpy=False), id="array-fallback"),
        pytest.param(get_backend("native"), id="native"),
    ]
    if _numpy_available():
        params.append(pytest.param(ArrayBackend(use_numpy=True), id="array-numpy"))
    return params


@pytest.fixture(params=_backend_params())
def backend(request):
    return request.param


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_backends_present(self):
        assert {"bigint", "array"} <= set(available_backends())

    def test_executor_registry_gained_array(self):
        assert "array" in available_executors()

    def test_get_backend_by_name_and_instance(self):
        be = get_backend("bigint")
        assert be.name == "bigint"
        assert get_backend(be) is be

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown plane backend"):
            get_backend("gpu")

    def test_default_is_bigint(self):
        assert default_backend_name() == "bigint"
        assert get_backend(None).name == "bigint"

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLANE_BACKEND", "array")
        assert default_backend_name() == "array"
        assert get_backend(None).name == "array"

    def test_use_backend_scopes_default(self):
        assert default_backend_name() == "bigint"
        with use_backend("array") as be:
            assert be.name == "array"
            assert default_backend_name() == "array"
            assert get_backend(None) is be
        assert default_backend_name() == "bigint"

    def test_set_default_backend_validates(self):
        with pytest.raises(KeyError, match="unknown plane backend"):
            set_default_backend("gpu")

    def test_numpy_force_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert numpy_disabled_by_env()
        assert ArrayBackend().variant == "fallback"
        monkeypatch.setenv("REPRO_NO_NUMPY", "0")
        assert not numpy_disabled_by_env()

    def test_native_registered(self):
        assert "native" in available_backends()
        be = get_backend("native")
        assert be.name == "native"
        assert be.variant in ("built", "fallback")
        assert be.built == (be.variant == "built")

    def test_known_names_include_auto_alias(self):
        names = known_backend_names()
        assert set(names) == set(available_backends()) | {AUTO_BACKEND}
        assert names == sorted(names)

    def test_auto_resolves_to_native_or_bigint(self):
        resolved = resolve_backend_name(AUTO_BACKEND)
        expect = "native" if get_backend("native").built else "bigint"
        assert resolved == expect
        assert get_backend(AUTO_BACKEND).name == resolved
        # concrete names resolve to themselves; the default is unchanged
        assert resolve_backend_name("array") == "array"
        assert default_backend_name() == "bigint"

    def test_use_backend_accepts_auto(self):
        with use_backend(AUTO_BACKEND) as be:
            assert be.name == resolve_backend_name(AUTO_BACKEND)
            assert get_backend(None) is be
        assert default_backend_name() == "bigint"


# ----------------------------------------------------------------------
# Native backend: forced fallback (REPRO_NO_NATIVE=1)
# ----------------------------------------------------------------------
class TestNativeFallback:
    """The graceful-degradation contract: no kernel, same behavior.

    These construct *fresh* proxies after resetting the kernel loader,
    so they exercise the fallback resolution path regardless of whether
    this host built the kernel; the registry's own native instance is
    left untouched (its resolution is cached per instance).
    """

    @pytest.fixture
    def no_native(self, monkeypatch):
        from repro.backends import _kernel

        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        _kernel._reset_for_tests()
        yield
        _kernel._reset_for_tests()

    def test_fresh_proxy_reports_fallback(self, no_native):
        be = NativeBackend()
        assert be.variant == "fallback"
        assert not be.built
        assert be.word_bits == BigIntBackend.word_bits

    def test_auto_resolves_to_bigint_without_kernel(self, no_native):
        original = get_backend("native")
        try:
            register_backend("native", NativeBackend())
            assert resolve_backend_name(AUTO_BACKEND) == "bigint"
            assert get_backend(AUTO_BACKEND).name == "bigint"
        finally:
            register_backend("native", original)

    def test_fallback_verification_matches_bigint(self, no_native):
        be = NativeBackend()
        circuit = build_two_sort(3)
        out = verify_two_sort_circuit(circuit, 3, backend=be)
        ref = verify_two_sort_circuit(circuit, 3, backend="bigint")
        assert out.ok and out.summary() == ref.summary()
        broken = _broken_two_sort(2)
        out = verify_two_sort_circuit(broken, 2, backend=NativeBackend())
        ref = verify_two_sort_circuit(broken, 2, backend="bigint")
        assert not out.ok and out.failures == ref.failures

    def test_one_time_stderr_notice(self, no_native, capsys):
        first = NativeBackend()
        first.zeros(8)  # forces resolution
        err = capsys.readouterr().err
        assert "native plane kernel unavailable" in err
        assert "falling back to bigint planes" in err
        second = NativeBackend()
        second.zeros(8)
        assert capsys.readouterr().err == ""  # emitted once per process

    def test_forced_fallback_sharded_sweep(self, no_native):
        original = get_backend("native")
        try:
            register_backend("native", NativeBackend())
            circuit = build_two_sort(4)
            out = verify_two_sort_sharded(circuit, 4, jobs=1, backend="native")
            ref = verify_two_sort_sharded(circuit, 4, jobs=1, backend="bigint")
            assert out.ok and out.to_json() == ref.to_json()
        finally:
            register_backend("native", original)


# ----------------------------------------------------------------------
# Plane-op contract, per backend
# ----------------------------------------------------------------------
class TestPlaneOps:
    LANES = [0, 1, 7, 8, 63, 64, 65, 200]

    def test_int_round_trip(self, backend):
        rng = random.Random(20180319)
        for lanes in self.LANES:
            for _ in range(5):
                value = rng.getrandbits(lanes) if lanes else 0
                plane = backend.from_int(value, lanes)
                assert backend.to_int(plane, lanes) == value

    def test_to_bytes_is_canonical(self, backend):
        ref = BigIntBackend()
        rng = random.Random(7)
        for lanes in self.LANES:
            value = rng.getrandbits(lanes) if lanes else 0
            assert backend.to_bytes(
                backend.from_int(value, lanes), lanes
            ) == ref.to_bytes(value, lanes)

    def test_zeros_ones(self, backend):
        for lanes in self.LANES:
            assert backend.to_int(backend.zeros(lanes), lanes) == 0
            assert backend.to_int(backend.ones(lanes), lanes) == (1 << lanes) - 1

    def test_bitwise_ops_match_int_reference(self, backend):
        rng = random.Random(99)
        for lanes in self.LANES:
            a = rng.getrandbits(lanes) if lanes else 0
            b = rng.getrandbits(lanes) if lanes else 0
            pa, pb = backend.from_int(a, lanes), backend.from_int(b, lanes)
            assert backend.to_int(backend.band(pa, pb), lanes) == a & b
            assert backend.to_int(backend.bor(pa, pb), lanes) == a | b
            assert backend.to_int(backend.bxor(pa, pb), lanes) == a ^ b

    def test_bnot_masks_tail(self, backend):
        for lanes in self.LANES:
            inv = backend.bnot(backend.zeros(lanes), lanes)
            assert backend.to_int(inv, lanes) == (1 << lanes) - 1
            # bits beyond the lane count never leak into the byte form
            raw = backend.to_bytes(inv, lanes)
            assert len(raw) == (lanes + 7) >> 3
            if lanes & 7:
                assert raw[-1] >> (lanes & 7) == 0

    def test_popcount_and_queries(self, backend):
        rng = random.Random(5)
        for lanes in self.LANES:
            value = rng.getrandbits(lanes) if lanes else 0
            plane = backend.from_int(value, lanes)
            assert backend.popcount(plane) == bin(value).count("1")
            assert backend.any(plane) == (value != 0)
            assert backend.eq(plane, backend.from_int(value, lanes))

    def test_lane_addressing(self, backend):
        lanes = 130
        value = (1 << 0) | (1 << 63) | (1 << 64) | (1 << 129)
        plane = backend.from_int(value, lanes)
        for j in range(lanes):
            assert backend.get_lane(plane, j) == (value >> j) & 1
        assert list(backend.iter_set_lanes(plane, lanes)) == [0, 63, 64, 129]

    def test_array_lane_word_addressing(self):
        """The explicit lane -> (word, bit) contract of the array layout."""
        assert ArrayBackend.lane_address(0) == (0, 0)
        assert ArrayBackend.lane_address(63) == (0, 63)
        assert ArrayBackend.lane_address(64) == (1, 0)
        assert ArrayBackend.words_for(0) == 0
        assert ArrayBackend.words_for(64) == 1
        assert ArrayBackend.words_for(65) == 2

    def test_coerce_rejects_foreign_planes(self, backend):
        with pytest.raises(TypeError):
            backend.coerce("not a plane", 8)

    def test_from_bytes_masks_tail(self, backend):
        """Regression: from_bytes is a public constructor and must
        enforce the tail-mask invariant like every other one."""
        plane = backend.from_bytes(b"\xff", 5)
        assert backend.to_int(plane, 5) == 0b11111
        assert backend.popcount(plane) == 5
        assert backend.eq(plane, backend.ones(5))
        assert list(backend.iter_set_lanes(plane, 5)) == [0, 1, 2, 3, 4]

    def test_backend_picklable(self, backend):
        """Regression: backends ride along with compiled circuits into
        pool initargs; spawn-start platforms pickle them (the numpy
        module reference used to make that crash)."""
        import pickle

        clone = pickle.loads(pickle.dumps(backend))
        assert clone.name == backend.name
        if isinstance(backend, ArrayBackend):
            assert clone.variant == backend.variant
        assert clone.to_int(clone.from_int(0b101, 3), 3) == 0b101

    def test_circuit_pickle_drops_compile_cache(self, backend):
        """A circuit compiled on any backend must still pickle (pool
        initargs on spawn platforms) -- the per-process program cache is
        rebuilt by workers, not shipped."""
        import pickle

        circuit = build_two_sort(2)
        compile_circuit(circuit, backend)
        clone = pickle.loads(pickle.dumps(circuit))
        assert not hasattr(clone, "_compiled_cache")
        out = verify_two_sort_circuit(clone, 2, backend=backend)
        assert out.ok and out.checked == 49


# ----------------------------------------------------------------------
# Structured packing + fused select-diff, per backend
# ----------------------------------------------------------------------
#: Tail-mask edge widths: single lane, one bit short of a word, exactly
#: one word, one bit into the second word, and a multi-word interior.
EDGE_LANES = [1, 63, 64, 65, 130]


class TestStructuredPacking:
    """from_pattern / expand_bits / from_prefix_runs must agree with the
    bigint reference bit-for-bit at every word boundary (the native
    backend builds these planes in C)."""

    @pytest.mark.parametrize("lanes", EDGE_LANES)
    def test_from_pattern(self, lanes, backend):
        ref = BigIntBackend()
        rng = random.Random(lanes)
        for period in (1, 2, 7, 63, 64, 65):
            value = rng.getrandbits(period)
            want = ref.to_bytes(ref.from_pattern(value, period, lanes), lanes)
            got = backend.from_pattern(value, period, lanes)
            assert backend.to_bytes(got, lanes) == want, (value, period)

    @pytest.mark.parametrize("lanes", EDGE_LANES)
    def test_expand_bits(self, lanes, backend):
        ref = BigIntBackend()
        rng = random.Random(lanes)
        for run in (1, 3, 64, 65):
            bits = rng.getrandbits(-(-lanes // run))
            want = ref.to_bytes(ref.expand_bits(bits, run, lanes), lanes)
            got = backend.expand_bits(bits, run, lanes)
            assert backend.to_bytes(got, lanes) == want, run

    @pytest.mark.parametrize("lanes", EDGE_LANES)
    def test_from_prefix_runs(self, lanes, backend):
        ref = BigIntBackend()
        for first, period in [(1, 1), (1, 2), (3, 7), (63, 64), (64, 65), (65, 66)]:
            want = ref.to_bytes(ref.from_prefix_runs(first, period, lanes), lanes)
            got = backend.from_prefix_runs(first, period, lanes)
            assert backend.to_bytes(got, lanes) == want, (first, period)


def _random_select_diff_case(rng, n_inputs=4, n_ops=15, n_cmp=3):
    """A random SSA program + input/cmp/sel marshalling for the fused
    select-diff entry point (same shape the verifier produces)."""
    from repro.backends.base import OP_AND, OP_BUF, OP_INV, OP_OR, OP_XOR

    ops = []
    written = n_inputs
    for _ in range(n_ops):
        op = rng.choice([OP_AND, OP_OR, OP_INV, OP_XOR, OP_BUF])
        a = rng.randrange(written)
        b = rng.randrange(written) if op not in (OP_INV, OP_BUF) else 0
        ops.append((op, written, a, b))
        written += 1
    cmp = [
        (
            rng.randrange(n_inputs, written),
            rng.randrange(n_inputs),
            rng.randrange(n_inputs),
        )
        for _ in range(n_cmp)
    ]
    # One cmp slot that no op ever writes and no input provides: it must
    # read as all-zero planes (the native marshal zero-fills it).
    cmp.append((written, 0, 1))
    return ops, written + 1, cmp


class TestSelectDiffContract:
    """run_ops_select_diff: every backend must match the bigint
    reference semantics bit-for-bit, including the tail-mask edges
    (the native kernel complements sel in-register, so ~sel's tail
    bits must never leak into the diff)."""

    @pytest.mark.parametrize("lanes", EDGE_LANES)
    def test_matches_bigint_reference(self, lanes, backend):
        ref = BigIntBackend()
        rng = random.Random(20180000 + lanes)
        for trial in range(5):
            ops, n_slots, cmp = _random_select_diff_case(rng)
            in_vals = [
                (slot, rng.getrandbits(lanes), rng.getrandbits(lanes))
                for slot in range(4)
            ]
            sel_int = rng.getrandbits(lanes)
            nsel_int = ((1 << lanes) - 1) ^ sel_int

            def run(be):
                inputs = [
                    (s, be.from_int(v0, lanes), be.from_int(v1, lanes))
                    for s, v0, v1 in in_vals
                ]
                diff, count = be.run_ops_select_diff(
                    ops,
                    n_slots,
                    inputs,
                    cmp,
                    be.from_int(sel_int, lanes),
                    be.from_int(nsel_int, lanes),
                    lanes,
                )
                return be.to_int(diff, lanes), count

            want = run(ref)
            got = run(backend)
            assert got == want, (trial, lanes)
            assert got[1] == bin(want[0]).count("1")


# ----------------------------------------------------------------------
# TritVec across backends
# ----------------------------------------------------------------------
class TestTritVecBackends:
    def test_from_trits_equal_across_backends(self, backend):
        tv = TritVec.from_trits("01M10M", backend=backend)
        ref = TritVec.from_trits("01M10M")
        assert tv.to_str() == "01M10M"
        assert tv == ref and ref == tv
        assert hash(tv) == hash(ref)

    def test_kleene_ops_match_bigint(self, backend):
        pairs = list(itertools.product(ALL_TRITS, repeat=2))
        a = TritVec.from_trits([p[0] for p in pairs], backend=backend)
        b = TritVec.from_trits([p[1] for p in pairs], backend=backend)
        ra = TritVec.from_trits([p[0] for p in pairs])
        rb = TritVec.from_trits([p[1] for p in pairs])
        assert (a & b) == (ra & rb)
        assert (a | b) == (ra | rb)
        assert a.xor(b) == ra.xor(rb)
        assert ~a == ~ra
        assert a.metastable_lanes == ra.metastable_lanes

    def test_int_plane_constructor_validates(self, backend):
        with pytest.raises(ValueError, match="encode a trit"):
            TritVec(2, 0b01, 0b00, backend=backend)
        tv = TritVec(2, 0b01, 0b10, backend=backend)
        assert tv.to_str() == "01"

    def test_mixed_backend_ops_rejected(self):
        a = TritVec.from_trits("0M", backend="bigint")
        b = TritVec.from_trits("0M", backend="array")
        with pytest.raises(ValueError, match="backend mismatch"):
            a & b

    def test_broadcast(self, backend):
        assert TritVec.broadcast("M", 70, backend=backend).to_str() == "M" * 70
        assert TritVec.broadcast(1, 3, backend=backend).metastable_lanes == 0


# ----------------------------------------------------------------------
# Compiled programs across backends
# ----------------------------------------------------------------------
class TestCompiledBackends:
    def test_cache_keyed_per_backend(self):
        c = build_two_sort(2)
        big = compile_circuit(c, "bigint")
        arr = compile_circuit(c, "array")
        assert big is not arr
        assert compile_circuit(c, "bigint") is big
        assert compile_circuit(c, "array") is arr

    def test_cache_invalidated_on_mutation_for_all_backends(self):
        c = Circuit("grow")
        a, b = c.add_input("a"), c.add_input("b")
        c.add_output(c.add_gate(AND2, [a, b]))
        first_big = compile_circuit(c, "bigint")
        first_arr = compile_circuit(c, "array")
        c.add_output(c.add_gate(OR2, [a, b]))
        assert compile_circuit(c, "bigint") is not first_big
        assert compile_circuit(c, "array") is not first_arr

    def test_cache_detects_reregistered_backend(self):
        c = build_two_sort(2)
        original = get_backend("array")
        stale = compile_circuit(c, "array")
        try:
            register_backend("array", ArrayBackend(use_numpy=False))
            fresh = compile_circuit(c, "array")
            assert fresh is not stale
            assert fresh.backend.variant == "fallback"
        finally:
            register_backend("array", original)

    def test_evaluate_batch_matches_bigint(self, backend):
        circuit = build_two_sort(3)
        rng = random.Random(2018)
        vectors = [
            [rng.choice(ALL_TRITS) for _ in range(6)] for _ in range(100)
        ]
        ref = compile_circuit(circuit, "bigint").evaluate_batch(vectors)
        out = compile_circuit(circuit, backend).evaluate_batch(vectors)
        assert out == ref

    def test_scalar_wrappers_honor_default_backend(self, backend):
        """Regression: evaluate()/evaluate_all_resolutions() decode
        backend-native planes -- under the array backend they used to
        see truthy word-arrays and return M for every net (or crash on
        multi-word planes)."""
        from repro.circuits.evaluate import (
            evaluate,
            evaluate_all_resolutions,
            evaluate_interpreted,
            evaluate_words,
        )

        circuit = build_two_sort(2)
        stable = {n: Trit.ZERO for n in circuit.inputs}
        ref = evaluate_interpreted(circuit, stable)
        big = build_two_sort(4)
        ref_words = evaluate_words(circuit, Word("0M"), Word("01"))
        ref_res = evaluate_all_resolutions(big, Word("MMMM"), Word("0MMM"))
        original = get_backend("array")
        try:
            register_backend("array", backend)
            with use_backend("array"):
                assert evaluate(circuit, stable) == ref
                assert evaluate_words(circuit, Word("0M"), Word("01")) == ref_words
                # 7 M bits -> 128 resolution lanes: two words per plane,
                # exercising the multi-word any-lane reduction.
                assert (
                    evaluate_all_resolutions(big, Word("MMMM"), Word("0MMM"))
                    == ref_res
                )
        finally:
            register_backend("array", original)

    def test_run_tritvecs_outputs_detached_from_run_storage(self):
        """Retained batch outputs must not alias per-run scratch
        storage (numpy run_ops writes into one slab per call)."""
        if not _numpy_available():
            pytest.skip("numpy-specific storage concern")
        program = compile_circuit(build_two_sort(2), ArrayBackend(use_numpy=True))
        ins = [
            TritVec.from_trits("0M10", backend=program.backend)
            for _ in range(4)
        ]
        outs = program.run_tritvecs(ins)
        for tv in outs:
            assert tv.p0.base is None and tv.p1.base is None

    def test_run_tritvecs_rejects_foreign_backend(self):
        circuit = build_two_sort(1)
        program = compile_circuit(circuit, "array")
        ins = [TritVec.from_trits("01", backend="bigint") for _ in range(2)]
        with pytest.raises(ValueError, match="backend"):
            program.run_tritvecs(ins)


# ----------------------------------------------------------------------
# Verification equivalence
# ----------------------------------------------------------------------
def _broken_two_sort(width):
    good = build_two_sort(width)
    broken = Circuit("broken")
    ins = [broken.add_input(n) for n in good.inputs]
    outs = broken.instantiate(good, ins)
    broken.add_outputs(outs[width:] + outs[:width])
    return broken


class TestVerifyBackends:
    @pytest.mark.parametrize("width", [2, 4, 5])
    def test_identical_summaries(self, width, backend):
        circuit = build_two_sort(width)
        ref = verify_two_sort_circuit(circuit, width, backend="bigint")
        out = verify_two_sort_circuit(circuit, width, backend=backend)
        assert out.summary() == ref.summary()
        assert out.ok

    def test_identical_failure_reports(self, backend):
        """Mismatch-lane extraction and per-lane decode must agree
        bit-for-bit: same failing pairs, same messages, same order."""
        broken = _broken_two_sort(3)
        ref = verify_two_sort_circuit(broken, 3, backend="bigint")
        out = verify_two_sort_circuit(broken, 3, backend=backend)
        assert not out.ok
        assert out.failure_count == ref.failure_count
        assert out.failures == ref.failures

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("name", ["array", "native", "auto"])
    def test_sharded_identical_across_backends(self, jobs, name):
        """Sharded reports byte-identical to bigint for every registered
        backend and the auto alias (whatever it resolves to here)."""
        circuit = build_two_sort(5)
        ref = verify_two_sort_sharded(circuit, 5, jobs=jobs, backend="bigint")
        out = verify_two_sort_sharded(circuit, 5, jobs=jobs, backend=name)
        assert out.to_json() == ref.to_json()
        assert out.checked == 3969

    def test_sharded_failure_reports_identical_native(self):
        """Mismatch extraction through the fused kernel select-diff must
        reproduce bigint's failure tuples byte-for-byte."""
        broken = _broken_two_sort(3)
        ref = verify_two_sort_sharded(broken, 3, jobs=2, backend="bigint")
        out = verify_two_sort_sharded(broken, 3, jobs=2, backend="native")
        assert not out.ok
        assert out.to_json() == ref.to_json()

    def test_process_pool_forwards_backend_name(self):
        """--backend array across a real pool: workers compile on the
        named backend and counts stay bit-identical."""
        circuit = build_two_sort(4)
        out = verify_two_sort_sharded(
            circuit, 4, jobs=2, executor="process", backend="array"
        )
        ref = verify_two_sort_circuit(circuit, 4)
        assert (out.checked, out.failure_count) == (ref.checked, 0)

    def test_array_executor_pins_array_backend(self):
        """The ROADMAP hook: executor="array" alone (no backend arg)
        must run plane work on the array backend."""
        circuit = build_two_sort(4)
        result = verify_two_sort_sharded(circuit, 4, jobs=1, executor="array")
        assert result.ok and result.checked == 961
        cache = circuit._compiled_cache
        assert "array" in cache and cache["array"].backend.name == "array"

    def test_explicit_backend_beats_array_executor(self):
        circuit = build_two_sort(3)
        result = verify_two_sort_sharded(
            circuit, 3, jobs=1, executor="array", backend="bigint"
        )
        assert result.ok
        assert "bigint" in circuit._compiled_cache

    def test_fallback_via_registry_monkeypatch(self):
        """Numpy-absent path through the public name-based selection."""
        original = get_backend("array")
        try:
            register_backend("array", ArrayBackend(use_numpy=False))
            assert get_backend("array").variant == "fallback"
            circuit = build_two_sort(4)
            out = verify_two_sort_circuit(circuit, 4, backend="array")
            ref = verify_two_sort_circuit(circuit, 4, backend="bigint")
            assert out.summary() == ref.summary()
        finally:
            register_backend("array", original)


# ----------------------------------------------------------------------
# Width-adaptive default shard sizing (pinned)
# ----------------------------------------------------------------------
class TestDefaultShardSize:
    def test_pinned_sizes_bigint(self):
        # (width, jobs) -> lanes; B<10 balances ~4 shards/worker within
        # the backend budget, B>=10 spends the budget on whole g-rows.
        expected = {
            (5, 1): 1000,   # ceil(S*S/4) = 993 lanes, word-aligned up
            (8, 1): 16384,
            (8, 4): 16328,
            (9, 4): 16384,  # the value recorded in BENCH_engines.json
            (10, 1): 16376,  # 8 whole g-rows of S=2047
            (11, 1): 16384,  # 4 rows of 4095 = 16380, word-aligned up
            (12, 1): 16384,  # 2 rows of 8191 = 16382, word-aligned up
            (13, 1): 16384,  # 1 row of 16383, word-aligned up
        }
        for (width, jobs), want in expected.items():
            got = _default_pair_shard_size(width, jobs, "bigint")
            assert got == want, (width, jobs, got, want)

    def test_pinned_sizes_array(self):
        expected = {
            (8, 1): 32768,   # array budget is 2x: amortizes ufunc calls
            (8, 4): 16384,
            (10, 1): 32768,  # 16 rows of 2047 = 32752, word-aligned up
            (13, 1): 32768,  # 2 rows of 16383, word-aligned up
        }
        for (width, jobs), want in expected.items():
            got = _default_pair_shard_size(width, jobs, "array")
            assert got == want, (width, jobs, got, want)

    def test_pinned_sizes_native(self):
        if not get_backend("native").built:
            pytest.skip("native kernel not built: proxy sizes as bigint")
        # The native budget (1<<18 lanes) runs the whole B=8 pair domain
        # as one shard when serial; B>=10 spends it on whole g-rows.
        expected = {
            (5, 1): 1024,
            (8, 1): 65344,   # ceil(S*S/4) word-aligned: one real shard
            (8, 4): 16384,
            (10, 1): 262016,  # 128 whole g-rows of S=2047
            (12, 1): 262144,  # 32 rows of 8191, word-aligned up
            (13, 1): 262144,  # 16 rows of 16383, word-aligned up
        }
        for (width, jobs), want in expected.items():
            got = _default_pair_shard_size(width, jobs, "native")
            assert got == want, (width, jobs, got, want)

    def test_word_alignment(self):
        # The native proxy sizes with its resolved representation's word
        # width: 64-bit lane words when built, bigint bytes on fallback.
        native_word = 64 if get_backend("native").built else 8
        for width in range(4, 14):
            for jobs in (1, 2, 8):
                assert _default_pair_shard_size(width, jobs, "array") % 64 == 0
                assert _default_pair_shard_size(width, jobs, "bigint") % 8 == 0
                assert (
                    _default_pair_shard_size(width, jobs, "native")
                    % native_word == 0
                )

    def test_whole_rows_at_wide_widths(self):
        for width in (10, 11, 12, 13):
            S = (1 << (width + 1)) - 1
            size = _default_pair_shard_size(width, 1, "bigint")
            # aligned up from a whole-row budget: never more than one
            # word short of covering the rounded row count
            assert size >= (size // S) * S
            assert size // S >= 1


# ----------------------------------------------------------------------
# Batched network simulation across backends
# ----------------------------------------------------------------------
class TestBatchSimulationBackends:
    def test_sort_words_batch_backend_arg(self, backend):
        from repro.networks.topologies import best_known

        net = best_known(4)
        rng = random.Random(11)
        vectors = [
            [from_rank(rng.randrange(31), 4) for _ in range(4)]
            for _ in range(12)
        ]
        ref = sort_words_batch(net, vectors)
        out = sort_words_batch(net, vectors, backend=backend)
        assert out == ref

    def test_sharded_batch_forwards_backend(self):
        from repro.networks.topologies import best_known

        net = best_known(4)
        rng = random.Random(13)
        vectors = [
            [from_rank(rng.randrange(31), 4) for _ in range(4)]
            for _ in range(9)
        ]
        ref = sort_words_batch(net, vectors)
        out = sort_words_batch(
            net, vectors, jobs=2, shard_size=3, executor="serial",
            backend="array",
        )
        assert out == ref


# ----------------------------------------------------------------------
# Property-based equivalence (hypothesis)
# ----------------------------------------------------------------------
trits = st.sampled_from(list(ALL_TRITS))


def valid_strings(width):
    n_ranks = (1 << (width + 1)) - 1
    return st.integers(min_value=0, max_value=n_ranks - 1).map(
        lambda r: from_rank(r, width)
    )


def layered_networks(max_channels=5, max_comparators=8):
    def build(spec):
        channels, raw = spec
        comps = []
        for a, b in raw:
            lo, hi = sorted((a % channels, b % channels))
            if lo != hi:
                comps.append((lo, hi))
        return from_comparator_list(channels, comps, name="random")

    return st.tuples(
        st.integers(min_value=2, max_value=max_channels),
        st.lists(
            st.tuples(st.integers(0, 31), st.integers(0, 31)),
            max_size=max_comparators,
        ),
    ).map(build)


_PROPERTY_BACKENDS = [
    "bigint",
    ArrayBackend(use_numpy=False),
    get_backend("native"),
] + ([ArrayBackend(use_numpy=True)] if _numpy_available() else [])


@settings(max_examples=30, deadline=None)
@given(st.lists(trits, max_size=80))
def test_tritvec_semantics_identical_across_backends(batch):
    """Same trits in, same trits out, every backend, every connective."""
    vecs = [TritVec.from_trits(batch, backend=be) for be in _PROPERTY_BACKENDS]
    ref = vecs[0]
    rev = list(reversed(batch))
    for be, tv in zip(_PROPERTY_BACKENDS, vecs):
        other = TritVec.from_trits(rev, backend=be)
        assert tv == ref and hash(tv) == hash(ref)
        assert tv.to_trits() == batch
        assert (tv & other) == (ref & TritVec.from_trits(rev))
        assert (tv | other).to_trits() == (
            ref | TritVec.from_trits(rev)
        ).to_trits()
        assert tv.xor(other) == vecs[0].xor(TritVec.from_trits(rev))
        assert (~tv).to_trits() == (~ref).to_trits()


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_batch_identical_across_backends_on_random_networks(data):
    """bigint and array (numpy + fallback) sort identically through
    random layered networks, including the sharded dispatch path."""
    width = data.draw(st.integers(min_value=1, max_value=3))
    net = data.draw(layered_networks())
    vectors = data.draw(
        st.lists(
            st.lists(
                valid_strings(width),
                min_size=net.channels,
                max_size=net.channels,
            ),
            max_size=5,
        )
    )
    reference = sort_words_batch(net, vectors, backend="bigint")
    assert reference == [sort_words(net, v, engine="fsm") for v in vectors]
    for be in _PROPERTY_BACKENDS[1:]:
        assert sort_words_batch(net, vectors, backend=be) == reference
    sharded = sort_words_batch(
        net, vectors, jobs=2, shard_size=2, executor="serial",
        backend="array",
    )
    assert sharded == reference


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=3))
def test_sharded_verification_identical_across_backends(width, jobs):
    """Sharded VerificationResults are bit-identical across backends
    on every width/job combination hypothesis throws at them."""
    circuit = build_two_sort(width)
    ref = verify_two_sort_sharded(
        circuit, width, jobs=jobs, executor="serial", backend="bigint"
    )
    original = get_backend("array")
    for be in _PROPERTY_BACKENDS[1:]:
        # Instances are forwarded to workers by *name*, so exercise each
        # variant by temporarily registering it under "array".
        try:
            register_backend("array", be)
            out = verify_two_sort_sharded(
                circuit, width, jobs=jobs, executor="serial", backend="array"
            )
        finally:
            register_backend("array", original)
        assert (out.checked, out.failure_count, out.failures) == (
            ref.checked,
            ref.failure_count,
            ref.failures,
        )
