"""Executable forms of the paper's definitional tables and lemmas.

One test per table/figure/lemma of the paper's Sections 2-3, so the
reproduction's ground truth is auditable in a single file:

* Table 1 -- 4-bit reflected Gray code
* Table 2 -- valid inputs and their order
* Table 3 -- gate behaviour under metastability
* Table 5 -- the ⋄ and out operator tables
* Observation 3.1 -- substring structure of the code
* Lemma 3.2 -- first-difference comparison rule
* Figure 2 -- the comparison FSM
"""

import itertools

import pytest

from repro.core.diamond import DIAMOND_TABLE, diamond
from repro.core.fsm import EQ_EVEN, EQ_ODD, GREATER, LESS, classify
from repro.core.out_op import OUT_TABLE
from repro.graycode.rgc import all_codewords, gray_decode, gray_encode, parity
from repro.graycode.valid import all_valid_strings, try_rank
from repro.ternary.kleene import kleene_and, kleene_not, kleene_or
from repro.ternary.trit import Trit
from repro.ternary.word import Word


class TestTable1:
    PAPER_TABLE_1 = {
        0: "0000", 1: "0001", 2: "0011", 3: "0010",
        4: "0110", 5: "0111", 6: "0101", 7: "0100",
        8: "1100", 9: "1101", 10: "1111", 11: "1110",
        12: "1010", 13: "1011", 14: "1001", 15: "1000",
    }

    def test_verbatim(self):
        for value, codeword in self.PAPER_TABLE_1.items():
            assert str(gray_encode(value, 4)) == codeword


class TestTable2:
    PAPER_ROWS = [
        ("0000", 0), ("000M", None), ("0001", 1), ("00M1", None),
        ("0011", 2), ("001M", None), ("0010", 3), ("0M10", None),
        ("0110", 4), ("011M", None), ("0111", 5), ("01M1", None),
        ("0101", 6), ("010M", None), ("0100", 7), ("M100", None),
        ("1100", 8), ("110M", None), ("1101", 9), ("11M1", None),
        ("1111", 10), ("111M", None), ("1110", 11), ("1M10", None),
        ("1010", 12), ("101M", None), ("1011", 13), ("10M1", None),
        ("1001", 14), ("100M", None), ("1000", 15),
    ]

    def test_verbatim_with_decoded_values(self):
        """The table's rows in order; stable rows decode as printed."""
        enumerated = all_valid_strings(4)
        assert len(enumerated) == len(self.PAPER_ROWS)
        for word, (text, value) in zip(enumerated, self.PAPER_ROWS):
            assert str(word) == text
            if value is not None:
                assert gray_decode(word) == value
            else:
                assert word.metastable_count == 1

    def test_ranks_ascend(self):
        ranks = [try_rank(Word(text)) for text, _ in self.PAPER_ROWS]
        assert ranks == list(range(31))


class TestTable3:
    def test_and_or_inv_closure_tables(self):
        t = {c: Trit.from_char(c) for c in "01M"}
        and_rows = {"0": "000", "1": "01M", "M": "0MM"}
        or_rows = {"0": "01M", "1": "111", "M": "M1M"}
        for a, row in and_rows.items():
            for b, want in zip("01M", row):
                assert kleene_and(t[a], t[b]).to_char() == want
        for a, row in or_rows.items():
            for b, want in zip("01M", row):
                assert kleene_or(t[a], t[b]).to_char() == want
        assert kleene_not(t["0"]).to_char() == "1"
        assert kleene_not(t["1"]).to_char() == "0"
        assert kleene_not(t["M"]).to_char() == "M"


class TestTable5:
    PAPER_DIAMOND = {
        "00": {"00": "00", "01": "01", "11": "11", "10": "10"},
        "01": {"00": "01", "01": "01", "11": "01", "10": "01"},
        "11": {"00": "11", "01": "10", "11": "00", "10": "01"},
        "10": {"00": "10", "01": "10", "11": "10", "10": "10"},
    }
    PAPER_OUT = {
        "00": {"00": "00", "01": "10", "11": "11", "10": "10"},
        "01": {"00": "00", "01": "10", "11": "11", "10": "01"},
        "11": {"00": "00", "01": "01", "11": "11", "10": "01"},
        "10": {"00": "00", "01": "01", "11": "11", "10": "10"},
    }

    def test_diamond_verbatim(self):
        for s, row in self.PAPER_DIAMOND.items():
            for b, want in row.items():
                assert DIAMOND_TABLE[(s, b)] == want

    def test_out_verbatim(self):
        for s, row in self.PAPER_OUT.items():
            for b, want in row.items():
                assert OUT_TABLE[(s, b)] == want


class TestObservation31:
    def test_substring_lists_count_up_and_down(self):
        """Dropping prefixes/suffixes leaves alternating up/down counts of
        the shorter code."""
        width = 5
        for i, j in [(2, 5), (1, 4), (2, 4), (3, 5)]:
            sub_width = j - i + 1
            seq = [g.substring(i, j) for g in all_codewords(width)]
            deduped = [seq[0]]
            for w in seq[1:]:
                if w != deduped[-1]:
                    deduped.append(w)
            codes = all_codewords(sub_width)
            ascending = [gray_decode(w) for w in codes]
            # walk deduped and check it zigzags 0..N-1, N-1..0, ...
            values = [gray_decode(w) for w in deduped]
            n = 1 << sub_width
            direction = 1
            expect = 0
            for v in values:
                assert v == expect, (i, j, values)
                if (expect == n - 1 and direction == 1) or (
                    expect == 0 and direction == -1
                ):
                    direction = -direction
                expect += direction
            # (each codeword is a valid sub-codeword by construction)

    def test_decomposition_identity(self):
        """<g> = 2<g_{1,B-1}> + XOR(par(g_{1,B-1}), g_B) (Obs. 3.1 proof)."""
        width = 5
        for x in range(1 << width):
            g = gray_encode(x, width)
            prefix = g.substring(1, width - 1)
            expected = 2 * gray_decode(prefix) + (
                parity(prefix) ^ g.bit(width).to_int()
            )
            assert expected == x


class TestFigure2:
    def test_fsm_decides_like_decoder(self):
        width = 4
        for x in range(1 << width):
            for y in range(1 << width):
                g, h = gray_encode(x, width), gray_encode(y, width)
                state = classify(g, h)
                if x > y:
                    assert state == GREATER
                elif x < y:
                    assert state == LESS
                else:
                    assert state == (EQ_ODD if x % 2 else EQ_EVEN)
