"""Tests for repro.verify (exhaustive sweeps and random workloads)."""

import pytest

from repro.core.two_sort import build_two_sort
from repro.graycode.valid import is_valid, rank
from repro.ternary.word import Word
from repro.verify.exhaustive import (
    VerificationResult,
    valid_pairs,
    verify_containment,
    verify_two_sort_circuit,
)
from repro.verify.random_valid import (
    ValidStringSource,
    measurement_sweep,
    verify_random_pairs,
)


class TestVerificationResult:
    def test_empty_is_ok(self):
        assert VerificationResult().ok

    def test_record_counts_beyond_limit(self):
        r = VerificationResult()
        for i in range(30):
            r.record(f"failure {i}", limit=5)
        assert r.failure_count == 30
        assert len(r.failures) == 5
        assert "30 FAILURES" in r.summary()

    def test_summary_ok(self):
        r = VerificationResult(checked=10)
        assert "OK" in r.summary()

    def test_truncation_is_flagged(self):
        """The hard-coded failure cap used to drop counterexamples
        silently; now every consumer can see that it happened."""
        r = VerificationResult()
        for i in range(25):
            r.record(f"failure {i}")
        assert r.truncated is True
        assert len(r.failures) == 20
        assert "first 20 shown" in r.summary()

    def test_no_truncation_within_limit(self):
        r = VerificationResult()
        for i in range(5):
            r.record(f"failure {i}")
        assert r.truncated is False
        assert "first" not in r.summary()

    def test_merge_propagates_truncation(self):
        capped = VerificationResult()
        for i in range(30):
            capped.record(f"x{i}")
        clean = VerificationResult(checked=5)
        merged = VerificationResult.merge([clean, capped])
        assert merged.truncated is True

    def test_merge_sets_truncation_when_cap_drops_messages(self):
        parts = []
        for k in range(3):
            r = VerificationResult()
            for i in range(10):  # each under the cap on its own
                r.record(f"shard{k}-{i}")
            assert not r.truncated
            parts.append(r)
        merged = VerificationResult.merge(parts)
        assert merged.failure_count == 30
        assert len(merged.failures) == 20
        assert merged.truncated is True

    def test_to_dict_round_trips_through_json(self):
        import json

        r = VerificationResult(checked=7)
        r.record("bad")
        r.elapsed = 0.25
        payload = json.loads(r.to_json())
        assert payload == {
            "checked": 7,
            "ok": False,
            "failure_count": 1,
            "failures": ["bad"],
            "truncated": False,
            "elapsed_s": 0.25,
        }

    def test_to_dict_omits_unset_timing(self):
        assert "elapsed_s" not in VerificationResult().to_dict()


class TestExhaustive:
    def test_valid_pairs_count(self):
        assert sum(1 for _ in valid_pairs(3)) == 15 * 15

    def test_verify_good_circuit(self):
        result = verify_two_sort_circuit(build_two_sort(2), 2)
        assert result.ok and result.checked == 49

    def test_verify_catches_broken_circuit(self):
        """A circuit with swapped outputs must be flagged."""
        from repro.circuits.netlist import Circuit

        good = build_two_sort(2)
        broken = Circuit("broken")
        ins = [broken.add_input(n) for n in good.inputs]
        outs = broken.instantiate(good, ins)
        # swap max and min busses
        broken.add_outputs(outs[2:] + outs[:2])
        result = verify_two_sort_circuit(broken, 2)
        assert not result.ok
        assert result.failure_count > 0

    def test_containment_weaker_than_equality(self):
        result = verify_containment(build_two_sort(3), 3)
        assert result.ok


class TestVerifyRandomPairs:
    def test_good_circuit_passes(self):
        result = verify_random_pairs(build_two_sort(6), 6, 200, seed=4)
        assert result.ok and result.checked == 200

    def test_broken_circuit_caught(self):
        from repro.circuits.netlist import Circuit

        good = build_two_sort(3)
        broken = Circuit("broken")
        ins = [broken.add_input(n) for n in good.inputs]
        outs = broken.instantiate(good, ins)
        broken.add_outputs(outs[3:] + outs[:3])  # swap max/min busses
        result = verify_random_pairs(broken, 3, 300, meta_rate=0.5, seed=1)
        assert not result.ok
        assert "got" in result.failures[0] and "want" in result.failures[0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="needs 8 inputs"):
            verify_random_pairs(build_two_sort(3), 4, 10)

    def test_deterministic_by_seed(self):
        a = verify_random_pairs(build_two_sort(4), 4, 50, seed=9)
        b = verify_random_pairs(build_two_sort(4), 4, 50, seed=9)
        assert a.checked == b.checked == 50 and a.ok and b.ok


class TestValidStringSource:
    def test_samples_are_valid(self):
        src = ValidStringSource(4, meta_rate=0.5, seed=1)
        for _ in range(200):
            assert is_valid(src.sample())

    def test_meta_rate_zero_gives_stable(self):
        src = ValidStringSource(4, meta_rate=0.0, seed=2)
        assert all(src.sample().is_stable for _ in range(100))

    def test_meta_rate_one_gives_superposed(self):
        src = ValidStringSource(4, meta_rate=1.0, seed=3)
        assert all(src.sample().metastable_count == 1 for _ in range(100))

    def test_meta_rate_bounds(self):
        with pytest.raises(ValueError):
            ValidStringSource(4, meta_rate=1.5)

    def test_deterministic_by_seed(self):
        a = ValidStringSource(4, seed=7)
        b = ValidStringSource(4, seed=7)
        assert [a.sample() for _ in range(20)] == [b.sample() for _ in range(20)]

    def test_pair_and_vector(self):
        src = ValidStringSource(3, seed=5)
        g, h = src.sample_pair()
        assert len(g) == len(h) == 3
        vec = src.sample_vector(7)
        assert len(vec) == 7

    def test_uniform_rank_covers_superpositions(self):
        src = ValidStringSource(2, seed=11)
        ranks = {rank(src.sample_uniform_rank()) for _ in range(300)}
        assert ranks == set(range(7))  # all 7 valid strings of width 2


class TestMeasurementSweep:
    def test_shape_and_reproducibility(self):
        a = measurement_sweep(3, channels=4, vectors=5, seed=9)
        b = measurement_sweep(3, channels=4, vectors=5, seed=9)
        assert a == b
        assert len(a) == 5 and all(len(v) == 4 for v in a)
