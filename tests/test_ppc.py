"""Tests for the parallel prefix framework (repro.ppc)."""

import operator

import pytest

from repro.circuits.builder import or2
from repro.circuits.netlist import Circuit
from repro.circuits.analysis import logic_depth
from repro.ppc.circuit import build_ppc, build_serial, build_sklansky
from repro.ppc.prefix import (
    eq3_cost_pow2,
    eq3_delay_pow2,
    ladner_fischer_prefixes,
    lf_depth,
    lf_op_count,
    serial_prefixes,
)
from repro.ppc.schedules import SCHEDULES, get_schedule


class TestValueLevelPrefixes:
    @pytest.mark.parametrize("n", list(range(1, 26)))
    def test_lf_equals_serial_for_addition(self, n):
        items = [i * 7 % 13 for i in range(n)]
        assert ladner_fischer_prefixes(items, operator.add) == serial_prefixes(
            items, operator.add
        )

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
    def test_lf_with_string_concat(self, n):
        """Non-commutative associative op: order must be preserved."""
        items = [chr(ord("a") + i) for i in range(n)]
        want = ["".join(items[: i + 1]) for i in range(n)]
        assert ladner_fischer_prefixes(items, operator.add) == want

    def test_empty(self):
        assert ladner_fischer_prefixes([], operator.add) == []
        assert serial_prefixes([], operator.add) == []


class TestOpCounts:
    def test_key_values_for_table7(self):
        """C(1)=0, C(3)=2, C(7)=9, C(15)=24 drive the paper's gate counts."""
        assert lf_op_count(1) == 0
        assert lf_op_count(3) == 2
        assert lf_op_count(7) == 9
        assert lf_op_count(15) == 24

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
    def test_eq3_closed_form_powers_of_two(self, n):
        """Paper Eq. 3: cost(PPC(n)) = 2n - log2 n - 2 for powers of 2."""
        assert lf_op_count(n) == eq3_cost_pow2(n)

    def test_eq3_rejects_non_powers(self):
        with pytest.raises(ValueError):
            eq3_cost_pow2(6)
        with pytest.raises(ValueError):
            eq3_delay_pow2(0)

    def test_op_count_matches_actual_ops(self):
        """The formula counts exactly the ops the recursion performs."""
        for n in range(1, 33):
            counter = {"ops": 0}

            def op(a, b):
                counter["ops"] += 1
                return a + b

            ladner_fischer_prefixes(list(range(n)), op)
            assert counter["ops"] == lf_op_count(n), n

    def test_op_count_rejects_zero(self):
        with pytest.raises(ValueError):
            lf_op_count(0)


class TestDepth:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 15, 16, 31, 32])
    def test_depth_within_eq3_bound(self, n):
        """Measured LF depth never exceeds the 2⌈log2 n⌉ - 1 bound."""
        if n == 1:
            assert lf_depth(1) == 0
            return
        bound = 2 * (n - 1).bit_length() - 1
        assert 0 < lf_depth(n) <= bound

    def test_depth_is_logarithmic(self):
        assert lf_depth(1024) <= 19  # 2*10 - 1


class TestCircuitGenerators:
    def _count_circuit(self, builder, n):
        """Build an OR-prefix circuit and return (circuit, outputs)."""
        c = Circuit("ppc")
        items = [(c.add_input(f"i{k}"),) for k in range(n)]

        def op(circuit, a, b):
            return (or2(circuit, a[0], b[0]),)

        outs = builder(c, items, op)
        c.add_outputs(net for (net,) in outs)
        return c

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 15, 16])
    def test_lf_circuit_gate_count(self, n):
        c = self._count_circuit(build_ppc, n)
        assert c.gate_count() == lf_op_count(n)

    @pytest.mark.parametrize("builder", [build_ppc, build_serial, build_sklansky])
    @pytest.mark.parametrize("n", [1, 2, 3, 6, 9, 16])
    def test_all_schedules_compute_or_prefixes(self, builder, n):
        from repro.circuits.evaluate import evaluate_words
        from repro.ternary.word import Word

        c = self._count_circuit(builder, n)
        for pattern in range(1 << n):
            bits = [(pattern >> k) & 1 for k in range(n)]
            out = evaluate_words(c, Word(bits))
            want = []
            acc = 0
            for bit in bits:
                acc |= bit
                want.append(acc)
            assert out == Word(want), (builder.__name__, bits)

    def test_serial_cost_and_depth(self):
        n = 9
        c = self._count_circuit(build_serial, n)
        assert c.gate_count() == n - 1
        assert logic_depth(c) == n - 1

    def test_sklansky_depth_optimal(self):
        import math

        n = 16
        c = self._count_circuit(build_sklansky, n)
        assert logic_depth(c) == math.ceil(math.log2(n))
        # pays with more gates than LF
        lf = self._count_circuit(build_ppc, n)
        assert c.gate_count() > lf.gate_count()


class TestScheduleRegistry:
    def test_lookup(self):
        assert get_schedule("ladner_fischer") is build_ppc
        assert set(SCHEDULES) == {"ladner_fischer", "serial", "sklansky"}

    def test_unknown_schedule(self):
        with pytest.raises(KeyError, match="unknown prefix schedule"):
            get_schedule("magic")
