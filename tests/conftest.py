"""Shared fixtures for the repro test suite."""

import pytest

from repro.graycode.valid import all_valid_strings
from repro.ternary.trit import Trit
from repro.ternary.word import Word


@pytest.fixture(scope="session")
def valid4():
    """All 31 valid strings of width 4 (Table 2), ascending."""
    return all_valid_strings(4)


@pytest.fixture(scope="session")
def valid3():
    """All 15 valid strings of width 3, ascending."""
    return all_valid_strings(3)


@pytest.fixture(scope="session")
def two_bit_words():
    """All 9 words over {0,1,M} of width 2 (operator-table domain)."""
    trits = (Trit.ZERO, Trit.ONE, Trit.META)
    return [Word([a, b]) for a in trits for b in trits]
