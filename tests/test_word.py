"""Unit tests for repro.ternary.word."""

import pytest

from repro.ternary.trit import META, ONE, ZERO, Trit
from repro.ternary.word import Word, word


class TestConstruction:
    def test_from_string(self):
        w = Word("01M")
        assert len(w) == 3
        assert w[0] is ZERO and w[1] is ONE and w[2] is META

    def test_from_iterable(self):
        assert str(Word([0, 1, "M", True])) == "01M1"

    def test_copy_constructor(self):
        w = Word("0M")
        assert Word(w) == w

    def test_zeros_ones(self):
        assert str(Word.zeros(3)) == "000"
        assert str(Word.ones(2)) == "11"

    def test_from_int_msb_first(self):
        assert str(Word.from_int(5, 4)) == "0101"
        assert str(Word.from_int(0, 2)) == "00"

    def test_from_int_range_check(self):
        with pytest.raises(ValueError):
            Word.from_int(4, 2)
        with pytest.raises(ValueError):
            Word.from_int(-1, 2)

    def test_functional_alias(self):
        assert word("10") == Word("10")


class TestPaperIndexing:
    """1-based bit/substring access matching the paper's g_1..g_B."""

    def test_bit_one_based(self):
        w = Word("0M10")
        assert w.bit(1) is ZERO
        assert w.bit(2) is META
        assert w.bit(4) is ZERO

    def test_bit_out_of_range(self):
        w = Word("01")
        with pytest.raises(IndexError):
            w.bit(0)
        with pytest.raises(IndexError):
            w.bit(3)

    def test_substring_inclusive(self):
        w = Word("0M10")
        assert w.substring(2, 3) == Word("M1")
        assert w.substring(1, 4) == w

    def test_substring_bounds(self):
        with pytest.raises(IndexError):
            Word("01").substring(2, 1)


class TestMeasures:
    def test_stability(self):
        assert Word("0110").is_stable
        assert not Word("01M0").is_stable

    def test_metastable_count_and_positions(self):
        w = Word("M01M")
        assert w.metastable_count == 2
        assert w.metastable_positions() == (1, 4)

    def test_parity_stable(self):
        assert Word("0110").parity() is ZERO
        assert Word("0100").parity() is ONE

    def test_parity_metastable(self):
        assert Word("01M0").parity() is META


class TestAlgebra:
    def test_superpose_definition_2_1(self):
        # The paper's example family: rg(x) * rg(x+1) differs in one bit.
        assert Word("0010").superpose(Word("0110")) == Word("0M10")

    def test_superpose_width_mismatch(self):
        with pytest.raises(ValueError):
            Word("01") * Word("011")

    def test_mul_operator(self):
        assert Word("00") * Word("01") == Word("0M")

    def test_concat(self):
        assert Word("0").concat(Word("1M")) == Word("01M")

    def test_invert(self):
        assert Word("01M").invert() == Word("10M")

    def test_replace_bit(self):
        assert Word("000").replace_bit(2, "M") == Word("0M0")

    def test_replace_bit_out_of_range(self):
        with pytest.raises(IndexError):
            Word("0").replace_bit(2, 1)


class TestEqualityHash:
    def test_string_comparison(self):
        assert Word("0M") == "0M"
        assert Word("0M") != "00"

    def test_hashable(self):
        assert len({Word("01"), Word("01"), Word("0M")}) == 2

    def test_to_int_round_trip(self):
        assert Word.from_int(11, 4).to_int() == 11

    def test_to_int_rejects_meta(self):
        with pytest.raises(ValueError):
            Word("1M").to_int()

    def test_repr_parsable(self):
        assert repr(Word("0M1")) == "Word('0M1')"
