"""Tests for repro.ternary.kleene -- the gate model of paper Table 3.

Beyond spot checks, every connective is verified to equal the
metastable closure of its Boolean function over the full 3x3 domain --
the defining property of the computational model (Section 2).
"""

import itertools

import pytest

from repro.ternary.kleene import (
    kleene_and,
    kleene_and_many,
    kleene_aoi21,
    kleene_mux,
    kleene_nand,
    kleene_nor,
    kleene_not,
    kleene_oai21,
    kleene_or,
    kleene_or_many,
    kleene_xnor,
    kleene_xor,
)
from repro.ternary.trit import ALL_TRITS, META, ONE, ZERO, Trit


def closure_of(boolean_fn, *inputs):
    """Brute-force metastable closure of a scalar Boolean function."""
    axes = [t.resolutions() for t in inputs]
    results = {boolean_fn(*combo) for combo in itertools.product(*axes)}
    if len(results) == 1:
        return results.pop()
    return META


class TestTable3:
    """The exact AND / OR / INV tables from the paper."""

    def test_and_table(self):
        expected = {
            ("0", "0"): "0", ("0", "1"): "0", ("0", "M"): "0",
            ("1", "0"): "0", ("1", "1"): "1", ("1", "M"): "M",
            ("M", "0"): "0", ("M", "1"): "M", ("M", "M"): "M",
        }
        for (a, b), want in expected.items():
            got = kleene_and(Trit.from_char(a), Trit.from_char(b))
            assert got.to_char() == want, f"AND({a},{b})"

    def test_or_table(self):
        expected = {
            ("0", "0"): "0", ("0", "1"): "1", ("0", "M"): "M",
            ("1", "0"): "1", ("1", "1"): "1", ("1", "M"): "1",
            ("M", "0"): "M", ("M", "1"): "1", ("M", "M"): "M",
        }
        for (a, b), want in expected.items():
            got = kleene_or(Trit.from_char(a), Trit.from_char(b))
            assert got.to_char() == want, f"OR({a},{b})"

    def test_inverter_table(self):
        assert kleene_not(ZERO) is ONE
        assert kleene_not(ONE) is ZERO
        assert kleene_not(META) is META


class TestClosureProperty:
    """Each gate function equals the closure of its Boolean function."""

    @pytest.mark.parametrize(
        "gate, boolean",
        [
            (kleene_and, lambda a, b: Trit.from_int(a.to_int() & b.to_int())),
            (kleene_or, lambda a, b: Trit.from_int(a.to_int() | b.to_int())),
            (kleene_nand, lambda a, b: Trit.from_int(1 - (a.to_int() & b.to_int()))),
            (kleene_nor, lambda a, b: Trit.from_int(1 - (a.to_int() | b.to_int()))),
            (kleene_xor, lambda a, b: Trit.from_int(a.to_int() ^ b.to_int())),
            (kleene_xnor, lambda a, b: Trit.from_int(1 - (a.to_int() ^ b.to_int()))),
        ],
    )
    def test_two_input_gates(self, gate, boolean):
        for a in ALL_TRITS:
            for b in ALL_TRITS:
                assert gate(a, b) is closure_of(boolean, a, b)

    def test_mux_is_weaker_than_closure(self):
        """The AND/OR mux covers the closure but loses agreeing 1s on sel=M.

        This gap is exactly why naive selection logic breaks containment
        (paper footnote 2) and why [6]'s cmux adds a consensus term.
        """
        def boolean(sel, a, b):
            return b if sel is ONE else a

        weaker_cases = 0
        for sel in ALL_TRITS:
            for a in ALL_TRITS:
                for b in ALL_TRITS:
                    got = kleene_mux(sel, a, b)
                    ideal = closure_of(boolean, sel, a, b)
                    if got is not ideal:
                        # only ever weaker: M where the closure is stable
                        assert got is META and ideal is not META
                        weaker_cases += 1
        assert weaker_cases > 0  # the gap is real
        assert kleene_mux(META, ONE, ONE) is META
        assert kleene_mux(META, ZERO, ZERO) is ZERO

    def test_aoi21_is_closure(self):
        def boolean(a, b, c):
            return Trit.from_int(1 - ((a.to_int() & b.to_int()) | c.to_int()))

        for combo in itertools.product(ALL_TRITS, repeat=3):
            assert kleene_aoi21(*combo) is closure_of(boolean, *combo)

    def test_oai21_is_closure(self):
        def boolean(a, b, c):
            return Trit.from_int(1 - ((a.to_int() | b.to_int()) & c.to_int()))

        for combo in itertools.product(ALL_TRITS, repeat=3):
            assert kleene_oai21(*combo) is closure_of(boolean, *combo)


class TestMaskingBehaviour:
    """The physical intuition: controlling values suppress metastability."""

    def test_and_masks_meta_with_zero(self):
        assert kleene_and(ZERO, META) is ZERO

    def test_or_masks_meta_with_one(self):
        assert kleene_or(ONE, META) is ONE

    def test_xor_never_masks(self):
        for other in ALL_TRITS:
            assert kleene_xor(META, other) is META

    def test_plain_mux_forwards_only_agreeing_zeros(self):
        # With a metastable select, the AND/OR mux keeps 0s stable but
        # NOT 1s -- containment needs the paper's careful cell structure.
        assert kleene_mux(META, ZERO, ZERO) is ZERO
        assert kleene_mux(META, ONE, ONE) is META


class TestVariadic:
    def test_and_many(self):
        assert kleene_and_many([ONE, ONE, ONE]) is ONE
        assert kleene_and_many([ONE, META, ZERO]) is ZERO
        assert kleene_and_many([]) is ONE  # identity

    def test_or_many(self):
        assert kleene_or_many([ZERO, META, ONE]) is ONE
        assert kleene_or_many([ZERO, ZERO]) is ZERO
        assert kleene_or_many([]) is ZERO  # identity
