"""Tests for the out operator and Theorem 4.3 (Tables 4/5)."""

import pytest

from repro.core.diamond import diamond_m
from repro.core.fsm import output_bits
from repro.core.functional import prefix_states
from repro.core.out_op import OUT_TABLE, out, out_m
from repro.graycode.ops import two_sort_closure
from repro.graycode.valid import all_valid_strings
from repro.ternary.word import Word

STABLE2 = [Word(s) for s in ("00", "01", "11", "10")]


class TestOutTable:
    def test_table_is_total(self):
        assert len(OUT_TABLE) == 16

    def test_matches_table4_semantics(self):
        """out(s, g_i h_i) == (max_i, min_i) per Table 4 / output_bits."""
        for s in STABLE2:
            for b in STABLE2:
                want = output_bits(s, b.bit(1), b.bit(2))
                assert out(s, b) == Word(list(want)), (s, b)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            out(Word("0"), Word("00"))

    def test_closure_on_stable_is_out(self):
        for s in STABLE2:
            for b in STABLE2:
                assert out_m(s, b) == out(s, b)


class TestClosureCases:
    """Key metastable cases from the Theorem 4.3 proof."""

    def test_one_bit_base_case(self):
        # outM(00, Mh)_1 = 1 if h=1 else M
        assert out_m(Word("00"), Word("M1")).bit(1).to_char() == "1"
        assert out_m(Word("00"), Word("M0")).bit(1).to_char() == "M"

    def test_case_iii_s_0M_input_0M(self):
        # outM(0M, 0M)_1 = 0*1*0*1 = M (case (iii) of the proof)
        assert out_m(Word("0M"), Word("0M")).bit(1).to_char() == "M"

    def test_absorbing_state_10_forwards_g(self):
        assert out_m(Word("10"), Word("M1")) == Word("M1")

    def test_absorbing_state_01_swaps(self):
        assert out_m(Word("01"), Word("M1")) == Word("1M")


class TestTheorem43:
    """out_M(s^{(i-1)}_M, g_i h_i) equals the closure max/min bits."""

    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5])
    def test_decomposition_equals_spec(self, width):
        strings = all_valid_strings(width)
        for g in strings:
            for h in strings:
                states = prefix_states(g, h, order="serial")
                want_max, want_min = two_sort_closure(g, h)
                for i in range(1, width + 1):
                    pair = out_m(states[i - 1], Word([g.bit(i), h.bit(i)]))
                    assert pair.bit(1) is want_max.bit(i), (g, h, i)
                    assert pair.bit(2) is want_min.bit(i), (g, h, i)
