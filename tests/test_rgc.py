"""Tests for repro.graycode.rgc -- code structure, Lemma 3.2, Obs. 3.1."""

import pytest

from repro.graycode.rgc import (
    all_codewords,
    first_difference,
    gray_decode,
    gray_encode,
    gray_encode_recursive,
    lemma_3_2_predicts,
    max_rg,
    min_rg,
    parity,
    successor_differs_at,
    two_sort_stable,
)
from repro.ternary.word import Word


class TestEncoding:
    def test_table1_four_bit_code(self):
        """The exact 4-bit code of paper Table 1."""
        expected = [
            "0000", "0001", "0011", "0010", "0110", "0111", "0101", "0100",
            "1100", "1101", "1111", "1110", "1010", "1011", "1001", "1000",
        ]
        assert [str(gray_encode(x, 4)) for x in range(16)] == expected

    def test_one_bit_base_case(self):
        assert str(gray_encode(0, 1)) == "0"
        assert str(gray_encode(1, 1)) == "1"

    def test_fast_matches_recursive_definition(self):
        for width in (1, 2, 3, 4, 5, 6):
            for x in range(1 << width):
                assert gray_encode(x, width) == gray_encode_recursive(x, width)

    def test_range_checks(self):
        with pytest.raises(ValueError):
            gray_encode(4, 2)
        with pytest.raises(ValueError):
            gray_encode(-1, 3)
        with pytest.raises(ValueError):
            gray_encode(0, 0)

    def test_bijection(self):
        for width in (1, 3, 5, 8):
            seen = {gray_encode(x, width) for x in range(1 << width)}
            assert len(seen) == 1 << width


class TestDecoding:
    def test_round_trip(self):
        for width in (1, 2, 4, 7, 10):
            for x in range(0, 1 << width, max(1, (1 << width) // 64)):
                assert gray_decode(gray_encode(x, width)) == x

    def test_decode_rejects_metastable(self):
        with pytest.raises(ValueError):
            gray_decode(Word("0M"))


class TestAdjacency:
    def test_adjacent_codewords_differ_in_one_bit(self):
        for width in (2, 3, 4, 5):
            for x in range((1 << width) - 1):
                g0, g1 = gray_encode(x, width), gray_encode(x + 1, width)
                diff = sum(1 for a, b in zip(g0, g1) if a is not b)
                assert diff == 1

    def test_successor_differs_at(self):
        # From Table 1: rg(1)=0001, rg(2)=0011 differ at bit 3 (1-based).
        assert successor_differs_at(1, 4) == 3
        assert successor_differs_at(0, 4) == 4

    def test_successor_range(self):
        with pytest.raises(ValueError):
            successor_differs_at(3, 2)

    def test_parity_equals_value_mod_2(self):
        """par(rg(x)) == x mod 2: one bit flips per increment."""
        for width in (1, 3, 5):
            for x in range(1 << width):
                assert parity(gray_encode(x, width)) == x % 2


class TestLemma32:
    def test_lemma_predicts_all_comparisons(self):
        """Lemma 3.2: the first differing bit + prefix parity decide."""
        width = 5
        for x in range(1 << width):
            for y in range(1 << width):
                g, h = gray_encode(x, width), gray_encode(y, width)
                want = (x > y) - (x < y)
                assert lemma_3_2_predicts(g, h) == want

    def test_first_difference(self):
        assert first_difference(Word("0110"), Word("0100")) == 3
        assert first_difference(Word("01"), Word("01")) == 0

    def test_first_difference_width_check(self):
        with pytest.raises(ValueError):
            first_difference(Word("0"), Word("01"))


class TestStableMaxMin:
    def test_max_min_by_value(self):
        g, h = gray_encode(9, 4), gray_encode(12, 4)
        assert max_rg(g, h) == h
        assert min_rg(g, h) == g

    def test_two_sort_stable_orders(self):
        g, h = gray_encode(15, 4), gray_encode(14, 4)
        assert two_sort_stable(g, h) == (g, h)
        assert two_sort_stable(h, g) == (g, h)

    def test_paper_example_1001_vs_1000(self):
        """max_rg{1001, 1000} = 1000 = rg(15) (Section 2 example)."""
        assert max_rg(Word("1001"), Word("1000")) == Word("1000")


class TestEnumeration:
    def test_all_codewords_order(self):
        words = all_codewords(3)
        assert len(words) == 8
        assert [gray_decode(w) for w in words] == list(range(8))
