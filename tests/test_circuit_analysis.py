"""Tests for cost analysis (repro.circuits.analysis, .library)."""

import pytest

from repro.circuits.analysis import (
    critical_path,
    critical_path_delay,
    logic_depth,
    report,
    total_area,
)
from repro.circuits.builder import and2, inv, or2
from repro.circuits.gates import AND2, INV, OR2
from repro.circuits.library import DEFAULT_LIBRARY, LAYOUT_OVERHEAD, NANGATE45, Cell, CellLibrary
from repro.circuits.netlist import Circuit


def _chain(n):
    """n inverters in series."""
    c = Circuit(f"chain{n}")
    net = c.add_input("a")
    for _ in range(n):
        net = inv(c, net)
    c.add_output(net)
    return c


class TestDepth:
    def test_chain_depth(self):
        assert logic_depth(_chain(5)) == 5

    def test_empty_circuit(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output(a)
        assert logic_depth(c) == 0

    def test_balanced_vs_skewed(self):
        c = Circuit()
        ins = c.add_inputs(4)
        # skewed: ((a & b) & c) & d -> depth 3
        n = and2(c, ins[0], ins[1])
        n = and2(c, n, ins[2])
        n = and2(c, n, ins[3])
        c.add_output(n)
        assert logic_depth(c) == 3


class TestArea:
    def test_chain_area(self):
        area = total_area(_chain(3))
        assert area == pytest.approx(3 * NANGATE45.area("INV"))

    def test_consts_are_free(self):
        from repro.ternary.trit import ONE

        c = Circuit()
        a = c.add_input("a")
        c.add_output(c.add_gate(AND2, [a, c.const(ONE)]))
        assert total_area(c) == pytest.approx(NANGATE45.area("AND2"))

    def test_table7_area_calibration(self):
        """The calibrated cells reproduce the paper's 2-sort areas to <0.2%."""
        from repro.core.two_sort import build_two_sort
        from repro.analysis.published import TABLE7

        for width in (2, 4, 8, 16):
            measured = total_area(build_two_sort(width))
            published = TABLE7["this-paper"][width].area_um2
            assert measured == pytest.approx(published, rel=2e-3), width


class TestDelay:
    def test_delay_monotone_in_depth(self):
        assert critical_path_delay(_chain(2)) < critical_path_delay(_chain(4))

    def test_fanout_increases_delay(self):
        c1 = Circuit()
        a = c1.add_input("a")
        n = inv(c1, a)
        c1.add_output(and2(c1, n, a))

        c2 = Circuit()
        a2 = c2.add_input("a")
        n2 = inv(c2, a2)
        # n2 drives 3 loads instead of 1
        c2.add_output(and2(c2, n2, a2))
        c2.add_output(and2(c2, n2, a2))
        c2.add_output(and2(c2, n2, a2))
        assert critical_path_delay(c2) > critical_path_delay(c1)

    def test_critical_path_endpoints(self):
        c = _chain(4)
        delay, path = critical_path(c)
        assert delay == pytest.approx(critical_path_delay(c))
        # path = launching input net + the four inverter outputs
        assert len(path) == 5
        assert path[0] == c.inputs[0]


class TestLibrary:
    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            NANGATE45["FANCY_CELL"]

    def test_contains(self):
        assert "AND2" in NANGATE45
        assert "FOO" not in NANGATE45

    def test_cell_delay_with_fanout(self):
        cell = Cell("X", 1.0, 10.0, 2.0)
        assert cell.delay_with_fanout(1) == 12.0
        assert cell.delay_with_fanout(3) == 16.0
        assert cell.delay_with_fanout(0) == 12.0  # clamped to >=1

    def test_default_library_identity(self):
        assert DEFAULT_LIBRARY is NANGATE45

    def test_overhead_applied_to_derived_cells(self):
        assert NANGATE45.area("XOR2") == pytest.approx(1.596 * LAYOUT_OVERHEAD, rel=1e-3)


class TestReport:
    def test_report_fields(self):
        c = _chain(2)
        r = report(c, name="chain")
        assert r.name == "chain"
        assert r.gate_count == 2
        assert r.depth == 2
        assert r.histogram == {"INV": 2}
        assert "chain" in str(r)
