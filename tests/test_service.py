"""Tests for repro.service: jobs, manager, cache, server, clients.

The event-loop tests run through ``asyncio.run`` (no pytest-asyncio
dependency).  Timing-sensitive cancellation tests throttle the shard
workers via a registered executor instead of sleeping and hoping.
"""

import asyncio
import threading
import time

import pytest

from repro.service import (
    AsyncServiceClient,
    JobManager,
    JobState,
    ReproServer,
    ServiceClient,
    ServiceError,
    ShardCache,
    SortRequest,
    VerifyRequest,
    request_from_dict,
)
from repro.verify.exhaustive import verify_two_sort_circuit
from repro.verify.parallel import _EXECUTORS, _serial_executor, register_executor
from repro.core.two_sort import build_two_sort
from repro.networks.simulate import sort_words
from repro.networks.topologies import best_known
from repro.graycode.valid import validate
from repro.ternary.word import Word


def pairs(width):
    return ((1 << (width + 1)) - 1) ** 2


@pytest.fixture
def throttled_executor():
    """A serial executor that takes >=15ms per shard: cancellation tests
    get a wide, deterministic window between shards."""

    def throttled(worker, tasks, jobs=1, initializer=None, initargs=(),
                  on_result=None, should_stop=None):
        def slow_worker(task):
            time.sleep(0.015)
            return worker(task)

        return _serial_executor(
            slow_worker, tasks, jobs, initializer, initargs,
            on_result, should_stop,
        )

    register_executor("throttled", throttled)
    try:
        yield "throttled"
    finally:
        del _EXECUTORS["throttled"]


# ----------------------------------------------------------------------
# Request dataclasses
# ----------------------------------------------------------------------
class TestRequests:
    def test_verify_round_trip(self):
        req = VerifyRequest(width=8, jobs=2, backend="array")
        back = request_from_dict(req.to_dict())
        assert back == req

    def test_sort_round_trip(self):
        req = SortRequest(vectors=(("0110", "0010"),), engine="compiled")
        back = request_from_dict(req.to_dict())
        assert back == req

    @pytest.mark.parametrize("width", [0, -3, 14, 99])
    def test_verify_rejects_bad_width(self, width):
        with pytest.raises(ValueError, match="width must be in 1..13"):
            VerifyRequest(width=width).validate()

    def test_verify_rejects_negative_jobs(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            VerifyRequest(width=4, jobs=-1).validate()

    def test_verify_rejects_bad_shard_size(self):
        with pytest.raises(ValueError, match="shard_size must be"):
            VerifyRequest(width=4, shard_size=0).validate()

    def test_verify_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown plane backend"):
            VerifyRequest(width=4, backend="gpu").validate()

    def test_verify_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            VerifyRequest(width=4, executor="quantum").validate()

    def test_sort_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown simulation engine"):
            SortRequest.single(["01", "00"], engine="warp").validate()

    def test_sort_backend_needs_compiled(self):
        with pytest.raises(ValueError, match="compiled"):
            SortRequest.single(["01", "00"], engine="fsm",
                               backend="array").validate()

    def test_sort_rejects_mixed_widths(self):
        with pytest.raises(ValueError, match="share one width"):
            SortRequest.single(["01", "011"]).validate()

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            request_from_dict({"kind": "mine", "width": 4})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown verify request field"):
            request_from_dict({"kind": "verify", "width": 4, "depth": 1})

    def test_from_dict_rejects_flat_vector_list(self):
        """A flat ["0110", ...] must not be split into width-1 words."""
        with pytest.raises(ValueError, match="list of lists"):
            request_from_dict(
                {"kind": "sort", "vectors": ["0110", "0010"]}
            )

    def test_verify_run_matches_engine(self):
        """request.run() is the same computation as the direct sweep."""
        direct = verify_two_sort_circuit(build_two_sort(5), 5)
        via_request = VerifyRequest(width=5).run()
        assert via_request.checked == direct.checked == pairs(5)
        assert via_request.ok and direct.ok

    def test_sort_run_matches_reference(self):
        values = ["0110", "0M10", "0010", "1000"]
        words = [validate(Word(s)) for s in values]
        expect = sort_words(best_known(4), words, engine="fsm")
        rows = SortRequest.single(values).run()
        assert rows == [expect]


# ----------------------------------------------------------------------
# ShardCache
# ----------------------------------------------------------------------
class TestShardCache:
    def test_hit_miss_counters(self):
        cache = ShardCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction(self):
        cache = ShardCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_disabled_cache_never_stores(self):
        cache = ShardCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_put_existing_key_refreshes_without_double_counting(self):
        """Regression: re-putting a present key must update the value,
        refresh its LRU recency, and never count as a second entry
        toward maxsize.  The distributed path re-puts keys whenever an
        expired lease is re-run, so getting this wrong would evict live
        entries (or serve the stale value)."""
        cache = ShardCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + replace, still 2 entries
        assert len(cache) == 2
        assert cache.get("a") == 10  # new value, not the stale one
        cache.put("c", 3)  # must evict b (LRU), not a (just refreshed)
        assert cache.get("b") is None
        assert cache.get("a") == 10 and cache.get("c") == 3
        assert len(cache) == 2

    def test_put_existing_key_at_capacity_evicts_nothing(self):
        cache = ShardCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("b", 20)
        assert len(cache) == 2
        assert cache.get("a") == 1 and cache.get("b") == 20

    def test_stats_shape(self):
        stats = ShardCache(maxsize=8).stats()
        # The unified store protocol adds backend/puts/runs counters on
        # top of the historical shape.
        assert {"entries", "maxsize", "hits", "misses"} <= set(stats)
        assert stats["backend"] == "memory"


# ----------------------------------------------------------------------
# Job lifecycle on one manager
# ----------------------------------------------------------------------
class TestJobLifecycle:
    def test_submit_runs_to_done(self):
        async def go():
            manager = JobManager(jobs=1)
            try:
                job = manager.submit(VerifyRequest(width=5))
                assert job.state is JobState.QUEUED
                await manager.wait(job.id)
                return job
            finally:
                await manager.aclose()

        job = asyncio.run(go())
        assert job.state is JobState.DONE
        assert job.result.checked == pairs(5)
        assert job.progress.shards_done == job.progress.shards_total >= 1
        assert job.progress.checked == pairs(5)
        assert job.started is not None and job.finished is not None
        kinds = [e["event"] for e in job.events]
        assert kinds[0] == "state" and kinds[-1] == "done"
        assert "progress" in kinds

    def test_submit_validates_before_queueing(self):
        async def go():
            manager = JobManager(jobs=1)
            try:
                with pytest.raises(ValueError, match="width"):
                    manager.submit(VerifyRequest(width=99))
                assert manager.list_jobs() == []
            finally:
                await manager.aclose()

        asyncio.run(go())

    def test_sort_job_progress_per_shard(self):
        """Sort jobs report per-shard progress (items, not pairs)."""
        async def go():
            manager = JobManager(jobs=1)
            try:
                job = manager.submit(
                    SortRequest(
                        vectors=(("0110", "0010"), ("0M10", "0110")),
                        shard_size=1,
                    )
                )
                events = [e async for e in manager.stream(job.id)]
                return job, events
            finally:
                await manager.aclose()

        job, events = asyncio.run(go())
        assert job.state is JobState.DONE
        assert job.result == [
            [Word("0010"), Word("0110")],
            [Word("0M10"), Word("0110")],
        ]
        progress = [e for e in events if e["event"] == "progress"]
        assert [p["shards_done"] for p in progress] == [1, 2]
        assert progress[-1]["items_done"] == 2

    def test_verify_failure_events(self, monkeypatch):
        """Failures recorded by shards surface as stream events."""
        import repro.service.jobs as jobs
        from repro.verify.exhaustive import VerificationResult

        def fake_verify(circuit, width, on_shard=None, should_stop=None,
                        cache=None, **kwargs):
            for i in range(1, 3):
                r = VerificationResult(checked=10)
                r.record(f"bad pair {i}")
                if on_shard:
                    on_shard(i, 2, r)
            merged = VerificationResult.merge(
                [VerificationResult(checked=10, failure_count=1,
                                    failures=[f"bad pair {i}"])
                 for i in (1, 2)]
            )
            return merged

        monkeypatch.setattr(jobs, "verify_two_sort_sharded", fake_verify)
        monkeypatch.setattr(jobs, "build_two_sort", lambda width: None)

        async def go():
            manager = JobManager(jobs=1)
            try:
                job = manager.submit(VerifyRequest(width=4))
                events = [e async for e in manager.stream(job.id)]
                return job, events
            finally:
                await manager.aclose()

        job, events = asyncio.run(go())
        assert job.state is JobState.DONE
        failures = [e["message"] for e in events if e["event"] == "failure"]
        assert failures == ["bad pair 1", "bad pair 2"]
        assert job.progress.failure_count == 2

    def test_two_concurrent_jobs_one_manager(self):
        async def go():
            manager = JobManager(jobs=2)
            try:
                a = manager.submit(VerifyRequest(width=5))
                b = manager.submit(VerifyRequest(width=4))
                ja, jb = await asyncio.gather(
                    manager.wait(a.id), manager.wait(b.id)
                )
                return ja, jb, manager.stats()
            finally:
                await manager.aclose()

        ja, jb, stats = asyncio.run(go())
        assert ja.state is JobState.DONE and jb.state is JobState.DONE
        assert ja.result.checked == pairs(5)
        assert jb.result.checked == pairs(4)
        assert stats["jobs"] == {"done": 2}

    def test_queue_respects_concurrency_limit(self, throttled_executor):
        """With jobs=1, the second submission stays queued until the
        first finishes -- and both still complete correctly."""
        async def go():
            manager = JobManager(jobs=1)
            try:
                a = manager.submit(
                    VerifyRequest(width=4, executor=throttled_executor,
                                  shard_size=100)
                )
                b = manager.submit(VerifyRequest(width=4))
                # While a runs (throttled), b must still be queued.
                await asyncio.sleep(0.02)
                state_mid = b.state
                await asyncio.gather(manager.wait(a.id), manager.wait(b.id))
                return a, b, state_mid
            finally:
                await manager.aclose()

        a, b, state_mid = asyncio.run(go())
        assert state_mid is JobState.QUEUED
        assert a.state is JobState.DONE and b.state is JobState.DONE
        assert a.result.checked == b.result.checked == pairs(4)

    def test_unknown_job_raises(self):
        async def go():
            manager = JobManager(jobs=1)
            try:
                with pytest.raises(KeyError, match="unknown job"):
                    manager.get("nope")
            finally:
                await manager.aclose()

        asyncio.run(go())


class TestCancellation:
    def test_cancel_mid_run(self, throttled_executor):
        async def go():
            manager = JobManager(jobs=1)
            try:
                job = manager.submit(
                    VerifyRequest(width=5, shard_size=200,
                                  executor=throttled_executor)
                )
                seen = 0
                async for event in manager.stream(job.id):
                    if event["event"] == "progress":
                        seen += 1
                        if seen == 2:
                            assert manager.cancel(job.id)
                    if event["event"] == "done":
                        final = event
                return job, final
            finally:
                await manager.aclose()

        job, final = asyncio.run(go())
        assert job.state is JobState.CANCELLED
        assert final["state"] == "cancelled"
        # Stopped before completing all shards, but after the 2 seen.
        assert 2 <= job.progress.shards_done < job.progress.shards_total
        assert job.result is None

    def test_cancel_queued_job_is_immediate(self, throttled_executor):
        async def go():
            manager = JobManager(jobs=1)
            try:
                running = manager.submit(
                    VerifyRequest(width=4, executor=throttled_executor,
                                  shard_size=100)
                )
                queued = manager.submit(VerifyRequest(width=4))
                assert manager.cancel(queued.id)
                assert queued.state is JobState.CANCELLED  # no waiting
                await manager.wait(running.id)
                return running, queued
            finally:
                await manager.aclose()

        running, queued = asyncio.run(go())
        assert running.state is JobState.DONE
        assert queued.state is JobState.CANCELLED
        assert queued.progress.shards_done == 0

    def test_cancel_terminal_job_returns_false(self):
        async def go():
            manager = JobManager(jobs=1)
            try:
                job = manager.submit(VerifyRequest(width=3))
                await manager.wait(job.id)
                return manager.cancel(job.id), job
            finally:
                await manager.aclose()

        cancelled, job = asyncio.run(go())
        assert cancelled is False
        assert job.state is JobState.DONE


class TestManagerCache:
    def test_reverify_hits_cache(self):
        async def go():
            manager = JobManager(jobs=1)
            try:
                first = manager.submit(VerifyRequest(width=5))
                await manager.wait(first.id)
                misses_after_first = manager.cache_misses
                hits_after_first = manager.cache_hits
                second = manager.submit(VerifyRequest(width=5))
                await manager.wait(second.id)
                return (first, second, misses_after_first,
                        hits_after_first, manager)
            finally:
                await manager.aclose()

        first, second, misses1, hits1, manager = asyncio.run(go())
        shards = first.progress.shards_total
        assert shards >= 1
        assert misses1 == shards and hits1 == 0
        assert manager.cache_hits == shards  # second run: all hits
        assert manager.cache_misses == shards  # no new misses
        # Identical outcome, full progress reported from cache.
        assert second.result.checked == first.result.checked == pairs(5)
        assert second.progress.shards_done == shards
        assert manager.stats()["cache"]["entries"] == shards

    def test_different_width_misses(self):
        async def go():
            manager = JobManager(jobs=1)
            try:
                a = manager.submit(VerifyRequest(width=4))
                await manager.wait(a.id)
                b = manager.submit(VerifyRequest(width=5))
                await manager.wait(b.id)
                return manager.cache_hits
            finally:
                await manager.aclose()

        assert asyncio.run(go()) == 0

    def test_default_backend_applied(self):
        async def go():
            manager = JobManager(jobs=1, default_backend="array")
            try:
                job = manager.submit(VerifyRequest(width=4))
                await manager.wait(job.id)
                return job
            finally:
                await manager.aclose()

        job = asyncio.run(go())
        assert job.request.backend == "array"
        assert job.state is JobState.DONE
        assert job.result.checked == pairs(4)

    def test_default_backend_skips_planeless_sorts(self):
        """A server-wide default plane backend must not invalidate sort
        jobs whose engine has no planes (regression: the fsm default)."""
        async def go():
            manager = JobManager(jobs=1, default_backend="array")
            try:
                job = manager.submit(
                    SortRequest.single(["0110", "0010"], engine="fsm")
                )
                await manager.wait(job.id)
                compiled = manager.submit(
                    SortRequest.single(["0110", "0010"], engine="compiled")
                )
                await manager.wait(compiled.id)
                return job, compiled
            finally:
                await manager.aclose()

        job, compiled = asyncio.run(go())
        assert job.state is JobState.DONE
        assert job.request.backend is None  # untouched
        assert compiled.state is JobState.DONE
        assert compiled.request.backend == "array"  # default applied

    def test_finished_jobs_are_evicted_beyond_retention(self):
        async def go():
            manager = JobManager(jobs=1, keep_finished=2)
            try:
                ids = []
                for _ in range(4):
                    job = manager.submit(VerifyRequest(width=3))
                    await manager.wait(job.id)
                    ids.append(job.id)
                return ids, manager
            finally:
                await manager.aclose()

        ids, manager = asyncio.run(go())
        kept = [j["id"] for j in manager.list_jobs()]
        assert kept == ids[-2:]  # oldest terminal jobs evicted
        with pytest.raises(KeyError):
            manager.get(ids[0])

    def test_terminal_event_history_is_compacted(self):
        """Finished jobs keep only a short event tail (bounded memory),
        and a late subscriber still receives the terminal event."""
        from repro.service.jobs import EVENTS_KEEP_TERMINAL

        async def go():
            manager = JobManager(jobs=1)
            try:
                # shard_size=31 -> one g-row per shard = 31 shards at
                # width 4: 31 progress + 2 state + done = 34 > the
                # 32-event terminal tail cap.
                job = manager.submit(VerifyRequest(width=4, shard_size=31))
                await manager.wait(job.id)
                late = [e async for e in manager.stream(job.id)]
                return job, late
            finally:
                await manager.aclose()

        job, late = asyncio.run(go())
        assert len(job.events) <= EVENTS_KEEP_TERMINAL
        assert job.events_dropped > 0
        assert job.events[-1]["event"] == "done"
        # Late subscriber skips the compacted prefix, gets the tail.
        assert late == job.events
        assert late[-1]["event"] == "done"

    def test_process_executor_usable_from_job_threads(self):
        """Process pools launched by service jobs must not fork a
        multithreaded server process (deadlock risk) -- they spawn.
        End-to-end: a jobs=2 process-executor verify through the
        manager's worker threads completes with correct counts."""
        async def go():
            manager = JobManager(jobs=1)
            try:
                job = manager.submit(
                    VerifyRequest(width=4, jobs=2, executor="process")
                )
                await manager.wait(job.id)
                return job
            finally:
                await manager.aclose()

        job = asyncio.run(go())
        assert job.state is JobState.DONE, job.error
        assert job.result.checked == pairs(4)


# ----------------------------------------------------------------------
# Server + clients over a real socket
# ----------------------------------------------------------------------
class TestServerRoundTrip:
    def test_verify_b8_matches_direct_run(self):
        """Acceptance: a B=8 job through the TCP server returns counts +
        failures identical to the direct engine run, with at least two
        intermediate progress snapshots, strictly increasing."""
        direct = verify_two_sort_circuit(build_two_sort(8), 8)

        async def go():
            async with ReproServer(JobManager(jobs=2), port=0) as server:
                async with AsyncServiceClient(port=server.port) as client:
                    job_id = await client.submit(VerifyRequest(width=8))
                    events = [e async for e in client.stream(job_id)]
                    result = await client.result(job_id)
                    return events, result

        events, result = asyncio.run(go())
        assert result["state"] == "done"
        payload = result["result"]
        assert payload["checked"] == direct.checked == pairs(8)
        assert payload["failure_count"] == direct.failure_count == 0
        assert payload["failures"] == direct.failures == []
        snapshots = [
            e for e in events if e["event"] == "progress"
        ]
        intermediate = [
            s for s in snapshots if s["shards_done"] < s["shards_total"]
        ]
        assert len(intermediate) >= 2
        done_counts = [s["shards_done"] for s in snapshots]
        assert done_counts == sorted(set(done_counts))  # strictly increasing
        assert done_counts[-1] == snapshots[-1]["shards_total"]

    def test_cancel_over_socket(self, throttled_executor):
        async def go():
            async with ReproServer(JobManager(jobs=1), port=0) as server:
                async with AsyncServiceClient(port=server.port) as client, \
                        AsyncServiceClient(port=server.port) as side:
                    job_id = await client.submit(
                        VerifyRequest(width=5, shard_size=200,
                                      executor=throttled_executor)
                    )
                    seen = 0
                    final = None
                    async for event in client.stream(job_id):
                        if event["event"] == "progress":
                            seen += 1
                            if seen == 2:
                                assert await side.cancel(job_id)
                        if event["event"] == "done":
                            final = event
                    status = await side.status(job_id)
                    return final, status

        final, status = asyncio.run(go())
        assert final["state"] == "cancelled"
        assert status["state"] == "cancelled"
        progress = status["progress"]
        assert 2 <= progress["shards_done"] < progress["shards_total"]

    def test_sort_job_over_socket(self):
        async def go():
            async with ReproServer(JobManager(jobs=1), port=0) as server:
                async with AsyncServiceClient(port=server.port) as client:
                    job_id = await client.submit(
                        SortRequest(vectors=(("0110", "0M10", "0010"),))
                    )
                    return await client.result(job_id)

        result = asyncio.run(go())
        assert result["state"] == "done"
        assert result["result"]["vectors"] == [["0010", "0M10", "0110"]]

    def test_protocol_errors_keep_connection(self):
        async def go():
            async with ReproServer(JobManager(jobs=1), port=0) as server:
                async with AsyncServiceClient(port=server.port) as client:
                    errors = []
                    for payload in (
                        {"op": "warp"},
                        {"op": "submit", "request": {"kind": "verify",
                                                     "width": 99}},
                        {"op": "status", "id": "nope"},
                        {"op": "status"},
                    ):
                        try:
                            await client.call(**payload)
                        except ServiceError as exc:
                            errors.append(str(exc))
                    # Connection still healthy after four rejections.
                    pong = await client.ping()
                    return errors, pong

        errors, pong = asyncio.run(go())
        assert len(errors) == 4 and pong
        assert "unknown op" in errors[0]
        assert "width" in errors[1]
        assert "unknown job" in errors[2]
        assert "needs a job 'id'" in errors[3]

    def test_list_reports_jobs_and_cache(self):
        async def go():
            async with ReproServer(JobManager(jobs=1), port=0) as server:
                async with AsyncServiceClient(port=server.port) as client:
                    job_id = await client.submit(VerifyRequest(width=4))
                    await client.result(job_id)
                    return await client.jobs()

        listing = asyncio.run(go())
        assert len(listing["jobs"]) == 1
        assert listing["jobs"][0]["state"] == "done"
        assert listing["stats"]["cache"]["misses"] >= 1


class TestSyncClient:
    """The blocking wrapper drives a server running on another thread --
    the shape every synchronous script (and the CLI) uses."""

    @pytest.fixture
    def live_server(self):
        ready = threading.Event()
        stop = {}
        info = {}

        def serve():
            async def body():
                stop["event"] = asyncio.Event()
                stop["loop"] = asyncio.get_running_loop()
                async with ReproServer(JobManager(jobs=2), port=0) as server:
                    info["port"] = server.port
                    ready.set()
                    await stop["event"].wait()

            asyncio.run(body())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(10), "server thread never came up"
        try:
            yield info["port"]
        finally:
            stop["loop"].call_soon_threadsafe(stop["event"].set)
            thread.join(10)

    def test_round_trip(self, live_server):
        with ServiceClient(port=live_server) as client:
            assert client.ping()
            job_id = client.submit(VerifyRequest(width=6))
            events = list(client.stream(job_id))
            response = client.result(job_id)
        assert response["state"] == "done"
        assert response["result"]["checked"] == pairs(6)
        progress = [e for e in events if e["event"] == "progress"]
        assert len(progress) >= 2
        done_counts = [p["shards_done"] for p in progress]
        assert done_counts == sorted(set(done_counts))

    def test_status_and_wait_for(self, live_server):
        with ServiceClient(port=live_server) as client:
            job_id = client.submit(VerifyRequest(width=4))
            status = client.status(job_id)
            assert status["id"] == job_id
            assert status["state"] in {"queued", "running", "done"}
            response = client.wait_for(job_id)
        assert response["state"] == "done"

    def test_failed_connect_releases_event_loop(self):
        """`with ServiceClient(...)` against a dead server must not leak
        the private event loop when __enter__ raises."""
        client = ServiceClient(port=1)  # nothing listens on port 1
        with pytest.raises(OSError):
            client.connect()
        assert client._loop.is_closed()
        client.close()  # idempotent on the closed loop
