"""Cross-module integration tests: the full story of the paper, end to end.

Each test exercises several subsystems together (Gray codes -> valid
strings -> 2-sort circuits -> sorting networks -> analysis), mirroring
how a user of the library would reproduce the paper's claims.
"""

import pytest

from repro.analysis.compare import measure_network, measure_two_sort
from repro.analysis.published import improvement_pct
from repro.circuits.analysis import logic_depth, report
from repro.circuits.evaluate import evaluate_words
from repro.core.two_sort import build_two_sort
from repro.graycode.rgc import gray_decode, gray_encode
from repro.graycode.valid import is_valid, make_valid, rank
from repro.networks.build import build_sorting_circuit
from repro.networks.simulate import sort_words
from repro.networks.topologies import SORT4, SORT7, batcher_odd_even
from repro.networks.properties import check_mc_sort
from repro.ternary.word import Word
from repro.verify.random_valid import ValidStringSource, measurement_sweep


class TestMeasurementPipeline:
    """A TDC-style measurement scenario through the whole stack."""

    def test_tdc_scenario(self):
        # Four sensors measure delays 11, 7, 7-or-8 (in flight), 2.
        width = 4
        readings = [
            gray_encode(11, width),
            gray_encode(7, width),
            make_valid(7, width, metastable=True),
            gray_encode(2, width),
        ]
        assert all(is_valid(r) for r in readings)

        ranked = sort_words(SORT4, readings, engine="fsm")
        assert check_mc_sort(readings, ranked) == []
        # channel 0 = minimum = value 2
        assert gray_decode(ranked[0]) == 2
        # the in-flight measurement sorts between 7 and 8
        assert ranked[1] == gray_encode(7, width)
        assert ranked[2] == make_valid(7, width, metastable=True)
        assert gray_decode(ranked[3]) == 11

    def test_gate_level_equals_word_level(self):
        """Flat netlist simulation == word-level engine on whole vectors."""
        width = 3
        circuit = build_sorting_circuit(SORT7, width)
        sweep = measurement_sweep(width, channels=7, vectors=5, seed=3)
        for vector in sweep:
            out = evaluate_words(circuit, *vector)
            circuit_result = [
                out[i * width : (i + 1) * width] for i in range(7)
            ]
            word_result = sort_words(SORT7, vector, engine="closure")
            assert circuit_result == word_result


class TestPaperClaimsEndToEnd:
    def test_asymptotic_claim_depth(self):
        """Depth O(log B): doubling B adds a constant number of levels."""
        depths = [logic_depth(build_two_sort(b)) for b in (8, 16, 32, 64)]
        increments = [b - a for a, b in zip(depths, depths[1:])]
        assert max(increments) <= 6

    def test_improvement_over_date17_grows_with_width(self):
        """The Θ(log B) gate-count gap widens with B (Figure 1's story).

        Measured at widths where the asymptotics dominate the small-case
        constants of the reconstruction.
        """
        ratios = []
        for width in (16, 64, 256):
            ours = measure_two_sort("this-paper", width).measured.gate_count
            theirs = measure_two_sort("date17", width).measured.gate_count
            ratios.append(theirs / ours)
        assert ratios == sorted(ratios)
        assert ratios[-1] > 3.5

    def test_headline_improvement_direction(self):
        """10-channel, 16-bit: large area and delay wins over [2]."""
        ours = measure_network("this-paper", "10-sort#", 16).measured
        theirs = measure_network("date17", "10-sort#", 16).measured
        assert improvement_pct(ours.area_um2, theirs.area_um2) > 50
        assert improvement_pct(ours.delay_ps, theirs.delay_ps) > 30

    def test_delay_comparable_to_binary(self):
        """Section 6: 'our design performs comparably to the
        non-containing binary design in terms of delay'."""
        for width in (4, 8, 16):
            ours = measure_two_sort("this-paper", width).measured.delay_ps
            binary = measure_two_sort("bincomp", width).measured.delay_ps
            assert ours < 2.2 * binary

    def test_binary_smaller_but_not_containing(self):
        """The trade-off motivating the paper."""
        mc = build_two_sort(4)
        from repro.baselines.bincomp import build_bincomp_two_sort

        binary = build_bincomp_two_sort(4)
        assert report(binary).gate_count < report(mc).gate_count
        # 1M10 = rg(11) * rg(12): a genuine valid string mid-transition.
        g, h = Word("1M10"), Word("1000")
        assert is_valid(g) and is_valid(h)
        mc_out = evaluate_words(mc, g, h)
        bin_out = evaluate_words(binary, g, h)
        assert is_valid(mc_out[:4]) and is_valid(mc_out[4:])
        assert not (is_valid(bin_out[:4]) and is_valid(bin_out[4:]))


class TestScalingBeyondPaper:
    """The library generalises past the paper's n/B grid."""

    def test_wide_words(self):
        width = 24
        src = ValidStringSource(width, meta_rate=0.5, seed=17)
        circuit = build_two_sort(width)
        from repro.graycode.ops import two_sort_closure

        for _ in range(5):
            g, h = src.sample_pair()
            out = evaluate_words(circuit, g, h)
            assert (out[:width], out[width:]) == two_sort_closure(g, h)

    def test_large_network(self):
        net = batcher_odd_even(16)
        src = ValidStringSource(6, meta_rate=0.4, seed=23)
        vector = src.sample_vector(16)
        out = sort_words(net, vector, engine="rank")
        assert check_mc_sort(vector, out) == []

    def test_cost_report_scales(self):
        big = build_sorting_circuit(batcher_odd_even(8), 8)
        r = report(big)
        assert r.gate_count == batcher_odd_even(8).size * 169
