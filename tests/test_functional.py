"""Tests for the value-level FSM decomposition (repro.core.functional)."""

import pytest

from repro.core.functional import prefix_states, two_sort_via_fsm
from repro.graycode.ops import two_sort_closure
from repro.graycode.valid import InvalidStringError, all_valid_strings
from repro.ternary.word import Word
from repro.verify.exhaustive import verify_function_agreement


class TestPrefixStates:
    def test_initial_state(self):
        states = prefix_states(Word("00"), Word("00"))
        assert states[0] == Word("00")

    def test_length(self):
        states = prefix_states(Word("0110"), Word("0100"))
        assert len(states) == 5

    def test_order_independence_on_valid(self):
        for g in all_valid_strings(4):
            for h in all_valid_strings(4):
                assert prefix_states(g, h, "serial") == prefix_states(
                    g, h, "ladner_fischer"
                ), (g, h)

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            prefix_states(Word("0"), Word("0"), order="quantum")

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            prefix_states(Word("01"), Word("0"))


class TestTwoSortViaFsm:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5])
    def test_agrees_with_closure_spec(self, width):
        result = verify_function_agreement(
            lambda g, h: two_sort_via_fsm(g, h),
            two_sort_closure,
            width,
        )
        assert result.ok, result.failures[:3]

    def test_validity_check_enforced(self):
        with pytest.raises(InvalidStringError):
            two_sort_via_fsm(Word("MM"), Word("00"))

    def test_validity_check_can_be_skipped(self):
        # Without the check the function still runs (result unspecified).
        two_sort_via_fsm(Word("MM"), Word("00"), check_valid=False)

    def test_serial_and_lf_orders_agree(self):
        for g in all_valid_strings(3):
            for h in all_valid_strings(3):
                assert two_sort_via_fsm(g, h, order="serial") == two_sort_via_fsm(
                    g, h, order="ladner_fischer"
                )
