"""Fault-tolerance suite: checkpoints, reconnect, leases, chaos.

Three layers of test, matching the three layers of machinery:

* unit tests for :class:`repro.distributed.checkpoint.SweepCheckpoint`
  (torn lines, first-write-wins, append-only idempotence) and the
  chaos primitives (seeded schedules are deterministic);
* in-process cluster tests: interrupted sweeps resume with zero
  recompute, workers dial before the coordinator exists and survive
  its abrupt death, scripted clients pin the exact ``late`` /
  ``duplicates`` / ``requeued`` accounting, range leases amortize RPCs;
* the acceptance scene: a real B=8 ``python -m repro verify`` run
  under a ChaosProxy, its coordinator SIGKILLed mid-sweep and both
  workers SIGKILLed, resumed with ``--resume`` -- final report
  byte-identical to serial, no journaled shard recomputed.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro
from repro.core.two_sort import build_two_sort
from repro.distributed import (
    LineChannel,
    ShardCoordinator,
    ShardWorker,
    StackedCache,
    SweepCheckpoint,
    pack,
    use_coordinator,
)
from repro.distributed.wire import ChannelTimeout, encode_line
from repro.testing import ChaosProxy, FaultSchedule, FlakyChannel
from repro.verify.exhaustive import SweepEpoch, VerificationResult
from repro.verify.parallel import SweepCancelled, verify_two_sort_sharded

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def _triple(task):
    return 3 * task


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _result(checked=5, failures=()):
    r = VerificationResult(checked=checked)
    for m in failures:
        r.record(m)
    return r


# ----------------------------------------------------------------------
# The journal itself
# ----------------------------------------------------------------------
class TestSweepCheckpoint:
    def test_roundtrip_across_reopen(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        key = ("two-sort", "abc123", "bigint", 4, 0, 10)
        with SweepCheckpoint(path, fsync=False) as journal:
            assert journal.get(key) is None
            journal.put(key, _result(7, ["f1", "f2"]))
        with SweepCheckpoint(path, fsync=False) as journal:
            back = journal.get(key)
        assert back is not None
        assert back.checked == 7
        assert back.failures == ["f1", "f2"]
        assert back.failure_count == 2
        assert back.elapsed is None  # shard results never carry timing

    def test_results_roundtrip_byte_identically(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        original = _result(9, [f"fail {i}" for i in range(25)])  # truncated
        with SweepCheckpoint(path, fsync=False) as journal:
            journal.put(("k",), original)
        with SweepCheckpoint(path, fsync=False) as journal:
            back = journal.get(("k",))
        assert back.to_json() == original.to_json()
        assert back.truncated

    def test_torn_trailing_line_is_dropped_not_fatal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with SweepCheckpoint(path, fsync=False) as journal:
            journal.put(("a",), _result(1))
            journal.put(("b",), _result(2))
        # Simulate SIGKILL mid-append: cut the final record in half.
        data = Path(path).read_bytes()
        Path(path).write_bytes(data[: len(data) - len(data.splitlines()[-1]) // 2 - 1])
        with SweepCheckpoint(path, fsync=False) as journal:
            assert journal.get(("a",)) is not None
            assert journal.get(("b",)) is None  # the torn one
            assert journal.torn == 1
            # ... and the shard can be re-journaled on the rerun.
            journal.put(("b",), _result(2))
            assert len(journal) == 2

    def test_duplicate_records_first_write_wins(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with SweepCheckpoint(path, fsync=False) as journal:
            journal.put(("k",), _result(1))
        # A second writer (or a replayed journal) appends the same key.
        record = {
            "type": "result",
            "key": ["k"],
            "result": {
                "checked": 999, "failure_count": 0,
                "failures": [], "truncated": False,
            },
        }
        with open(path, "a") as fh:
            fh.write(json.dumps(record) + "\n")
        with SweepCheckpoint(path, fsync=False) as journal:
            assert journal.duplicates == 1
            assert journal.get(("k",)).checked == 1  # first write won

    def test_put_existing_key_does_not_grow_journal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with SweepCheckpoint(path, fsync=False) as journal:
            journal.put(("k",), _result(1))
            size = os.path.getsize(path)
            journal.put(("k",), _result(42))
            assert os.path.getsize(path) == size  # append-only, idempotent
            assert journal.get(("k",)).checked == 1

    def test_record_epoch_once_and_self_describing(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        epoch = SweepEpoch(
            kind="verify-two-sort", circuit_name="two-sort",
            circuit_hash="deadbeef", width=6, backend="bigint",
        )
        with SweepCheckpoint(path, fsync=False) as journal:
            journal.record_epoch(epoch, shards=17, shard_size=4080)
            journal.record_epoch(epoch, shards=17, shard_size=4080)
            assert os.path.getsize(path) == len(Path(path).read_bytes())
            assert Path(path).read_text().count('"type":"epoch"') == 1
        with SweepCheckpoint(path, fsync=False) as journal:
            assert journal.epochs() == [epoch]
            assert journal.stats()["epochs"] == 1

    def test_fingerprint_is_stable_and_discriminating(self):
        a = SweepEpoch("verify-two-sort", "two-sort", "h1", 6, None)
        b = SweepEpoch("verify-two-sort", "two-sort", "h1", 6, None)
        c = SweepEpoch("verify-two-sort", "two-sort", "h2", 6, None)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_stacked_cache_backfills_both_ways(self, tmp_path):
        from repro.service.cache import ShardCache

        path = str(tmp_path / "j.jsonl")
        memory = ShardCache()
        with SweepCheckpoint(path, fsync=False) as journal:
            stack = StackedCache(journal, memory)
            stack.put(("a",), _result(1))
            # Journal hit warms memory.
            memory2 = ShardCache()
            stack2 = StackedCache(journal, memory2)
            assert stack2.get(("a",)).checked == 1
            assert memory2.get(("a",)) is not None
            # Memory-only hit becomes durable.
            memory.put(("b",), _result(2))
            assert stack.get(("b",)).checked == 2
            assert journal.get(("b",)) is not None


# ----------------------------------------------------------------------
# Interrupted sweep, resumed: zero recompute, identical bytes
# ----------------------------------------------------------------------
class TestResume:
    def test_cancel_then_resume_is_byte_identical_with_zero_recompute(
        self, tmp_path, monkeypatch
    ):
        import repro.verify.parallel as parallel

        circuit = build_two_sort(6)
        reference = verify_two_sort_sharded(
            circuit, 6, jobs=1, executor="serial", shard_size=200
        )
        path = str(tmp_path / "sweep.jsonl")

        executed = []
        real_worker = parallel._verify_shard_worker
        monkeypatch.setattr(
            parallel, "_verify_shard_worker",
            lambda task: executed.append(task) or real_worker(task),
        )

        done = []
        journal = SweepCheckpoint(path, fsync=False)
        try:
            with pytest.raises(SweepCancelled):
                verify_two_sort_sharded(
                    circuit, 6, jobs=1, executor="serial", shard_size=200,
                    cache=journal,
                    on_shard=lambda d, t, r: done.append(d),
                    should_stop=lambda: len(done) >= 5,
                )
        finally:
            journal.close()
        first_run = len(executed)
        assert first_run >= 5
        with SweepCheckpoint(path, fsync=False) as peek:
            checkpointed = len(peek)
            assert checkpointed == first_run  # every executed shard durable
            assert len(peek.epochs()) == 1  # journal knows its sweep

        executed.clear()
        journal = SweepCheckpoint(path, fsync=False)
        try:
            resumed = verify_two_sort_sharded(
                circuit, 6, jobs=1, executor="serial", shard_size=200,
                cache=journal,
            )
            total = len(journal)
        finally:
            journal.close()
        # Zero already-checkpointed shards recomputed:
        assert len(executed) == total - checkpointed
        assert resumed.to_json() == reference.to_json()
        # A third run touches nothing at all.
        executed.clear()
        with SweepCheckpoint(path, fsync=False) as journal:
            third = verify_two_sort_sharded(
                circuit, 6, jobs=1, executor="serial", shard_size=200,
                cache=journal,
            )
        assert executed == []
        assert third.to_json() == reference.to_json()

    def test_service_verify_request_journals_and_resumes(self, tmp_path):
        from repro.service.jobs import VerifyRequest

        path = str(tmp_path / "svc.jsonl")
        first = VerifyRequest(
            width=5, jobs=1, shard_size=200, executor="serial",
            checkpoint=path,
        ).run()
        assert os.path.exists(path)
        again = VerifyRequest(
            width=5, jobs=1, shard_size=200, executor="serial",
            checkpoint=path,
        ).run()
        first.elapsed = again.elapsed = None
        assert again.to_json() == first.to_json()

    def test_verify_request_rejects_bad_checkpoint(self):
        from repro.service.jobs import VerifyRequest

        with pytest.raises(ValueError, match="checkpoint"):
            VerifyRequest(width=4, checkpoint="").validate()
        with pytest.raises(ValueError, match="checkpoint"):
            VerifyRequest(width=4, checkpoint=7).validate()


# ----------------------------------------------------------------------
# Worker supervision: backoff, startup order, coordinator death
# ----------------------------------------------------------------------
class TestWorkerReconnect:
    def test_worker_started_before_coordinator_still_serves(self):
        port = _free_port()
        stop = threading.Event()
        worker = ShardWorker(
            "127.0.0.1", port, retry_max=100, backoff_base=0.05, seed=1
        )
        thread = threading.Thread(target=worker.run, args=(stop,), daemon=True)
        thread.start()
        time.sleep(0.3)  # let it fail a few dials first
        coordinator = ShardCoordinator(host="127.0.0.1", port=port).start()
        try:
            with use_coordinator(coordinator):
                from repro.verify.parallel import run_sharded

                out = run_sharded(
                    _triple, list(range(8)), jobs=1, executor="distributed"
                )
            assert out == [3 * t for t in range(8)]
        finally:
            stop.set()
            coordinator.close()
            thread.join(timeout=10)
        assert not thread.is_alive()

    def test_retry_budget_exhaustion_raises_connection_error(self):
        port = _free_port()  # nothing listens here
        worker = ShardWorker(
            "127.0.0.1", port, retry_max=2, backoff_base=0.01, seed=1
        )
        with pytest.raises(ConnectionError, match="3 connect attempt"):
            worker.run()

    def test_retry_max_zero_fails_fast(self):
        port = _free_port()
        worker = ShardWorker("127.0.0.1", port, retry_max=0)
        start = time.monotonic()
        with pytest.raises(ConnectionError, match="unreachable"):
            worker.run()
        assert time.monotonic() - start < 2.0

    def test_backoff_is_jittered_exponential_and_capped(self):
        worker = ShardWorker(
            "127.0.0.1", 1, backoff_base=0.5, backoff_max=15.0, seed=42
        )
        delays = [worker._backoff_delay(n) for n in range(1, 12)]
        for n, delay in enumerate(delays, start=1):
            ceiling = min(15.0, 0.5 * 2 ** (n - 1))
            assert ceiling * 0.5 <= delay <= ceiling
        assert max(delays) <= 15.0
        # Same seed, same jitter: chaos runs are reproducible.
        again = ShardWorker(
            "127.0.0.1", 1, backoff_base=0.5, backoff_max=15.0, seed=42
        )
        assert [again._backoff_delay(n) for n in range(1, 12)] == delays

    def test_worker_survives_abrupt_coordinator_death_and_restart(self):
        """SIGKILL-equivalent: the listener and every connection die
        without a goodbye; the worker must back off, redial, and serve
        the *next* coordinator incarnation on the same port."""
        from repro.verify.parallel import run_sharded

        port = _free_port()
        first = ShardCoordinator(host="127.0.0.1", port=port).start()
        stop = threading.Event()
        worker = ShardWorker(
            "127.0.0.1", port, retry_max=200, backoff_base=0.05, seed=3
        )
        thread = threading.Thread(target=worker.run, args=(stop,), daemon=True)
        thread.start()
        second = None
        try:
            with use_coordinator(first):
                assert run_sharded(
                    _triple, [1, 2], jobs=1, executor="distributed"
                ) == [3, 6]
            # Abrupt death: no bye, sockets just vanish.
            first.kill()
            time.sleep(0.2)
            second = ShardCoordinator(host="127.0.0.1", port=port).start()
            with use_coordinator(second):
                assert run_sharded(
                    _triple, [5], jobs=1, executor="distributed"
                ) == [15]
            assert worker.reconnects >= 1
        finally:
            stop.set()
            if second is not None:
                second.close()
            first.close()
            thread.join(timeout=10)
        assert not thread.is_alive()


# ----------------------------------------------------------------------
# Exact lease accounting under scripted churn
# ----------------------------------------------------------------------
class TestLeaseAccounting:
    @contextmanager
    def _scripted(self, lease_timeout=0.5):
        coordinator = ShardCoordinator(
            host="127.0.0.1", port=0, lease_timeout=lease_timeout
        ).start()
        clients = []

        def client(name):
            channel = LineChannel.connect("127.0.0.1", coordinator.port)
            clients.append(channel)
            hello = channel.request({"op": "hello", "name": name, "slots": 1})
            assert hello["ok"]
            return channel

        try:
            yield coordinator, client
        finally:
            for channel in clients:
                channel.close()
            coordinator.close()

    def _collect_async(self, handle):
        out = {}

        def run():
            out["results"] = handle.collect()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread, out

    def test_late_result_after_expiry_counts_late_once(self):
        """Lease expires (requeued=1), then the original worker's
        result lands *before* any re-run: merged once, late=1, and the
        re-queued copy is withdrawn from pending."""
        with self._scripted(lease_timeout=0.4) as (coordinator, client):
            handle = coordinator.submit(_triple, [7])
            thread, out = self._collect_async(handle)
            slow = client("slow")
            reply = slow.request({"op": "next"})
            assert reply["kind"] == "task"
            index = reply["items"][0][0]
            assert _wait_until(
                lambda: coordinator.stats()["requeued_total"] >= 1, 10
            ), "lease never expired"
            slow.send({
                "op": "result", "batch": reply["batch"],
                "index": index, "result": pack(21),
            })
            thread.join(timeout=10)
            assert out["results"] == [21]
            batch = coordinator.stats()["batches"][-1]
            assert batch["requeued"] == 1
            assert batch["late"] == 1
            assert batch["duplicates"] == 0
            assert batch["done"] == batch["tasks"] == 1

    def test_rerun_then_stale_result_counts_duplicate_once(self):
        """Lease expires, a second worker re-runs the shard and reports
        first; the original's stale result is discarded as
        duplicates=1, never double-merged.  A second task keeps the
        batch alive until the stale result has been accounted."""
        with self._scripted(lease_timeout=0.4) as (coordinator, client):
            handle = coordinator.submit(_triple, [7, 8])
            thread, out = self._collect_async(handle)
            slow = client("slow")
            reply = slow.request({"op": "next"})
            assert reply["kind"] == "task"
            index = reply["items"][0][0]
            assert _wait_until(
                lambda: coordinator.stats()["requeued_total"] >= 1, 10
            )
            fast = client("fast")
            re_reply = fast.request({"op": "next"})
            assert re_reply["kind"] == "task"
            assert re_reply["items"][0][0] == index  # the re-queued shard
            fast.send({
                "op": "result", "batch": re_reply["batch"],
                "index": index, "result": pack(21),
            })
            # The stale original arrives while the batch is still live.
            slow.send({
                "op": "result", "batch": reply["batch"],
                "index": index, "result": pack(999),
            })
            assert _wait_until(
                lambda: coordinator.stats()["batches"][-1]["duplicates"] == 1,
                10,
            ), "stale result was not accounted as a duplicate"
            # Finish the batch: fast takes and completes the other task.
            tail = fast.request({"op": "next"})
            assert tail["kind"] == "task"
            for tail_index, _task in tail["items"]:
                fast.send({
                    "op": "result", "batch": tail["batch"],
                    "index": tail_index, "result": pack(24),
                })
            thread.join(timeout=10)
            assert out["results"] == [21, 24]  # 999 never merged
            batch = coordinator.stats()["batches"][-1]
            assert batch["requeued"] == 1
            assert batch["duplicates"] == 1
            assert batch["late"] == 0

    def test_result_for_unknown_batch_is_discarded(self):
        """A replay from before a coordinator restart carries a batch
        id with the *old* nonce: unknown here, safely ignored."""
        with self._scripted() as (coordinator, client):
            channel = client("ghost")
            channel.send({
                "op": "result", "batch": "b0001-deadbe",
                "index": 0, "result": pack(1),
            })
            channel.send({"op": "heartbeat"})
            time.sleep(0.1)
            # Coordinator is still alive and serving.
            assert client("probe").request({"op": "next"})["kind"] == "wait"

    def test_batch_ids_unique_across_incarnations(self):
        a = ShardCoordinator(host="127.0.0.1", port=0).start()
        b = ShardCoordinator(host="127.0.0.1", port=0).start()
        try:
            ha = a.submit(_triple, [1])
            hb = b.submit(_triple, [1])
            assert ha.id != hb.id  # same sequence number, different nonce
            assert ha.id.split("-")[0] == hb.id.split("-")[0] == "b0001"
        finally:
            a.close()
            b.close()


# ----------------------------------------------------------------------
# Range leases
# ----------------------------------------------------------------------
class TestRangeLeases:
    def _sweep(self, max_range, tasks=64):
        from repro.verify.parallel import run_sharded

        coordinator = ShardCoordinator(
            host="127.0.0.1", port=0, max_range=max_range
        ).start()
        stop = threading.Event()
        worker = ShardWorker("127.0.0.1", coordinator.port, seed=1)
        thread = threading.Thread(target=worker.run, args=(stop,), daemon=True)
        thread.start()
        try:
            with use_coordinator(coordinator):
                out = run_sharded(
                    _triple, list(range(tasks)), jobs=1,
                    executor="distributed",
                )
            assert out == [3 * t for t in range(tasks)]
            return coordinator.stats()
        finally:
            stop.set()
            coordinator.close()
            thread.join(timeout=10)

    def test_ranges_amortize_lease_rpcs(self):
        stats = self._sweep(max_range=32)
        assert stats["tasks_leased_total"] == 64
        # Adaptive doubling: far fewer "next" round-trips than tasks.
        assert stats["lease_rpcs_total"] < 40
        assert stats["max_range"] == 32

    def test_max_range_one_degrades_to_task_per_rpc(self):
        stats = self._sweep(max_range=1)
        assert stats["tasks_leased_total"] == 64
        # One task per granting RPC, plus possibly trailing "wait"s.
        assert stats["lease_rpcs_total"] >= 64

    def test_partial_range_death_requeues_only_unreported_tail(self):
        """A client leases a range, reports a prefix, dies: only the
        tail re-queues, and the final merge is still complete."""
        coordinator = ShardCoordinator(
            host="127.0.0.1", port=0, lease_timeout=5.0, max_range=8
        ).start()
        try:
            handle = coordinator.submit(_triple, list(range(8)))
            out = {}

            def run():
                out["results"] = handle.collect()

            collector = threading.Thread(target=run, daemon=True)
            collector.start()
            doomed = LineChannel.connect("127.0.0.1", coordinator.port)
            doomed.request({"op": "hello", "name": "doomed", "slots": 1})
            reply = doomed.request({"op": "next"})
            # Warm the range up: complete the first grant(s) promptly
            # until a multi-task range arrives.
            while len(reply["items"]) == 1:
                index = reply["items"][0][0]
                doomed.send({
                    "op": "result", "batch": reply["batch"],
                    "index": index, "result": pack(3 * index),
                })
                reply = doomed.request({"op": "next"})
                assert reply["kind"] == "task"
            granted = [i for i, _ in reply["items"]]
            assert len(granted) >= 2
            # Report just the first of the range, then die.
            doomed.send({
                "op": "result", "batch": reply["batch"],
                "index": granted[0], "result": pack(3 * granted[0]),
            })
            time.sleep(0.1)
            doomed.close()

            stop = threading.Event()
            survivor = ShardWorker(
                "127.0.0.1", coordinator.port, name="survivor", seed=2
            )
            wt = threading.Thread(
                target=survivor.run, args=(stop,), daemon=True
            )
            wt.start()
            collector.join(timeout=20)
            assert out["results"] == [3 * t for t in range(8)]
            batch = coordinator.stats()["batches"][-1]
            # Only the unreported tail of the dead range re-queued.
            assert batch["requeued"] == len(granted) - 1
            assert batch["duplicates"] == 0
            stop.set()
        finally:
            coordinator.close()

    def test_fast_completion_grows_then_expiry_shrinks_the_range(self):
        coordinator = ShardCoordinator(
            host="127.0.0.1", port=0, lease_timeout=2.0, max_range=8
        ).start()
        try:
            handle = coordinator.submit(_triple, list(range(16)))
            channel = LineChannel.connect("127.0.0.1", coordinator.port)
            channel.request({"op": "hello", "name": "greedy", "slots": 1})
            reply = channel.request({"op": "next"})
            assert len(reply["items"]) == 1  # ranges start conservative
            index = reply["items"][0][0]
            channel.send({
                "op": "result", "batch": reply["batch"],
                "index": index, "result": pack(3 * index),
            })
            # Prompt re-ask after a fully drained grant: range doubles.
            grown = channel.request({"op": "next"})
            assert grown["kind"] == "task"
            assert len(grown["items"]) == 2
            assert coordinator.stats()["workers"][0]["range_size"] == 2
            # Now sit on the grant until the leases expire: halves back.
            assert _wait_until(
                lambda: coordinator.stats()["requeued_total"] >= 2, 15
            ), "held leases never expired"
            assert coordinator.stats()["workers"][0]["range_size"] == 1
            channel.close()
            handle.cancel()
        finally:
            coordinator.close()


# ----------------------------------------------------------------------
# Wire timeouts (the half-open-socket satellite)
# ----------------------------------------------------------------------
class TestBoundedRecv:
    def _pair(self):
        a, b = socket.socketpair()
        return LineChannel(a), b

    def test_recv_times_out_instead_of_blocking_forever(self):
        channel, peer = self._pair()
        start = time.monotonic()
        with pytest.raises(ChannelTimeout):
            channel.recv(timeout=0.2)
        assert time.monotonic() - start < 2.0
        channel.close()
        peer.close()

    def test_partial_line_survives_a_timeout(self):
        """A timeout mid-line must not lose the buffered prefix --
        the next recv completes the message intact."""
        channel, peer = self._pair()
        line = encode_line({"op": "result", "value": "x" * 100})
        peer.sendall(line[:30])
        with pytest.raises(ChannelTimeout):
            channel.recv(timeout=0.1)
        peer.sendall(line[30:])
        msg = channel.recv(timeout=1.0)
        assert msg == {"op": "result", "value": "x" * 100}
        channel.close()
        peer.close()

    def test_default_recv_still_blocks(self):
        channel, peer = self._pair()
        got = {}

        def recv():
            got["msg"] = channel.recv()

        thread = threading.Thread(target=recv, daemon=True)
        thread.start()
        time.sleep(0.1)
        assert thread.is_alive()  # no spurious timeout without one
        peer.sendall(encode_line({"ok": True}))
        thread.join(timeout=5)
        assert got["msg"] == {"ok": True}
        channel.close()
        peer.close()


# ----------------------------------------------------------------------
# Chaos primitives and chaotic sweeps
# ----------------------------------------------------------------------
class TestChaosHarness:
    def test_fault_schedule_is_deterministic(self):
        kw = dict(seed=9, drop_rate=0.2, delay_rate=0.2, truncate_rate=0.1)
        one = FaultSchedule(**kw)
        two = FaultSchedule(**kw)
        seq1 = [one.next_fault() for _ in range(200)]
        seq2 = [two.next_fault() for _ in range(200)]
        assert seq1 == seq2
        assert set(seq1) > {None}  # faults actually fire
        assert sum(one.counts.values()) == 200

    def test_sweep_survives_flaky_channels(self):
        """Every worker session runs through a FlakyChannel that
        truncates-and-kills sends on schedule; the sweep must still be
        byte-identical to serial."""
        circuit = build_two_sort(5)
        serial = verify_two_sort_sharded(
            circuit, 5, jobs=1, executor="serial", shard_size=200
        )
        coordinator = ShardCoordinator(
            host="127.0.0.1", port=0, lease_timeout=5.0
        ).start()
        schedule = FaultSchedule(seed=13, truncate_rate=0.05, delay_rate=0.1,
                                 delay_s=0.005)
        stop = threading.Event()
        worker = ShardWorker(
            "127.0.0.1", coordinator.port,
            retry_max=500, backoff_base=0.02, seed=5,
            channel_wrapper=lambda ch: FlakyChannel(ch, schedule),
        )
        thread = threading.Thread(target=worker.run, args=(stop,), daemon=True)
        thread.start()
        try:
            with use_coordinator(coordinator):
                chaotic = verify_two_sort_sharded(
                    circuit, 5, executor="distributed", shard_size=200
                )
            assert chaotic.to_json() == serial.to_json()
            assert schedule.counts["truncate"] >= 1  # chaos actually bit
        finally:
            stop.set()
            coordinator.close()
            thread.join(timeout=15)

    def test_proxy_relays_and_kills_deterministically(self):
        """ChaosProxy forwards an entire sweep through a MITM that
        kills connections after a byte budget; workers reconnect
        through it and the result stays byte-identical."""
        circuit = build_two_sort(5)
        serial = verify_two_sort_sharded(
            circuit, 5, jobs=1, executor="serial", shard_size=100
        )
        coordinator = ShardCoordinator(
            host="127.0.0.1", port=0, lease_timeout=5.0
        ).start()
        proxy = ChaosProxy(
            "127.0.0.1", coordinator.port, seed=21,
            kill_after_bytes=120_000, delay_rate=0.05, delay_s=0.002,
        ).start()
        stop = threading.Event()
        worker = ShardWorker(
            "127.0.0.1", proxy.port,
            retry_max=500, backoff_base=0.02, seed=8,
        )
        thread = threading.Thread(target=worker.run, args=(stop,), daemon=True)
        thread.start()
        try:
            with use_coordinator(coordinator):
                chaotic = verify_two_sort_sharded(
                    circuit, 5, executor="distributed", shard_size=100
                )
            assert chaotic.to_json() == serial.to_json()
            assert proxy.stats["connections"] >= 1
            assert proxy.stats["bytes"] > 0
        finally:
            stop.set()
            coordinator.close()
            proxy.close()
            thread.join(timeout=15)

    def test_proxy_refuses_cleanly_while_upstream_down(self):
        dead_port = _free_port()
        proxy = ChaosProxy("127.0.0.1", dead_port).start()
        try:
            with pytest.raises(OSError):
                channel = LineChannel.connect("127.0.0.1", proxy.port)
                # The proxy accepts then closes; the failure may arrive
                # on first use rather than connect.
                channel.send({"op": "hello"})
                if channel.recv(timeout=2.0) is None:
                    raise ConnectionError("closed")
            assert _wait_until(lambda: proxy.stats["refused"] >= 1, 5)
        finally:
            proxy.close()


# ----------------------------------------------------------------------
# The acceptance scene: B=8 under chaos, SIGKILL + --resume
# ----------------------------------------------------------------------
class TestChaosAcceptance:
    SHARD_SIZE = 511 * 8  # 64 shards at B=8

    def _spawn_worker(self, connect, name, env, throttle=0.05):
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", connect, "--name", name,
                "--throttle", str(throttle),
                "--retry-max", "500", "--backoff-base", "0.1",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )

    def _journal_results(self, path):
        if not os.path.exists(path):
            return 0
        count = 0
        with open(path, "rb") as fh:
            for line in fh:
                try:
                    if json.loads(line).get("type") == "result":
                        count += 1
                except ValueError:
                    pass
        return count

    def test_b8_sigkill_coordinator_and_workers_resume_byte_identical(
        self, tmp_path
    ):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        journal = str(tmp_path / "b8.jsonl")
        port = _free_port()

        # Serial reference, same CLI surface (text output is the
        # byte-for-byte comparison object; --json embeds timing).
        serial = subprocess.run(
            [
                sys.executable, "-m", "repro", "verify", "--width", "8",
                "--shard-size", str(self.SHARD_SIZE),
            ],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert serial.returncode == 0, serial.stderr

        # One chaos proxy spans both coordinator incarnations: worker
        # connections churn after a byte budget, replies get delayed.
        proxy = ChaosProxy(
            "127.0.0.1", port, seed=17,
            kill_after_bytes=400_000, delay_rate=0.02, delay_s=0.005,
        ).start()
        via_proxy = f"127.0.0.1:{proxy.port}"

        def run_verify(extra):
            return subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "verify",
                    "--width", "8", "--shard-size", str(self.SHARD_SIZE),
                    "--executor", "distributed",
                    "--listen", f"127.0.0.1:{port}",
                ] + extra,
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True,
            )

        workers = []
        doomed = run_verify(["--checkpoint", journal])
        try:
            workers = [
                self._spawn_worker(via_proxy, "w1", env),
                self._spawn_worker(via_proxy, "w2", env),
            ]
            # Let real progress reach disk, then kill everything the
            # hard way: coordinator first, then both workers.
            assert _wait_until(
                lambda: self._journal_results(journal) >= 8, timeout=120
            ), "no checkpointed progress before the kill"
            os.kill(doomed.pid, signal.SIGKILL)
            doomed.wait(timeout=15)
            for proc in workers:
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=15)

            on_file = self._journal_results(journal)
            assert on_file >= 8
            # Fresh workers dial the (still dead) coordinator address
            # through the proxy first -- startup order is free.
            workers = [
                self._spawn_worker(via_proxy, "w3", env, throttle=0.0),
                self._spawn_worker(via_proxy, "w4", env, throttle=0.0),
            ]
            time.sleep(0.5)
            resumed = run_verify(["--resume", journal])
            out, err = resumed.communicate(timeout=300)
            assert resumed.returncode == 0, err
            # The operator sees what resume skipped...
            assert f"{on_file} shard result(s) on file" in err
            # ...and the report is byte-identical to the serial CLI run.
            assert out == serial.stdout

            # Zero already-checkpointed shards recomputed: the resumed
            # run's workers executed exactly the remainder.
            executed = 0
            for proc in workers:
                proc.wait(timeout=60)
                stderr = proc.stderr.read()
                assert proc.returncode == 0, stderr
                done = [
                    int(line.split()[2])
                    for line in stderr.splitlines()
                    if line.startswith("worker done:")
                ]
                assert len(done) == 1, stderr
                executed += done[0]
            total = self._journal_results(journal)
            assert executed == total - on_file

            # The journal is complete, self-describing, and free of
            # duplicate shard records.
            with SweepCheckpoint(journal, fsync=False) as final:
                assert len(final) == total
                assert final.duplicates == 0
                assert final.torn == 0
                assert len(final.epochs()) == 1
                keys = final.keys()
                assert len(set(keys)) == len(keys)
        finally:
            proxy.close()
            for proc in [doomed] + workers:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)
