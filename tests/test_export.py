"""Tests for netlist export (repro.circuits.export)."""

import itertools
import re

import pytest

from repro.circuits.export import to_dot, to_verilog
from repro.circuits.gates import AND2, MUX2, XOR2
from repro.circuits.netlist import Circuit
from repro.core.two_sort import build_two_sort
from repro.ternary.trit import ONE, Trit, ZERO


class _VerilogInterpreter:
    """Tiny evaluator for the assign-per-gate subset we emit."""

    def __init__(self, source: str):
        self.inputs = re.findall(r"input (\w+);", source)
        self.n_outputs = len(re.findall(r"output out_\d+;", source))
        self.wires = re.findall(r"wire (\w+) = (.+);", source)
        self.assigns = re.findall(r"assign (out_\d+) = (\w+);", source)

    def run(self, input_bits):
        env = dict(zip(self.inputs, input_bits))
        for name, expr in self.wires:
            py = (
                expr.replace("~", " not ")
                .replace("&", " and ")
                .replace("|", " or ")
            )
            if "?" in py:
                sel, rest = py.split("?")
                a, b = rest.split(":")
                py = f"({a.strip()}) if ({sel.strip()}) else ({b.strip()})"
            if "^" in py:
                left, right = py.split("^")
                py = f"({left.strip()}) != ({right.strip()})"
            env[name] = int(eval(py, {}, {k: bool(v) for k, v in env.items()}))
        return [env[src] for _, src in sorted(self.assigns)]


class TestVerilog:
    def test_two_sort_verilog_is_boolean_equivalent(self):
        """Emitted Verilog == circuit simulation on all stable inputs."""
        from repro.circuits.evaluate import evaluate_outputs

        circuit = build_two_sort(2)
        source = to_verilog(circuit)
        interp = _VerilogInterpreter(source)
        for bits in itertools.product((0, 1), repeat=4):
            want = [
                t.to_int()
                for t in evaluate_outputs(
                    circuit,
                    dict(zip(circuit.inputs, map(Trit.from_int, bits))),
                )
            ]
            assert interp.run(bits) == want, bits

    def test_module_header(self):
        source = to_verilog(build_two_sort(2), module_name="two_sort_2")
        assert source.startswith("// generated")
        assert "module two_sort_2(" in source
        assert "endmodule" in source
        assert "MC-safe cell set: True" in source

    def test_extended_cells(self):
        c = Circuit("ext")
        a, b, s = c.add_input("a"), c.add_input("b"), c.add_input("s")
        c.add_output(c.add_gate(XOR2, [a, b]))
        c.add_output(c.add_gate(MUX2, [s, a, b]))
        source = to_verilog(c)
        assert "^" in source and "?" in source
        interp = _VerilogInterpreter(source)
        assert interp.run([1, 0, 0]) == [1, 1]  # xor=1, mux(sel=0)=a=1
        assert interp.run([1, 0, 1]) == [1, 0]  # mux(sel=1)=b=0

    def test_constants_emitted(self):
        c = Circuit("with_const")
        a = c.add_input("a")
        c.add_output(c.add_gate(AND2, [a, c.const(ONE)]))
        assert "1'b1" in to_verilog(c)

    def test_sanitization(self):
        c = Circuit("weird")
        a = c.add_input("ch0/b-1")
        c.add_output(c.add_gate(AND2, [a, a]))
        source = to_verilog(c)
        assert "ch0/b-1" not in source
        assert "ch0_b_1" in source


class TestDot:
    def test_structure(self):
        dot = to_dot(build_two_sort(2))
        assert dot.startswith('digraph "two_sort_2b_ladner_fischer"')
        assert dot.count("lightblue") == 4    # inputs
        assert dot.count("lightgreen") == 4   # outputs
        assert 'label="AND2"' in dot and 'label="INV"' in dot

    def test_size_guard(self):
        with pytest.raises(ValueError, match="raise max_gates"):
            to_dot(build_two_sort(64), max_gates=100)
