"""Tests for netlist export (repro.circuits.export)."""

import itertools
import re

import pytest

from repro.circuits.export import to_dot, to_verilog
from repro.circuits.gates import AND2, MUX2, XOR2
from repro.circuits.netlist import Circuit
from repro.core.two_sort import build_two_sort
from repro.ternary.trit import ONE, Trit, ZERO


class _VerilogInterpreter:
    """Tiny evaluator for the assign-per-gate subset we emit."""

    def __init__(self, source: str):
        self.inputs = re.findall(r"input (\w+);", source)
        self.n_outputs = len(re.findall(r"output out_\d+;", source))
        self.wires = re.findall(r"wire (\w+) = (.+);", source)
        self.assigns = re.findall(r"assign (out_\d+) = (\w+);", source)

    def run(self, input_bits):
        env = dict(zip(self.inputs, input_bits))
        for name, expr in self.wires:
            py = (
                expr.replace("~", " not ")
                .replace("&", " and ")
                .replace("|", " or ")
            )
            if "?" in py:
                sel, rest = py.split("?")
                a, b = rest.split(":")
                py = f"({a.strip()}) if ({sel.strip()}) else ({b.strip()})"
            if "^" in py:
                left, right = py.split("^")
                py = f"({left.strip()}) != ({right.strip()})"
            env[name] = int(eval(py, {}, {k: bool(v) for k, v in env.items()}))
        return [env[src] for _, src in sorted(self.assigns)]


class TestVerilog:
    def test_two_sort_verilog_is_boolean_equivalent(self):
        """Emitted Verilog == circuit simulation on all stable inputs."""
        from repro.circuits.evaluate import evaluate_outputs

        circuit = build_two_sort(2)
        source = to_verilog(circuit)
        interp = _VerilogInterpreter(source)
        for bits in itertools.product((0, 1), repeat=4):
            want = [
                t.to_int()
                for t in evaluate_outputs(
                    circuit,
                    dict(zip(circuit.inputs, map(Trit.from_int, bits))),
                )
            ]
            assert interp.run(bits) == want, bits

    def test_module_header(self):
        source = to_verilog(build_two_sort(2), module_name="two_sort_2")
        assert source.startswith("// generated")
        assert "module two_sort_2(" in source
        assert "endmodule" in source
        assert "MC-safe cell set: True" in source

    def test_extended_cells(self):
        c = Circuit("ext")
        a, b, s = c.add_input("a"), c.add_input("b"), c.add_input("s")
        c.add_output(c.add_gate(XOR2, [a, b]))
        c.add_output(c.add_gate(MUX2, [s, a, b]))
        source = to_verilog(c)
        assert "^" in source and "?" in source
        interp = _VerilogInterpreter(source)
        assert interp.run([1, 0, 0]) == [1, 1]  # xor=1, mux(sel=0)=a=1
        assert interp.run([1, 0, 1]) == [1, 0]  # mux(sel=1)=b=0

    def test_constants_emitted(self):
        c = Circuit("with_const")
        a = c.add_input("a")
        c.add_output(c.add_gate(AND2, [a, c.const(ONE)]))
        assert "1'b1" in to_verilog(c)

    def test_sanitization(self):
        c = Circuit("weird")
        a = c.add_input("ch0/b-1")
        c.add_output(c.add_gate(AND2, [a, a]))
        source = to_verilog(c)
        assert "ch0/b-1" not in source
        assert "ch0_b_1" in source

    def test_sanitize_collision_uniquified(self):
        """Regression: distinct nets `a.b` and `a_b` used to sanitize to
        the same identifier, shorting two nets in the emitted module."""
        c = Circuit("collide")
        x = c.add_input("a.b")
        y = c.add_input("a_b")
        c.add_output(c.add_gate(AND2, [x, y]))
        source = to_verilog(c)
        inputs = re.findall(r"input (\w+);", source)
        assert len(inputs) == len(set(inputs)) == 2
        # the gate must read both distinct identifiers
        (gate_expr,) = re.findall(r"wire \w+ = (\w+) & (\w+);", source)
        assert set(gate_expr) == set(inputs)

    def test_collision_preserves_boolean_function(self):
        """a.b OR a_b must stay a 2-input OR after renaming."""
        from repro.circuits.gates import OR2

        c = Circuit("collide_fn")
        x = c.add_input("a.b")
        y = c.add_input("a_b")
        c.add_output(c.add_gate(OR2, [x, y]))
        interp = _VerilogInterpreter(to_verilog(c))
        assert interp.run([0, 0]) == [0]
        assert interp.run([1, 0]) == [1]
        assert interp.run([0, 1]) == [1]

    def test_verilog_keyword_nets_renamed(self):
        c = Circuit("kw")
        a = c.add_input("wire")
        b = c.add_input("module")
        c.add_output(c.add_gate(AND2, [a, b]))
        source = to_verilog(c)
        assert "input wire;" not in source
        assert "input module;" not in source
        assert "wire__2" in source and "module__2" in source

    def test_module_name_keyword_protected(self):
        c = Circuit("wire")
        a = c.add_input("a")
        c.add_output(c.add_gate(AND2, [a, a]))
        source = to_verilog(c)
        assert "module wire(" not in source
        assert "module wire_mod(" in source

    def test_verilog_gate_primitive_keywords_renamed(self):
        """and/or/xor etc. are keywords too, not just structural ones."""
        c = Circuit("kw2")
        a = c.add_input("or")
        b = c.add_input("initial")
        c.add_output(c.add_gate(AND2, [a, b]))
        source = to_verilog(c)
        assert "input or;" not in source
        assert "input initial;" not in source
        assert "or__2" in source and "initial__2" in source

    def test_net_shadowing_output_port_uniquified(self):
        """A net literally named out_0 must not capture the port name."""
        c = Circuit("portclash")
        a = c.add_input("out_0")
        c.add_output(c.add_gate(AND2, [a, a]))
        source = to_verilog(c)
        assert "input out_0;" not in source
        assert re.search(r"assign out_0 = \w+;", source)


class TestDot:
    def test_structure(self):
        dot = to_dot(build_two_sort(2))
        assert dot.startswith('digraph "two_sort_2b_ladner_fischer"')
        assert dot.count("lightblue") == 4    # inputs
        assert dot.count("lightgreen") == 4   # outputs
        assert 'label="AND2"' in dot and 'label="INV"' in dot

    def test_size_guard(self):
        with pytest.raises(ValueError, match="raise max_gates"):
            to_dot(build_two_sort(64), max_gates=100)

    def test_net_named_like_output_sink_stays_distinct(self):
        """Regression companion to the Verilog collision fix: a net named
        out_0 must not merge with the output sink node in DOT."""
        c = Circuit("dotclash")
        a = c.add_input("out_0")
        c.add_output(c.add_gate(AND2, [a, a]))
        dot = to_dot(c)
        assert '"//out_0"' in dot          # the sink node
        assert '"out_0" [shape=box' in dot  # the input net node
        assert dot.count("lightgreen") == 1

    def test_quotes_in_net_ids_escaped(self):
        c = Circuit('we"ird')
        a = c.add_input('a"b')
        c.add_output(c.add_gate(AND2, [a, a]))
        dot = to_dot(c)
        assert '\\"' in dot
        assert '"a"b"' not in dot
