"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_verify_ok(self, capsys):
        assert main(["verify", "--width", "2"]) == 0
        out = capsys.readouterr().out
        assert "49 cases checked: OK" in out

    def test_verify_wide_width_now_feasible(self, capsys):
        """B=8 (261k pairs) is interactive since the bit-parallel engine."""
        assert main(["verify", "--width", "8"]) == 0
        assert "261121 cases checked: OK" in capsys.readouterr().out

    def test_verify_refuses_huge_width(self, capsys):
        assert main(["verify", "--width", "14"]) == 2

    @pytest.mark.parametrize("width", ["0", "-2"])
    def test_verify_refuses_non_positive_width(self, width, capsys):
        """Widths below 1 exit 2 with a message, not a traceback."""
        assert main(["verify", "--width", width]) == 2
        assert "width must be in 1..13" in capsys.readouterr().err

    def test_verify_width_13_passes_the_cap(self, monkeypatch, capsys):
        """The cap moved from B<=11 to B<=13: width 13 must reach the
        verification path (stubbed -- the full 268M-pair run is far too
        slow for a unit test).  The CLI is a thin client of
        VerifyRequest now, so the stub lives at the request's seam."""
        import repro.service.jobs as jobs
        from repro.verify.exhaustive import VerificationResult

        seen = {}

        def fake_verify(circuit, width, **kwargs):
            seen["width"] = width
            return VerificationResult(checked=1)

        monkeypatch.setattr(jobs, "verify_two_sort_sharded", fake_verify)
        monkeypatch.setattr(jobs, "build_two_sort", lambda width: None)
        assert main(["verify", "--width", "13"]) == 0
        assert seen["width"] == 13
        assert "1 cases checked: OK" in capsys.readouterr().out

    def test_verify_jobs_match_serial(self, capsys):
        """--jobs N produces identical counts to the serial sweep."""
        outputs = []
        for jobs in ("1", "2", "4"):
            assert main(["verify", "--width", "5", "--jobs", jobs]) == 0
            outputs.append(capsys.readouterr().out)
        assert all("3969 cases checked: OK" in out for out in outputs)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_verify_shard_size_flag(self, capsys):
        assert main(
            ["verify", "--width", "4", "--jobs", "2", "--shard-size", "64"]
        ) == 0
        assert "961 cases checked: OK" in capsys.readouterr().out

    def test_verify_rejects_negative_jobs(self, capsys):
        assert main(["verify", "--width", "4", "--jobs", "-1"]) == 2
        err = capsys.readouterr().err
        assert "--jobs must be >= 0" in err and "-1" in err

    @pytest.mark.parametrize("size", ["0", "-7"])
    def test_verify_rejects_non_positive_shard_size(self, size, capsys):
        assert main(["verify", "--width", "4", "--shard-size", size]) == 2
        err = capsys.readouterr().err
        assert "--shard-size must be a positive" in err

    def test_verify_validation_happens_before_work(self, monkeypatch, capsys):
        """Bad arguments must not reach the verification layer at all."""
        import repro.service.jobs as jobs

        def boom(*a, **kw):  # pragma: no cover - must not run
            raise AssertionError("verification ran despite bad args")

        monkeypatch.setattr(jobs, "verify_two_sort_sharded", boom)
        assert main(["verify", "--width", "4", "--jobs", "-3"]) == 2

    def test_verify_backend_flag_bit_identical(self, capsys):
        """--backend array and --backend bigint: same summary, jobs 1+2
        (the acceptance contract)."""
        outputs = []
        for backend in ("bigint", "array"):
            for jobs in ("1", "2"):
                assert main(
                    ["verify", "--width", "5", "--jobs", jobs,
                     "--backend", backend]
                ) == 0
                outputs.append(capsys.readouterr().out)
        assert all("3969 cases checked: OK" in out for out in outputs)
        assert len(set(outputs)) == 1

    def test_verify_rejects_unknown_backend(self, capsys):
        """Unknown backends exit 2 with the registered names listed
        (argparse choices= would hide names registered at runtime)."""
        assert main(["verify", "--width", "4", "--backend", "gpu"]) == 2
        err = capsys.readouterr().err
        assert "unknown plane backend 'gpu'" in err
        for name in ("array", "auto", "bigint", "native"):
            assert name in err

    def test_sort_rejects_unknown_backend(self, capsys):
        assert main(
            ["sort", "01", "00", "--engine", "compiled", "--backend", "gpu"]
        ) == 2
        assert "unknown plane backend 'gpu'" in capsys.readouterr().err

    def test_verify_backend_native_and_auto_match_bigint(self, capsys):
        """--backend native and the auto default resolve to *some*
        registered backend and produce the bigint report verbatim
        (on compiler-less hosts native falls back; output is identical
        either way)."""
        outputs = []
        for backend in ("bigint", "native", "auto"):
            assert main(
                ["verify", "--width", "4", "--backend", backend]
            ) == 0
            outputs.append(capsys.readouterr().out)
        assert "961 cases checked: OK" in outputs[0]
        assert len(set(outputs)) == 1

    def test_backends_command_lists_registry(self, capsys):
        import json as jsonlib

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("array", "bigint", "native", "auto"):
            assert name in out
        assert "(default)" in out

        assert main(["backends", "--json"]) == 0
        data = jsonlib.loads(capsys.readouterr().out)
        names = {row["name"] for row in data["backends"]}
        assert {"array", "bigint", "native"} <= names
        assert data["auto"] in names
        assert data["default"] == "bigint"

    def test_verify_executor_flag_reaches_registry(self, capsys):
        """--executor finally exposes the registry: serial stays serial
        even with --jobs > 1 (which used to hard-imply process)."""
        outputs = []
        for executor in ("serial", "process", "array"):
            assert main(
                ["verify", "--width", "5", "--jobs", "2",
                 "--executor", executor]
            ) == 0
            outputs.append(capsys.readouterr().out)
        assert all("3969 cases checked: OK" in out for out in outputs)
        assert len(set(outputs)) == 1

    def test_verify_rejects_unknown_executor(self, capsys):
        assert main(["verify", "--width", "4", "--executor", "quantum"]) == 2
        err = capsys.readouterr().err
        assert "unknown executor 'quantum'" in err
        assert "serial" in err and "distributed" in err

    def test_verify_executor_validated_before_work(self, monkeypatch, capsys):
        import repro.service.jobs as jobs

        def boom(*a, **kw):  # pragma: no cover - must not run
            raise AssertionError("verification ran despite bad executor")

        monkeypatch.setattr(jobs, "verify_two_sort_sharded", boom)
        assert main(["verify", "--width", "4", "--executor", "nope"]) == 2

    def test_verify_distributed_requires_listen(self, capsys):
        assert main(
            ["verify", "--width", "4", "--executor", "distributed"]
        ) == 2
        assert "--listen" in capsys.readouterr().err

    def test_verify_listen_requires_distributed(self, capsys):
        assert main(["verify", "--width", "4", "--listen", "7433"]) == 2
        assert "--executor distributed" in capsys.readouterr().err

    def test_verify_listen_malformed_address(self, capsys):
        assert main(
            ["verify", "--width", "4", "--executor", "distributed",
             "--listen", "nonsense"]
        ) == 2
        assert "PORT or HOST:PORT" in capsys.readouterr().err

    def test_verify_listen_busy_port_exits_2(self, capsys):
        """A bind failure is a usage error (exit 2 + one line), not a
        traceback -- same convention as serve's service port."""
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            assert main(
                ["verify", "--width", "4", "--executor", "distributed",
                 "--listen", f"127.0.0.1:{port}"]
            ) == 2
            assert "cannot start coordinator" in capsys.readouterr().err
        finally:
            blocker.close()
            from repro.distributed import shutdown_coordinator

            shutdown_coordinator()

    def test_sort_rejects_unknown_executor(self, capsys):
        assert main(["sort", "01", "00", "--executor", "quantum"]) == 2
        assert "unknown executor" in capsys.readouterr().err

    def test_sort_rejects_distributed_executor(self, capsys):
        """sort has no --listen; demand the serve/submit route instead
        of dying in run_sharded with a traceback."""
        assert main(["sort", "01", "00", "--executor", "distributed"]) == 2
        err = capsys.readouterr().err
        assert "serve --listen" in err and "submit sort" in err

    def test_sort_executor_flag(self, capsys):
        assert main(
            ["sort", "0110", "0M10", "0010", "--engine", "compiled",
             "--executor", "serial"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == ["0010", "0M10", "0110"]

    def test_worker_rejects_malformed_connect(self, capsys):
        assert main(["worker", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_worker_connection_refused_exits_2(self, capsys):
        # --retry-max 0 keeps this a fail-fast test; the default budget
        # retries with backoff for over a minute (see
        # test_fault_tolerance for the retry/backoff behaviour itself).
        assert main(
            ["worker", "--connect", "127.0.0.1:1", "--retry-max", "0"]
        ) == 2
        err = capsys.readouterr().err
        assert "coordinator at 127.0.0.1:1" in err
        assert "connect attempt" in err

    def test_worker_rejects_negative_retry_max(self, capsys):
        assert main(
            ["worker", "--connect", "127.0.0.1:1", "--retry-max", "-1"]
        ) == 2
        assert "--retry-max" in capsys.readouterr().err

    def test_worker_rejects_nonpositive_backoff(self, capsys):
        assert main(
            ["worker", "--connect", "127.0.0.1:1", "--backoff-base", "0"]
        ) == 2
        assert "--backoff-base" in capsys.readouterr().err

    def test_verify_resume_requires_existing_journal(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["verify", "--width", "4", "--resume", missing]) == 2
        assert "no such checkpoint journal" in capsys.readouterr().err

    def test_verify_resume_checkpoint_conflict(self, tmp_path, capsys):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        assert main(
            ["verify", "--width", "4", "--resume", a, "--checkpoint", b]
        ) == 2
        assert "different journals" in capsys.readouterr().err

    def test_verify_checkpoint_roundtrip(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        assert main(
            ["verify", "--width", "4", "--checkpoint", journal]
        ) == 0
        first = capsys.readouterr()
        assert "OK" in first.out
        # Second run resumes: same report, and the resume banner counts
        # the journaled shards.
        assert main(["verify", "--width", "4", "--resume", journal]) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "shard result(s) on file" in second.err

    def test_sort_command(self, capsys):
        assert main(["sort", "0110", "0M10", "0010", "1000"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == ["0010", "0M10", "0110", "1000"]

    @pytest.mark.parametrize("engine", ["closure", "rank", "circuit", "compiled"])
    def test_sort_engine_flag(self, engine, capsys):
        """Every registered engine is reachable from the CLI and sorts
        identically (the compiled batch path was unreachable before)."""
        assert main(
            ["sort", "0110", "0M10", "0010", "1000", "--engine", engine]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == ["0010", "0M10", "0110", "1000"]

    def test_sort_engine_compiled_with_backend(self, capsys):
        assert main(
            ["sort", "0110", "0M10", "0010", "--engine", "compiled",
             "--backend", "array"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == ["0010", "0M10", "0110"]

    def test_sort_backend_requires_compiled_engine(self, capsys):
        assert main(["sort", "01", "00", "--backend", "array"]) == 2
        assert "--engine compiled" in capsys.readouterr().err

    def test_sort_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["sort", "01", "00", "--engine", "warp"])

    def test_sort_rejects_mixed_widths(self, capsys):
        assert main(["sort", "01", "011"]) == 2

    def test_sort_rejects_invalid_strings(self):
        with pytest.raises(Exception):
            main(["sort", "MM", "00"])

    def test_export(self, capsys):
        assert main(["export", "--width", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("// generated")
        assert "endmodule" in out

    def test_table7(self, capsys):
        assert main(["table7"]) == 0
        out = capsys.readouterr().out
        assert "this-paper 2-sort(16)" in out
        assert "407" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliJson:
    """--json: machine-readable output so scripts stop parsing summary()."""

    def test_verify_json_ok(self, capsys):
        import json

        assert main(["verify", "--width", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["checked"] == 961
        assert payload["ok"] is True
        assert payload["failure_count"] == 0
        assert payload["failures"] == []
        assert payload["truncated"] is False
        assert payload["elapsed_s"] >= 0

    def test_verify_json_matches_text_counts(self, capsys):
        import json

        assert main(["verify", "--width", "5", "--json", "--jobs", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["checked"] == 3969 and payload["ok"]

    def test_verify_json_reports_failures_and_truncation(
        self, monkeypatch, capsys
    ):
        import json

        import repro.service.jobs as jobs
        from repro.verify.exhaustive import VerificationResult

        def fake_verify(circuit, width, **kwargs):
            r = VerificationResult()
            r.checked = 50
            for i in range(25):
                r.record(f"boom {i}")
            return r

        monkeypatch.setattr(jobs, "verify_two_sort_sharded", fake_verify)
        monkeypatch.setattr(jobs, "build_two_sort", lambda width: None)
        assert main(["verify", "--width", "4", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failure_count"] == 25
        assert len(payload["failures"]) == 20
        assert payload["truncated"] is True
        assert payload["ok"] is False

    def test_sort_json(self, capsys):
        import json

        assert main(["sort", "0110", "0M10", "0010", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == ["0010", "0M10", "0110"]
