"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_verify_ok(self, capsys):
        assert main(["verify", "--width", "2"]) == 0
        out = capsys.readouterr().out
        assert "49 cases checked: OK" in out

    def test_verify_wide_width_now_feasible(self, capsys):
        """B=8 (261k pairs) is interactive since the bit-parallel engine."""
        assert main(["verify", "--width", "8"]) == 0
        assert "261121 cases checked: OK" in capsys.readouterr().out

    def test_verify_refuses_huge_width(self, capsys):
        assert main(["verify", "--width", "12"]) == 2

    def test_sort_command(self, capsys):
        assert main(["sort", "0110", "0M10", "0010", "1000"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == ["0010", "0M10", "0110", "1000"]

    def test_sort_rejects_mixed_widths(self, capsys):
        assert main(["sort", "01", "011"]) == 2

    def test_sort_rejects_invalid_strings(self):
        with pytest.raises(Exception):
            main(["sort", "MM", "00"])

    def test_export(self, capsys):
        assert main(["export", "--width", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("// generated")
        assert "endmodule" in out

    def test_table7(self, capsys):
        assert main(["table7"]) == 0
        out = capsys.readouterr().out
        assert "this-paper 2-sort(16)" in out
        assert "407" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
