"""Tests for the bit-parallel two-plane engine (repro.circuits.compiled).

The load-bearing property is *exact equivalence* with the scalar
reference interpreter: the compiled program must reproduce strong-Kleene
gate semantics bit-for-bit on every input, stable or metastable.  The
suite checks this per gate kind (full ternary truth tables), per circuit
(exhaustive over all valid pairs at small widths, randomized M-laden
vectors at B = 10), and end-to-end through the batched sorting-network
path.
"""

import itertools
import random

import pytest

from repro.circuits.compiled import CompiledCircuit, TritVec, compile_circuit
from repro.circuits.evaluate import (
    evaluate,
    evaluate_all_resolutions,
    evaluate_interpreted,
    evaluate_words,
)
from repro.circuits.gates import ALL_GATE_KINDS, AND2, INV, OR2
from repro.circuits.netlist import Circuit, CircuitError
from repro.core.two_sort import build_two_sort
from repro.ternary.kleene import kleene_and, kleene_not, kleene_or, kleene_xor
from repro.ternary.trit import ALL_TRITS, META, ONE, ZERO, Trit
from repro.ternary.word import Word
from repro.verify.exhaustive import valid_pairs


class TestTritVec:
    def test_roundtrip(self):
        tv = TritVec.from_trits("01M10M")
        assert tv.to_str() == "01M10M"
        assert tv.to_word() == Word("01M10M")
        assert len(tv) == 6

    def test_getitem(self):
        tv = TritVec.from_trits("0M1")
        assert tv[0] is ZERO and tv[1] is META and tv[2] is ONE
        assert tv[-1] is ONE
        with pytest.raises(IndexError):
            tv[3]

    def test_broadcast(self):
        assert TritVec.broadcast("M", 5).to_str() == "MMMMM"
        assert TritVec.broadcast(0, 3).to_str() == "000"

    def test_metastable_lanes(self):
        assert TritVec.from_trits("0MM1M").metastable_lanes == 3

    def test_plane_validation(self):
        with pytest.raises(ValueError, match="encode a trit"):
            TritVec(2, 0b01, 0b00)  # lane 1 has empty resolution set

    def test_lane_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            TritVec.from_trits("01") & TritVec.from_trits("011")

    @pytest.mark.parametrize(
        "op,scalar",
        [
            (lambda a, b: a & b, kleene_and),
            (lambda a, b: a | b, kleene_or),
            (lambda a, b: a.xor(b), kleene_xor),
        ],
    )
    def test_binary_ops_match_kleene_tables(self, op, scalar):
        pairs = list(itertools.product(ALL_TRITS, repeat=2))
        a = TritVec.from_trits([p[0] for p in pairs])
        b = TritVec.from_trits([p[1] for p in pairs])
        assert op(a, b).to_trits() == [scalar(x, y) for x, y in pairs]

    def test_invert_matches_kleene_not(self):
        tv = TritVec.from_trits(ALL_TRITS)
        assert (~tv).to_trits() == [kleene_not(t) for t in ALL_TRITS]

    def test_immutable_and_hashable(self):
        tv = TritVec.from_trits("0M")
        with pytest.raises(AttributeError):
            tv.p0 = 0
        assert tv == TritVec.from_trits("0M")
        assert hash(tv) == hash(TritVec.from_trits("0M"))


class TestGateKindEquivalence:
    """Every compilable gate kind: full ternary truth table, batch == scalar."""

    @pytest.mark.parametrize(
        "kind_name",
        [k for k, v in ALL_GATE_KINDS.items() if v.arity > 0],
    )
    def test_full_truth_table(self, kind_name):
        kind = ALL_GATE_KINDS[kind_name]
        c = Circuit(f"tt_{kind_name}")
        ins = c.add_inputs(kind.arity)
        c.add_output(c.add_gate(kind, ins))
        combos = list(itertools.product(ALL_TRITS, repeat=kind.arity))
        batch = compile_circuit(c).evaluate_batch(combos)
        expected = [Word([kind.evaluate(*combo)]) for combo in combos]
        assert batch == expected

    def test_constant_drivers(self):
        c = Circuit("consts")
        a = c.add_input("a")
        zero, one = c.const(ZERO), c.const(ONE)
        c.add_output(c.add_gate(OR2, [a, zero]))
        c.add_output(c.add_gate(AND2, [a, one]))
        batch = compile_circuit(c).evaluate_batch([[t] for t in ALL_TRITS])
        assert batch == [Word([t, t]) for t in ALL_TRITS]


class TestCircuitEquivalence:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_exhaustive_valid_pairs(self, width):
        """All |S^B_rg|^2 valid pairs: batch == scalar interpreter."""
        circuit = build_two_sort(width)
        pairs = list(valid_pairs(width))
        batch = compile_circuit(circuit).evaluate_batch(
            [tuple(g) + tuple(h) for g, h in pairs]
        )
        for (g, h), out in zip(pairs, batch):
            flat = list(g) + list(h)
            ref = evaluate_interpreted(circuit, dict(zip(circuit.inputs, flat)))
            assert out == Word([ref[n] for n in circuit.outputs]), (g, h)

    def test_exhaustive_valid_pairs_b6(self):
        """B = 6: the full 127^2 pair domain in one batch vs the scalar
        interpreter (subsampled comparison would not prove equivalence)."""
        width = 6
        circuit = build_two_sort(width)
        pairs = list(valid_pairs(width))
        batch = compile_circuit(circuit).evaluate_batch(
            [tuple(g) + tuple(h) for g, h in pairs]
        )
        for (g, h), out in zip(pairs, batch):
            flat = list(g) + list(h)
            ref = evaluate_interpreted(circuit, dict(zip(circuit.inputs, flat)))
            assert out == Word([ref[n] for n in circuit.outputs]), (g, h)

    def test_randomized_metastable_inputs_b10(self):
        """B = 10, arbitrary {0,1,M} words (not just valid strings):
        heavily M-laden inputs exercise every plane interaction."""
        width = 10
        circuit = build_two_sort(width)
        rng = random.Random(2018)
        vectors = [
            [rng.choice(ALL_TRITS) for _ in range(2 * width)]
            for _ in range(200)
        ]
        batch = compile_circuit(circuit).evaluate_batch(vectors)
        for vec, out in zip(vectors, batch):
            ref = evaluate_interpreted(circuit, dict(zip(circuit.inputs, vec)))
            assert out == Word([ref[n] for n in circuit.outputs])

    def test_scalar_wrappers_match_interpreter(self):
        """evaluate() (width-1 compiled wrapper) returns the same net
        dictionary as the reference interpreter."""
        circuit = build_two_sort(3)
        rng = random.Random(7)
        for _ in range(20):
            assignment = {
                n: rng.choice(ALL_TRITS) for n in circuit.inputs
            }
            assert evaluate(circuit, assignment) == evaluate_interpreted(
                circuit, assignment
            )

    def test_all_resolutions_batched(self):
        """Batched closure simulation equals the textbook definition."""
        c = Circuit("glitchy")
        a = c.add_input("a")
        na = c.add_gate(INV, [a])
        xor = ALL_GATE_KINDS["XOR2"]
        c.add_output(c.add_gate(xor, [a, na]))
        assert evaluate_words(c, Word("M")) == Word("M")
        assert evaluate_all_resolutions(c, Word("M")) == Word("1")


class TestCompileCache:
    def test_cache_hit(self):
        c = build_two_sort(2)
        assert compile_circuit(c) is compile_circuit(c)

    def test_cache_invalidated_on_mutation(self):
        c = Circuit("grow")
        a, b = c.add_input("a"), c.add_input("b")
        c.add_output(c.add_gate(AND2, [a, b]))
        first = compile_circuit(c)
        assert first.evaluate_batch([[ONE, ONE]]) == [Word("1")]
        c.add_output(c.add_gate(OR2, [a, b]))
        second = compile_circuit(c)
        assert second is not first
        assert second.evaluate_batch([[ONE, ZERO]]) == [Word("01")]

    def test_independent_circuits_not_shared(self):
        assert compile_circuit(build_two_sort(2)) is not compile_circuit(
            build_two_sort(2)
        )


class TestCompileErrors:
    def test_structural_errors_surface(self):
        c = Circuit("cyclic")
        c.add_gate(INV, ["b"], output="a")
        c.add_gate(INV, ["a"], output="b")
        with pytest.raises(CircuitError, match="cycle"):
            compile_circuit(c)

    def test_input_count_checked(self):
        program = compile_circuit(build_two_sort(2))
        with pytest.raises(ValueError, match="expected 4 input bits"):
            program.evaluate_batch([[ZERO, ONE]])

    def test_batch_width_one_equals_evaluate_words(self):
        circuit = build_two_sort(2)
        g, h = Word("0M"), Word("01")
        program = compile_circuit(circuit)
        assert program.evaluate_batch([tuple(g) + tuple(h)]) == [
            evaluate_words(circuit, g, h)
        ]
