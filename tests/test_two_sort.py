"""Tests for the complete 2-sort(B) circuit (paper Fig. 5, Thm 5.1)."""

import math

import pytest

from repro.circuits.analysis import logic_depth, total_area
from repro.circuits.evaluate import evaluate_words
from repro.core.two_sort import build_two_sort, predicted_gate_count, split_outputs
from repro.graycode.ops import two_sort_closure
from repro.graycode.valid import all_valid_strings
from repro.verify.exhaustive import verify_containment, verify_two_sort_circuit


class TestGateCounts:
    """The '# Gates' column of Table 7, exactly."""

    @pytest.mark.parametrize(
        "width, published",
        [(2, 13), (4, 55), (8, 169), (16, 407)],
    )
    def test_published_gate_counts(self, width, published):
        assert build_two_sort(width).gate_count() == published
        assert predicted_gate_count(width) == published

    @pytest.mark.parametrize("width", [1, 2, 3, 5, 6, 7, 9, 12, 24, 32])
    def test_prediction_matches_construction(self, width):
        assert build_two_sort(width).gate_count() == predicted_gate_count(width)

    def test_width_one_degenerates(self):
        c = build_two_sort(1)
        assert c.gate_count() == 2  # one OR + one AND

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            build_two_sort(0)
        with pytest.raises(ValueError):
            predicted_gate_count(0)


class TestAsymptotics:
    """Theorem 5.1: O(B) gates, O(log B) depth."""

    def test_linear_size(self):
        # gates(B)/B is bounded: asymptotically 10·(2 ops/bit) for the
        # PPC + 10 for the out cell + 1 inverter = 31 gates per bit.
        for width in (8, 16, 32, 64, 128, 512):
            assert predicted_gate_count(width) <= 31 * width

    def test_logarithmic_depth(self):
        for width in (4, 8, 16, 32, 64, 128):
            depth = logic_depth(build_two_sort(width))
            # ⋄̂/out cells are depth 3; PPC depth <= 2 log2; +1 inverter.
            assert depth <= 3 * (2 * math.ceil(math.log2(width)) - 1) + 4

    def test_depth_grows_slowly(self):
        # quadrupling B adds at most two PPC levels of 2 cells each
        # (2 x 2 x 3 gate levels).
        d16 = logic_depth(build_two_sort(16))
        d64 = logic_depth(build_two_sort(64))
        assert d64 - d16 <= 12

    def test_mc_safe_cells_only(self):
        for width in (2, 5, 16):
            assert build_two_sort(width).is_mc_safe()


class TestInterface:
    def test_port_ordering(self):
        c = build_two_sort(3)
        assert list(c.inputs) == ["g1", "g2", "g3", "h1", "h2", "h3"]
        assert len(c.outputs) == 6

    def test_split_outputs(self):
        mx, mn = split_outputs(list(range(8)), 4)
        assert mx == [0, 1, 2, 3] and mn == [4, 5, 6, 7]
        with pytest.raises(ValueError):
            split_outputs([1, 2, 3], 2)


class TestCorrectness:
    """Definition 2.8 on the full valid-string domain."""

    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_exhaustive_equals_closure(self, width):
        result = verify_two_sort_circuit(build_two_sort(width), width)
        assert result.ok, result.failures[:3]
        assert result.checked == ((1 << (width + 1)) - 1) ** 2

    @pytest.mark.parametrize("width", [5])
    def test_exhaustive_width5(self, width):
        result = verify_two_sort_circuit(build_two_sort(width), width)
        assert result.ok, result.failures[:3]

    def test_containment_width6(self):
        """Outputs are valid strings for all 16k valid pairs at B=6."""
        result = verify_containment(build_two_sort(6), 6)
        assert result.ok, result.failures[:3]

    def test_paper_examples(self):
        c = build_two_sort(4)
        from repro.ternary.word import Word

        out = evaluate_words(c, Word("1001"), Word("1000"))
        assert (str(out[:4]), str(out[4:])) == ("1000", "1001")
        out = evaluate_words(c, Word("0M10"), Word("0010"))
        assert (str(out[:4]), str(out[4:])) == ("0M10", "0010")
        out = evaluate_words(c, Word("0M10"), Word("0110"))
        assert (str(out[:4]), str(out[4:])) == ("0110", "0M10")


class TestSchedules:
    """Alternative prefix schedules are functionally identical."""

    @pytest.mark.parametrize("schedule", ["serial", "sklansky"])
    def test_schedule_equivalence(self, schedule):
        width = 4
        alt = build_two_sort(width, schedule=schedule)
        strings = all_valid_strings(width)
        lf = build_two_sort(width)
        for g in strings:
            for h in strings:
                assert evaluate_words(alt, g, h) == evaluate_words(lf, g, h)

    def test_unknown_schedule(self):
        with pytest.raises(KeyError):
            build_two_sort(4, schedule="nope")

    def test_serial_is_deeper_but_not_larger(self):
        lf = build_two_sort(16)
        serial = build_two_sort(16, schedule="serial")
        assert logic_depth(serial) > logic_depth(lf)
        assert serial.gate_count() <= lf.gate_count()

    def test_sklansky_not_deeper_but_larger(self):
        lf = build_two_sort(16)
        sk = build_two_sort(16, schedule="sklansky")
        assert logic_depth(sk) <= logic_depth(lf)
        assert sk.gate_count() > lf.gate_count()
