"""Tests for the unified verification store (repro.store).

Covers the ResultStore backend contract (memory / journal / sqlite /
stacked), per-region hashing and cone extraction, region-granularity
incremental re-verification, cross-process no-double-execute against a
shared SQLite store, the audit trail, and the CLI surface
(``verify --store``, ``store log``).
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.__main__ import main
from repro.circuits.gates import INV
from repro.core.two_sort import build_two_sort
from repro.store import (
    JournalStore,
    MemoryStore,
    SqliteStore,
    StackedStore,
    open_store,
    result_digest,
)
from repro.store.base import RunRecord, wait_for
from repro.verify import parallel
from repro.verify.exhaustive import (
    SweepEpoch,
    VerificationResult,
    pair_shards,
    verify_two_sort_circuit,
)
from repro.verify.parallel import verify_two_sort_sharded


def pairs(width):
    return ((1 << (width + 1)) - 1) ** 2


def sample_result():
    r = VerificationResult(checked=123)
    r.record("(gg, hh): got x/y, want a/b")
    return r


def sample_run(digest="d" * 16):
    return RunRecord(
        circuit="c",
        circuit_hash="h" * 16,
        backend="bigint",
        executor="serial",
        width=5,
        shards=8,
        checked=3969,
        failure_count=0,
        ok=True,
        result_digest=digest,
        mode="regions",
        host="testhost",
        pid=1234,
        timestamp=1700000000.0,
    )


def make_edit(circuit, output_index):
    """A double-INV splice on one output: changes exactly one region
    digest while keeping the circuit functionally identical."""
    edited = circuit.copy()
    root = edited.outputs[output_index]
    n1 = edited.add_gate(INV, [root], output="__edit_inv0")
    n2 = edited.add_gate(INV, [n1], output="__edit_inv1")
    edited.replace_output(output_index, n2)
    return edited


def make_broken(circuit, output_index):
    """A single INV splice: a real bug confined to one output cone."""
    bad = circuit.copy()
    n = bad.add_gate(INV, [bad.outputs[output_index]], output="__bad_inv")
    bad.replace_output(output_index, n)
    return bad


# ----------------------------------------------------------------------
# Backend contract
# ----------------------------------------------------------------------
class TestBackendContract:
    @pytest.fixture(params=["memory", "journal", "sqlite"])
    def store(self, request, tmp_path):
        if request.param == "memory":
            yield MemoryStore()
        elif request.param == "journal":
            with JournalStore(str(tmp_path / "s.jsonl"), fsync=False) as s:
                yield s
        else:
            with SqliteStore(str(tmp_path / "s.db")) as s:
                yield s

    def test_result_roundtrip(self, store):
        key = ("c", "h" * 16, "bigint", 5, 0, 8)
        assert store.get(key) is None
        want = sample_result()
        store.put(key, want)
        got = store.get(key)
        assert isinstance(got, VerificationResult)
        assert got.to_json() == want.to_json()

    def test_plain_value_roundtrip(self, store):
        key = ("c", "r" * 16, "bigint", 5, "r", 3, 0, 8)
        store.put(key, {"lanes": 504, "mismatches": 0})
        assert store.get(key) == {"lanes": 504, "mismatches": 0}

    def test_replay_semantics(self, store):
        # Durable backends are first-write-wins (replays from another
        # worker must be idempotent); the memory backend is an LRU
        # *cache*, where re-put replaces (pinned by the historical
        # ShardCache tests).  Either way a re-put never errors.
        key = ("c", "h", "bigint", 5, 0, 8)
        store.put(key, {"lanes": 1, "mismatches": 0})
        store.put(key, {"lanes": 2, "mismatches": 9})
        want = 2 if store.backend_name == "memory" else 1
        assert store.get(key)["lanes"] == want

    def test_counters(self, store):
        key = ("k",)
        store.get(key)
        store.put(key, {"lanes": 1, "mismatches": 0})
        store.get(key)
        c = store.counters()
        assert c["hits"] == 1 and c["misses"] == 1 and c["puts"] == 1
        assert c["backend"] == store.backend_name

    def test_scan_prefix(self, store):
        store.put(("a", 1), {"lanes": 1, "mismatches": 0})
        store.put(("a", 2), {"lanes": 2, "mismatches": 0})
        store.put(("b", 1), {"lanes": 3, "mismatches": 0})
        keys = {k for k, _v in store.scan(("a",))}
        assert keys == {("a", 1), ("a", 2)}

    def test_epochs_dedup(self, store):
        epoch = SweepEpoch(
            kind="verify-two-sort", circuit_name="c",
            circuit_hash="h" * 16, width=5, backend=None,
        )
        store.record_epoch(epoch, shards=8, shard_size=504)
        store.record_epoch(epoch, shards=8, shard_size=504)
        assert len(store.epochs()) == 1
        assert store.epochs()[0].fingerprint() == epoch.fingerprint()

    def test_run_records(self, store):
        store.record_run(sample_run("a" * 16))
        store.record_run(sample_run("b" * 16))
        runs = store.runs()
        assert [r.result_digest for r in runs] == ["a" * 16, "b" * 16]
        assert runs[0].mode == "regions" and runs[0].ok
        newest = store.runs(limit=1)
        assert [r.result_digest for r in newest] == ["b" * 16]

    def test_claim_default_granted(self, store):
        # Non-shareable backends always grant; sqlite grants the first.
        assert store.claim(("k",)) is True


class TestPersistence:
    """What survives close + reopen (the durable backends)."""

    @pytest.mark.parametrize("backend", ["journal", "sqlite"])
    def test_reopen_sees_everything(self, backend, tmp_path):
        path = str(tmp_path / ("p.jsonl" if backend == "journal" else "p.db"))
        opener = JournalStore if backend == "journal" else SqliteStore
        with opener(path) as store:
            store.put(("k", 1), sample_result())
            store.put(("k", 2), {"lanes": 7, "mismatches": 0})
            store.record_run(sample_run())
        with opener(path) as store:
            assert store.get(("k", 1)).to_json() == sample_result().to_json()
            assert store.get(("k", 2)) == {"lanes": 7, "mismatches": 0}
            assert len(store.runs()) == 1
            assert store.runs()[0].host == "testhost"

    def test_sqlite_claim_ttl(self, tmp_path):
        path = str(tmp_path / "c.db")
        with SqliteStore(path) as a, SqliteStore(path) as b:
            assert a.claim(("k",), ttl=60.0) is True
            # A live claim blocks other handles...
            assert b.claim(("k",), ttl=60.0) is False
            # ...a put by the claimant releases it...
            a.put(("k",), {"lanes": 1, "mismatches": 0})
            # ...and the value is visible, so waiters take the result.
            assert b.get(("k",)) == {"lanes": 1, "mismatches": 0}
            # An expired claim is reclaimable (ttl in the past).
            assert a.claim(("x",), ttl=0.0) is True
            assert b.claim(("x",), ttl=0.0) is True

    def test_wait_for_executes_once_per_key(self, tmp_path):
        with SqliteStore(str(tmp_path / "w.db")) as store:
            calls = []

            def execute():
                calls.append(1)
                return {"lanes": 5, "mismatches": 0}

            v1 = wait_for(store, ("k",), execute)
            v2 = wait_for(store, ("k",), execute)
            assert v1 == v2 == {"lanes": 5, "mismatches": 0}
            assert len(calls) == 1


class TestStacked:
    def test_backfill_and_write_through(self, tmp_path):
        front = MemoryStore()
        back = MemoryStore()
        stack = StackedStore(front, back)
        back.put(("k",), {"lanes": 1, "mismatches": 0})
        assert stack.get(("k",)) == {"lanes": 1, "mismatches": 0}
        # The hit was backfilled into the front layer.
        assert front.get(("k",)) == {"lanes": 1, "mismatches": 0}
        stack.put(("j",), {"lanes": 2, "mismatches": 0})
        assert front.get(("j",)) is not None and back.get(("j",)) is not None

    def test_share_spec_comes_from_shareable_layer(self, tmp_path):
        db = SqliteStore(str(tmp_path / "s.db"))
        stack = StackedStore(db, MemoryStore())
        assert stack.shareable
        assert stack.share_spec() == db.spec
        assert StackedStore(MemoryStore()).share_spec() is None
        db.close()

    def test_close_leaves_layers_open(self, tmp_path):
        db = SqliteStore(str(tmp_path / "s.db"))
        StackedStore(db, MemoryStore()).close()
        db.put(("k",), {"lanes": 1, "mismatches": 0})  # still usable
        db.close()


class TestOpenStore:
    def test_spec_forms(self, tmp_path):
        assert isinstance(open_store("memory"), MemoryStore)
        assert open_store("memory:4").maxsize == 4
        j = open_store(f"journal:{tmp_path}/a.log")
        assert isinstance(j, JournalStore)
        j.close()
        with open_store(f"sqlite:{tmp_path}/a.db") as s:
            assert isinstance(s, SqliteStore)
        # Bare paths pick the backend by suffix.
        with open_store(str(tmp_path / "b.jsonl")) as s:
            assert isinstance(s, JournalStore)
        with open_store(str(tmp_path / "b.db")) as s:
            assert isinstance(s, SqliteStore)

    def test_bad_spec(self):
        with pytest.raises(ValueError):
            open_store("")


# ----------------------------------------------------------------------
# Per-region hashing and cone extraction
# ----------------------------------------------------------------------
class TestRegionHashing:
    def test_rebuilt_circuit_hashes_identically(self):
        a = build_two_sort(5)
        b = build_two_sort(5)
        assert a.region_hashes() == b.region_hashes()
        assert a.copy().region_hashes() == a.region_hashes()

    def test_regions_are_distinct(self):
        hashes = build_two_sort(5).region_hashes()
        assert len(hashes) == 10 and len(set(hashes)) == 10

    def test_edit_invalidates_only_its_cone(self):
        circuit = build_two_sort(5)
        before = circuit.region_hashes()
        edited = make_edit(circuit, 3)
        after = edited.region_hashes()
        changed = [i for i in range(10) if after[i] != before[i]]
        assert changed == [3]
        # The whole-circuit hash does change (it is a different netlist).
        assert edited.content_hash() != circuit.content_hash()

    def test_extract_cone_preserves_inputs_and_output(self):
        circuit = build_two_sort(4)
        cone = circuit.extract_cone(2)
        assert cone.inputs == circuit.inputs
        assert cone.outputs == (circuit.outputs[2],)
        assert len(cone.gates) < len(circuit.gates)

    def test_edited_circuit_still_verifies(self):
        edited = make_edit(build_two_sort(4), 1)
        assert verify_two_sort_circuit(edited, 4).ok


# ----------------------------------------------------------------------
# Region-granularity sweeps
# ----------------------------------------------------------------------
@pytest.fixture
def count_executions(monkeypatch):
    """Count actual region-shard computations through the module seam."""
    executed = []
    real = parallel._execute_region_shard
    monkeypatch.setattr(
        parallel,
        "_execute_region_shard",
        lambda task: (executed.append(task), real(task))[1],
    )
    return executed


class TestRegionSweep:
    def test_clean_sweep_matches_plain(self, tmp_path, count_executions):
        circuit = build_two_sort(5)
        plain = verify_two_sort_sharded(circuit, 5, jobs=1, shard_size=63 * 8)
        with SqliteStore(str(tmp_path / "s.db")) as store:
            cold = verify_two_sort_sharded(
                circuit, 5, jobs=1, shard_size=63 * 8, store=store
            )
            n_cold = len(count_executions)
            assert cold.to_json() == plain.to_json()
            assert n_cold == 8 * 10  # every (range, cone) computed once
            count_executions.clear()
            warm = verify_two_sort_sharded(
                circuit, 5, jobs=1, shard_size=63 * 8, store=store
            )
            assert warm.to_json() == plain.to_json()
            assert len(count_executions) == 0  # nothing re-executed

    def test_failing_sweep_report_is_byte_identical(self, tmp_path):
        bad = make_broken(build_two_sort(5), 2)
        want = verify_two_sort_circuit(bad, 5)
        assert not want.ok
        with SqliteStore(str(tmp_path / "s.db")) as store:
            got = verify_two_sort_sharded(
                bad, 5, jobs=1, shard_size=63 * 8, store=store
            )
            assert got.to_json() == want.to_json()
            # Warm rerun: same bytes again, from the store.
            again = verify_two_sort_sharded(
                bad, 5, jobs=1, shard_size=63 * 8, store=store
            )
            assert again.to_json() == want.to_json()

    def test_audit_trail_records_each_sweep(self, tmp_path):
        circuit = build_two_sort(5)
        with SqliteStore(str(tmp_path / "s.db")) as store:
            verify_two_sort_sharded(circuit, 5, jobs=1, store=store)
            verify_two_sort_sharded(circuit, 5, jobs=1, store=store)
            runs = store.runs()
            assert len(runs) == 2
            assert runs[0].result_digest == runs[1].result_digest
            assert all(r.mode == "regions" and r.ok for r in runs)
            assert runs[0].circuit_hash == circuit.content_hash()

    def test_cache_granularity_records_audit_too(self, tmp_path):
        store = MemoryStore()
        result = verify_two_sort_sharded(
            build_two_sort(4), 4, jobs=1, cache=store
        )
        runs = store.runs()
        assert len(runs) == 1 and runs[0].mode == "shards"
        assert runs[0].result_digest == result_digest(result)

    def test_incremental_b8_reexecutes_only_the_cone(
        self, tmp_path, count_executions
    ):
        """The acceptance bar: a one-gate edit at B=8 against a warm
        store re-executes only the edited cone's shards -- at least 5x
        fewer than the cold sweep -- with a byte-identical report."""
        width = 8
        circuit = build_two_sort(width)
        plain = verify_two_sort_sharded(circuit, width, jobs=1)
        n_regions = 2 * width
        with SqliteStore(str(tmp_path / "b8.db")) as store:
            cold = verify_two_sort_sharded(
                circuit, width, jobs=1, store=store
            )
            n_cold = len(count_executions)
            shards = len(pair_shards(
                width, parallel._default_pair_shard_size(width, 1)
            ))
            assert n_cold == shards * n_regions
            assert cold.to_json() == plain.to_json()

            count_executions.clear()
            edited = make_edit(circuit, 3)
            incremental = verify_two_sort_sharded(
                edited, width, jobs=1, store=store
            )
            n_inc = len(count_executions)
            assert incremental.to_json() == plain.to_json()
            assert n_inc == shards  # exactly the edited cone's shards
            assert n_cold >= 5 * n_inc
            assert {task[1] for task in count_executions} == {3}

    def test_region_sweep_process_pool(self, tmp_path):
        """jobs>1: the store spec rides initargs; workers consult it."""
        circuit = build_two_sort(5)
        plain = verify_two_sort_sharded(circuit, 5, jobs=1, shard_size=63 * 4)
        with SqliteStore(str(tmp_path / "p.db")) as store:
            r1 = verify_two_sort_sharded(
                circuit, 5, jobs=2, shard_size=63 * 4, store=store
            )
            r2 = verify_two_sort_sharded(
                circuit, 5, jobs=2, shard_size=63 * 4, store=store
            )
        assert r1.to_json() == r2.to_json() == plain.to_json()

    def test_journal_backend_region_sweep(self, tmp_path, count_executions):
        circuit = build_two_sort(4)
        plain = verify_two_sort_sharded(circuit, 4, jobs=1)
        path = str(tmp_path / "j.jsonl")
        with JournalStore(path, fsync=False) as store:
            r1 = verify_two_sort_sharded(circuit, 4, jobs=1, store=store)
        count_executions.clear()
        with JournalStore(path, fsync=False) as store:  # reopen = resume
            r2 = verify_two_sort_sharded(circuit, 4, jobs=1, store=store)
        assert r1.to_json() == r2.to_json() == plain.to_json()
        assert len(count_executions) == 0


# ----------------------------------------------------------------------
# Two processes, one SQLite store: no double execution, no corruption
# ----------------------------------------------------------------------
_SWEEP_SCRIPT = textwrap.dedent(
    """
    import json, sys
    from repro.core.two_sort import build_two_sort
    from repro.store import SqliteStore
    from repro.verify import parallel
    from repro.verify.parallel import verify_two_sort_sharded

    db, counter_path, barrier_path = sys.argv[1], sys.argv[2], sys.argv[3]

    real = parallel._execute_region_shard
    def counting(task):
        with open(counter_path, "a") as fh:
            fh.write("x\\n")
        return real(task)
    parallel._execute_region_shard = counting

    # Crude start barrier so both processes sweep concurrently.
    import os, time
    with open(barrier_path + "." + str(os.getpid()), "w"):
        pass
    deadline = time.time() + 10
    while time.time() < deadline:
        ready = [f for f in os.listdir(os.path.dirname(barrier_path))
                 if os.path.basename(barrier_path) in f]
        if len(ready) >= 2:
            break
        time.sleep(0.01)

    circuit = build_two_sort(5)
    with SqliteStore(db) as store:
        result = verify_two_sort_sharded(
            circuit, 5, jobs=1, shard_size=63 * 8, store=store
        )
    print(json.dumps({"report": result.to_json()}))
    """
)


class TestTwoProcessSqlite:
    def test_concurrent_sweeps_never_double_execute(self, tmp_path):
        db = str(tmp_path / "shared.db")
        counter = str(tmp_path / "executions.log")
        barrier = str(tmp_path / "barrier")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _SWEEP_SCRIPT, db, counter, barrier],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
                text=True,
            )
            for _ in range(2)
        ]
        outs = []
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            outs.append(json.loads(out.strip().splitlines()[-1]))
        # Identical merged reports from both processes...
        assert outs[0]["report"] == outs[1]["report"]
        plain = verify_two_sort_sharded(
            build_two_sort(5), 5, jobs=1, shard_size=63 * 8
        )
        assert outs[0]["report"] == plain.to_json()
        # ...and every (range, cone) task was executed exactly once
        # *in total* across both processes: 8 ranges x 10 cones.
        with open(counter) as fh:
            executions = sum(1 for _ in fh)
        assert executions == 8 * 10
        # The shared store is intact and fully populated.
        with SqliteStore(db) as store:
            assert len(store) == 80
            assert len(store.runs()) == 2


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------
class TestServiceStore:
    def test_request_store_field_roundtrip(self):
        from repro.service.jobs import VerifyRequest, request_from_dict

        req = VerifyRequest(width=4, store="sqlite:/tmp/x.db")
        data = req.to_dict()
        assert data["store"] == "sqlite:/tmp/x.db"
        assert request_from_dict(data) == req

    def test_store_and_checkpoint_are_exclusive(self):
        from repro.service.jobs import VerifyRequest

        with pytest.raises(ValueError, match="mutually exclusive"):
            VerifyRequest(
                width=4, store="s.db", checkpoint="c.jsonl"
            ).validate()

    def test_request_run_with_store_spec(self, tmp_path):
        from repro.service.jobs import VerifyRequest

        db = str(tmp_path / "svc.db")
        req = VerifyRequest(width=4, store=db)
        first = req.run()
        second = req.run()
        assert first.to_json() == second.to_json()
        with SqliteStore(db) as store:
            assert len(store.runs()) == 2

    def test_manager_stats_include_store_block(self):
        from repro.service.jobs import JobManager

        # Constructing a manager needs no running loop for stats().
        import asyncio

        async def go():
            manager = JobManager(jobs=1)
            try:
                stats = manager.stats()
                assert stats["store"]["backend"] == "memory"
                assert {"hits", "misses", "puts", "runs"} <= set(
                    stats["store"]
                )
                assert "cache" in stats  # the historical block survives
            finally:
                await manager.aclose()

        asyncio.run(go())


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliStore:
    def test_verify_store_warm_run_executes_nothing(
        self, tmp_path, capsys, count_executions
    ):
        db = str(tmp_path / "cli.db")
        assert main(["verify", "--width", "5", "--store", db]) == 0
        first = capsys.readouterr()
        assert len(count_executions) > 0
        count_executions.clear()
        assert main(["verify", "--width", "5", "--store", db]) == 0
        second = capsys.readouterr()
        assert len(count_executions) == 0
        # stdout is byte-identical across cold and warm runs; the store
        # summary goes to stderr.
        assert first.out == second.out
        assert "miss(es)" in first.err and "hit(s)" in second.err

    def test_verify_store_json_block(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        assert main(["verify", "--width", "4", "--store", db, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["store"]["backend"] == "sqlite"
        assert cold["store"]["misses"] > 0 and cold["store"]["puts"] > 0
        assert main(["verify", "--width", "4", "--store", db, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["store"]["misses"] == 0 and warm["store"]["puts"] == 0
        assert warm["store"]["hits"] > 0
        assert warm["checked"] == cold["checked"] == pairs(4)

    def test_plain_json_has_no_store_block(self, capsys):
        assert main(["verify", "--width", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "store" not in payload

    def test_store_log(self, tmp_path, capsys):
        db = str(tmp_path / "log.db")
        assert main(["verify", "--width", "4", "--store", db]) == 0
        assert main(["verify", "--width", "4", "--store", db]) == 0
        capsys.readouterr()
        assert main(["store", "log", "--store", db]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2
        assert all("mode=regions" in line and "OK" in line for line in out)
        assert main(["store", "log", "--store", db, "--json",
                     "--limit", "1"]) == 0
        records = [json.loads(line) for line in
                   capsys.readouterr().out.strip().splitlines()]
        assert len(records) == 1
        assert records[0]["width"] == 4 and records[0]["ok"] is True

    def test_store_log_digests_match_across_runs(self, tmp_path, capsys):
        db = str(tmp_path / "dig.db")
        assert main(["verify", "--width", "4", "--store", db]) == 0
        assert main(["verify", "--width", "4", "--store", db]) == 0
        capsys.readouterr()
        assert main(["store", "log", "--store", db, "--json"]) == 0
        records = [json.loads(line) for line in
                   capsys.readouterr().out.strip().splitlines()]
        digests = {r["result_digest"] for r in records}
        assert len(records) == 2 and len(digests) == 1

    def test_store_excludes_checkpoint(self, tmp_path, capsys):
        assert main([
            "verify", "--width", "4",
            "--store", str(tmp_path / "a.db"),
            "--checkpoint", str(tmp_path / "b.jsonl"),
        ]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_journal_store_via_suffix(self, tmp_path, capsys,
                                      count_executions):
        path = str(tmp_path / "j.jsonl")
        assert main(["verify", "--width", "4", "--store", path]) == 0
        count_executions.clear()
        assert main(["verify", "--width", "4", "--store", path]) == 0
        assert len(count_executions) == 0
        with JournalStore(path, fsync=False) as store:
            assert len(store.runs()) == 2
