"""Tests for repro.graycode.ops -- max_rg_M / min_rg_M semantics."""

import pytest

from repro.graycode.ops import (
    compare_valid,
    max_rg_closure,
    max_rg_order,
    min_rg_closure,
    min_rg_order,
    two_sort_closure,
    two_sort_order,
)
from repro.graycode.valid import InvalidStringError, all_valid_strings, rank
from repro.ternary.word import Word


class TestPaperExamples:
    """The three worked examples below Definition 2.8."""

    def test_stable_max(self):
        assert max_rg_closure(Word("1001"), Word("1000")) == Word("1000")

    def test_superposed_vs_lower_neighbour(self):
        assert max_rg_closure(Word("0M10"), Word("0010")) == Word("0M10")

    def test_superposed_vs_upper_neighbour(self):
        assert max_rg_closure(Word("0M10"), Word("0110")) == Word("0110")


class TestClosureEqualsOrder:
    """The closure operators realise the Table 2 total order (as shown in
    [2]); checked exhaustively at widths 1-4."""

    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_exhaustive_agreement(self, width):
        strings = all_valid_strings(width)
        for g in strings:
            for h in strings:
                assert max_rg_closure(g, h) == max_rg_order(g, h), (g, h)
                assert min_rg_closure(g, h) == min_rg_order(g, h), (g, h)

    def test_outputs_are_valid(self):
        strings = all_valid_strings(3)
        for g in strings:
            for h in strings:
                mx, mn = two_sort_closure(g, h)
                assert rank(mx) >= rank(mn)


class TestAlgebraicProperties:
    @pytest.mark.parametrize("width", [2, 3])
    def test_commutativity(self, width):
        strings = all_valid_strings(width)
        for g in strings:
            for h in strings:
                assert two_sort_closure(g, h) == two_sort_closure(h, g)

    def test_idempotence(self):
        for w in all_valid_strings(3):
            assert two_sort_closure(w, w) == (w, w)

    def test_max_min_partition_ranks(self):
        """{rank(max), rank(min)} == {rank(g), rank(h)} as multisets."""
        strings = all_valid_strings(3)
        for g in strings:
            for h in strings:
                mx, mn = two_sort_closure(g, h)
                assert sorted((rank(mx), rank(mn))) == sorted((rank(g), rank(h)))


class TestOrderHelpers:
    def test_compare_valid(self):
        assert compare_valid(Word("0M"), Word("01")) == -1
        assert compare_valid(Word("01"), Word("0M")) == 1
        assert compare_valid(Word("0M"), Word("0M")) == 0

    def test_two_sort_order_result(self):
        mx, mn = two_sort_order(Word("00"), Word("1M"))
        assert (mx, mn) == (Word("1M"), Word("00"))

    def test_order_ops_reject_invalid(self):
        with pytest.raises(InvalidStringError):
            max_rg_order(Word("MM"), Word("00"))

    def test_closure_width_mismatch(self):
        with pytest.raises(ValueError):
            two_sort_closure(Word("0"), Word("01"))
