"""Tests for sorting-network topologies and structure."""

import pytest

from repro.networks.comparator import Comparator, SortingNetwork, from_comparator_list
from repro.networks.properties import sorts_binary, zero_one_counterexample
from repro.networks.topologies import (
    SORT4,
    SORT7,
    SORT10_DEPTH,
    SORT10_SIZE,
    TABLE8_NETWORKS,
    batcher_odd_even,
    best_known,
    bitonic,
    insertion,
)


class TestComparator:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            Comparator(3, 3)
        with pytest.raises(ValueError):
            Comparator(4, 2)

    def test_touches(self):
        assert Comparator(0, 1).touches(Comparator(1, 2))
        assert not Comparator(0, 1).touches(Comparator(2, 3))

    def test_negative_channel_rejected(self):
        """Regression: Comparator(-1, 2) used to pass validation and
        silently wrap to the last channel in apply()."""
        with pytest.raises(ValueError, match="non-negative"):
            Comparator(-1, 2)
        with pytest.raises(ValueError):
            Comparator(-3, -2)


class TestSortingNetworkStructure:
    def test_layer_disjointness_enforced(self):
        with pytest.raises(ValueError, match="overlapping"):
            SortingNetwork(3, [[(0, 1), (1, 2)]])

    def test_channel_bounds_enforced(self):
        with pytest.raises(ValueError, match="exceeds"):
            SortingNetwork(2, [[(0, 2)]])

    def test_negative_channel_rejected_in_network(self):
        """Regression: a (-1, k) comparator used to build fine and then
        read/write the wrong channel during simulation."""
        with pytest.raises(ValueError):
            SortingNetwork(4, [[(-1, 2)]])
        with pytest.raises(ValueError):
            from_comparator_list(4, [(0, 1), (-1, 3)])

    def test_size_depth(self):
        assert SORT4.size == 5 and SORT4.depth == 3

    def test_apply_width_check(self):
        with pytest.raises(ValueError):
            SORT4.apply([1, 2, 3])

    def test_apply_with_custom_two_sort(self):
        # reverse sorting by swapping the comparator contract
        out = SORT4.apply([3, 1, 2, 0], two_sort=lambda a, b: (min(a, b), max(a, b)))
        assert out == [3, 2, 1, 0]

    def test_from_comparator_list_asap_layering(self):
        net = from_comparator_list(4, [(0, 1), (2, 3), (0, 2), (1, 3), (1, 2)])
        assert net.depth == 3
        assert net.size == 5
        assert sorts_binary(net)


class TestPaperNetworks:
    """The four Table 8 topologies: exact size/depth, and they sort."""

    @pytest.mark.parametrize(
        "net, size, depth",
        [
            (SORT4, 5, 3),
            (SORT7, 16, 6),
            (SORT10_SIZE, 29, 8),
            (SORT10_DEPTH, 31, 7),
        ],
    )
    def test_size_depth_and_sorting(self, net, size, depth):
        assert net.size == size
        assert net.depth == depth
        assert zero_one_counterexample(net) is None

    def test_registry(self):
        assert set(TABLE8_NETWORKS) == {"4-sort", "7-sort", "10-sort#", "10-sortd"}

    def test_optimality_relation(self):
        """10-sortd trades comparators for depth vs 10-sort#."""
        assert SORT10_DEPTH.depth < SORT10_SIZE.depth
        assert SORT10_DEPTH.size > SORT10_SIZE.size


class TestGenericConstructions:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 6, 8, 10, 12])
    def test_batcher_sorts(self, n):
        assert sorts_binary(batcher_odd_even(n))

    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_bitonic_sorts(self, n):
        assert sorts_binary(bitonic(n))

    def test_bitonic_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            bitonic(6)

    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_insertion_sorts(self, n):
        assert sorts_binary(insertion(n))

    def test_insertion_size(self):
        assert insertion(6).size == 15  # n(n-1)/2

    def test_batcher_beats_insertion(self):
        assert batcher_odd_even(10).size < insertion(10).size

    def test_best_known_prefers_fixed(self):
        assert best_known(4) is SORT4
        assert best_known(10) is SORT10_SIZE
        assert best_known(6).name.startswith("batcher")

    def test_constructions_reject_zero(self):
        for fn in (batcher_odd_even, insertion):
            with pytest.raises(ValueError):
                fn(0)
