"""Tests for three-valued simulation (repro.circuits.evaluate)."""

import pytest

from repro.circuits.builder import and2, inv, mux_mc, or2, or_tree, and_tree
from repro.circuits.evaluate import (
    evaluate,
    evaluate_all_resolutions,
    evaluate_outputs,
    evaluate_words,
    weaker_than_closure,
)
from repro.circuits.gates import AND2, INV, OR2, XOR2
from repro.circuits.netlist import Circuit
from repro.ternary.trit import META, ONE, ZERO
from repro.ternary.word import Word


def _and_circuit():
    c = Circuit("and")
    a, b = c.add_input("a"), c.add_input("b")
    c.add_output(c.add_gate(AND2, [a, b]))
    return c, a, b


class TestEvaluate:
    def test_basic(self):
        c, a, b = _and_circuit()
        values = evaluate(c, {a: ONE, b: META})
        assert values[c.outputs[0]] is META

    def test_missing_input_rejected(self):
        c, a, b = _and_circuit()
        with pytest.raises(ValueError, match="missing"):
            evaluate(c, {a: ONE})

    def test_extra_net_rejected(self):
        c, a, b = _and_circuit()
        with pytest.raises(ValueError, match="non-input"):
            evaluate(c, {a: ONE, b: ONE, "bogus": ZERO})

    def test_outputs_projection(self):
        c, a, b = _and_circuit()
        assert evaluate_outputs(c, {a: ZERO, b: META}) == (ZERO,)


class TestEvaluateWords:
    def test_word_plumbing(self):
        c, a, b = _and_circuit()
        assert evaluate_words(c, Word("1"), Word("M")) == Word("M")
        assert evaluate_words(c, Word("1M")) == Word("M")

    def test_width_mismatch(self):
        c, _, _ = _and_circuit()
        with pytest.raises(ValueError):
            evaluate_words(c, Word("011"))


class TestClosureComparison:
    def test_xor_tree_weaker_than_closure(self):
        """XOR(a, a') with a'=INV(a): Boolean constant 1, but Kleene
        simulation yields M on metastable input -- a classic glitch
        structure the closure would mask."""
        c = Circuit("glitchy")
        a = c.add_input("a")
        na = c.add_gate(INV, [a])
        c.add_output(c.add_gate(XOR2, [a, na]))
        assert evaluate_words(c, Word("M")) == Word("M")
        assert evaluate_all_resolutions(c, Word("M")) == Word("1")
        assert weaker_than_closure(c, Word("M")) == [0]

    def test_mc_cell_not_weaker(self):
        """The paper's reduced out cell is closure-exact."""
        c = Circuit("outcell0")
        g, h = c.add_input("g"), c.add_input("h")
        c.add_output(or2(c, g, h))
        c.add_output(and2(c, g, h))
        for gw in ("0", "1", "M"):
            for hw in ("0", "1", "M"):
                assert weaker_than_closure(c, Word(gw), Word(hw)) == []


class TestBuilderHelpers:
    def test_tree_reductions(self):
        c = Circuit("trees")
        ins = c.add_inputs(5, base="i")
        c.add_output(and_tree(c, ins))
        c.add_output(or_tree(c, ins))
        out = evaluate_words(c, Word("111M1"))
        assert out[0] is META  # AND with an M and no 0
        assert out[1] is ONE   # OR has a 1

    def test_tree_rejects_empty(self):
        c = Circuit()
        with pytest.raises(ValueError):
            and_tree(c, [])

    def test_mux_mc_selects(self):
        c = Circuit("m")
        s, a, b = c.add_input("s"), c.add_input("a"), c.add_input("b")
        c.add_output(mux_mc(c, s, a, b))
        assert evaluate_outputs(c, {s: ZERO, a: ONE, b: ZERO}) == (ONE,)
        assert evaluate_outputs(c, {s: ONE, a: ONE, b: ZERO}) == (ZERO,)
