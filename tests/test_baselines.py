"""Tests for the DATE 2017 reconstruction and the Bin-comp baseline."""

import pytest

from repro.baselines.bincomp import (
    PUBLISHED_BINCOMP_2SORT,
    build_bincomp_two_sort,
    predicted_bincomp_gate_count,
)
from repro.baselines.date17 import (
    PUBLISHED_DATE17_2SORT,
    build_date17_two_sort,
    predicted_date17_gate_count,
)
from repro.circuits.analysis import logic_depth
from repro.circuits.evaluate import evaluate_words
from repro.core.two_sort import predicted_gate_count
from repro.ternary.resolution import all_stable_words
from repro.ternary.word import Word
from repro.verify.exhaustive import verify_two_sort_circuit


class TestDate17Correctness:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_exhaustive_equals_closure(self, width):
        result = verify_two_sort_circuit(build_date17_two_sort(width), width)
        assert result.ok, result.failures[:3]

    def test_width5_exhaustive(self):
        result = verify_two_sort_circuit(build_date17_two_sort(5), 5)
        assert result.ok, result.failures[:3]

    def test_mc_safe_cells_only(self):
        for width in (2, 7, 16):
            assert build_date17_two_sort(width).is_mc_safe()


class TestDate17Complexity:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 8, 16, 32])
    def test_prediction_matches_construction(self, width):
        assert (
            build_date17_two_sort(width).gate_count()
            == predicted_date17_gate_count(width)
        )

    def test_theta_b_log_b_growth(self):
        """f(2B)/f(B) -> 2·(log(2B)/log B) > 2: superlinear growth."""
        f = predicted_date17_gate_count
        assert f(64) > 2 * f(32)
        assert f(128) > 2 * f(64)

    def test_log_factor_vs_this_paper(self):
        """The paper's claim: [2] is a Θ(log B) factor larger."""
        for width in (16, 64, 256):
            ratio = predicted_date17_gate_count(width) / predicted_gate_count(width)
            assert ratio > 2.0
        # the ratio grows with B (the log factor)
        r16 = predicted_date17_gate_count(16) / predicted_gate_count(16)
        r256 = predicted_date17_gate_count(256) / predicted_gate_count(256)
        assert r256 > r16

    def test_same_ballpark_as_published(self):
        """Reconstruction within 12% of published gate counts for B >= 4.

        (B = 2 deviates more -- 48 vs 34 -- because the original
        presumably hand-optimised the two-bit base case, which our
        uniform recursion does not; see DESIGN.md "Substitutions".)
        """
        for width, (gates, _, _) in PUBLISHED_DATE17_2SORT.items():
            if width < 4:
                continue
            mine = predicted_date17_gate_count(width)
            assert abs(mine - gates) / gates < 0.12, (width, mine, gates)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            build_date17_two_sort(0)
        with pytest.raises(ValueError):
            predicted_date17_gate_count(0)


class TestBincompStable:
    """Bin-comp is a correct sorter on stable binary inputs."""

    @pytest.mark.parametrize("style", ["ripple", "tree"])
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_sorts_all_stable_pairs(self, width, style):
        c = build_bincomp_two_sort(width, style=style)
        for a in all_stable_words(width):
            for b in all_stable_words(width):
                out = evaluate_words(c, a, b)
                hi, lo = out[:width], out[width:]
                want_hi, want_lo = (a, b) if a.to_int() >= b.to_int() else (b, a)
                assert (hi, lo) == (want_hi, want_lo), (a, b, style)

    def test_auto_style_switches_at_8(self):
        assert "ripple" in build_bincomp_two_sort(8).name
        assert "tree" in build_bincomp_two_sort(16).name

    def test_tree_shallower_than_ripple_at_16(self):
        ripple = build_bincomp_two_sort(16, style="ripple")
        tree = build_bincomp_two_sort(16, style="tree")
        assert logic_depth(tree) < logic_depth(ripple)

    @pytest.mark.parametrize("width", [1, 2, 4, 8, 16])
    def test_prediction_matches_construction(self, width):
        assert (
            build_bincomp_two_sort(width).gate_count()
            == predicted_bincomp_gate_count(width)
        )

    def test_much_smaller_than_mc_designs(self):
        """The paper's Table 7 shape: Bin-comp ≪ MC designs in gates."""
        for width in (4, 8, 16):
            assert (
                predicted_bincomp_gate_count(width)
                < predicted_gate_count(width)
                < predicted_date17_gate_count(width)
            )

    def test_bad_style_rejected(self):
        with pytest.raises(ValueError):
            build_bincomp_two_sort(4, style="banana")
        with pytest.raises(ValueError):
            build_bincomp_two_sort(0)


class TestBincompNotContaining:
    """The reason the paper exists: binary comparators break on M."""

    def test_violates_containment(self):
        from repro.graycode.valid import is_valid

        c = build_bincomp_two_sort(4)
        # metastable bit in a: select signal goes M, poisoning outputs.
        a, b = Word("10M0"), Word("1000")
        out = evaluate_words(c, a, b)
        hi, lo = out[:4], out[4:]
        assert not (is_valid(hi) and is_valid(lo))

    def test_poisons_multiple_outputs(self):
        """One M input bit can infect many output bits (both words)."""
        c = build_bincomp_two_sort(4)
        out = evaluate_words(c, Word("M111"), Word("1000"))
        assert sum(1 for t in out if t.is_metastable) > 2

    def test_uses_non_mc_cells(self):
        assert not build_bincomp_two_sort(4).is_mc_safe()
