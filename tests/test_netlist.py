"""Tests for repro.circuits (wire, gates, netlist structure)."""

import pytest

from repro.circuits.gates import AND2, CONST1, GateKind, INV, MUX2, OR2, XOR2
from repro.circuits.netlist import Circuit, CircuitError
from repro.circuits.wire import NameScope
from repro.ternary.trit import META, ONE, ZERO


class TestNameScope:
    def test_unique_names(self):
        scope = NameScope()
        assert scope.net("a") == "a0"
        assert scope.net("a") == "a1"
        assert scope.net("b") == "b0"

    def test_child_prefixing(self):
        scope = NameScope("top")
        child = scope.child("sub")
        assert child.net("x") == "top/sub0/x0"
        child2 = scope.child("sub")
        assert child2.net("x") == "top/sub1/x0"

    def test_nets_bulk(self):
        scope = NameScope()
        assert scope.nets("n", 3) == ["n0", "n1", "n2"]


class TestGateKinds:
    def test_arity_enforced_on_eval(self):
        with pytest.raises(ValueError):
            AND2(ONE)

    def test_gate_eval(self):
        assert AND2(ONE, META) is META
        assert OR2(ONE, META) is ONE
        assert INV(ZERO) is ONE

    def test_mc_safety_flags(self):
        assert AND2.mc_safe and OR2.mc_safe and INV.mc_safe
        assert not XOR2.mc_safe and not MUX2.mc_safe


class TestCircuitStructure:
    def test_build_and_introspect(self):
        c = Circuit("t")
        a = c.add_input("a")
        b = c.add_input("b")
        out = c.add_gate(AND2, [a, b])
        c.add_output(out)
        assert c.inputs == (a, b)
        assert c.outputs == (out,)
        assert c.gate_count() == 1
        assert c.gate_histogram() == {"AND2": 1}

    def test_duplicate_input_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_input("a")

    def test_multiple_drivers_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_gate(INV, [a], output="n")
        with pytest.raises(CircuitError):
            c.add_gate(INV, [a], output="n")

    def test_const_nets_shared(self):
        c = Circuit()
        assert c.const(ONE) == c.const(ONE)
        assert c.const(ONE) != c.const(ZERO)

    def test_const_meta_rejected(self):
        with pytest.raises(CircuitError):
            Circuit().const(META)

    def test_arity_mismatch_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        with pytest.raises(ValueError):
            c.add_gate(AND2, [a])

    def test_gate_count_excludes_consts(self):
        c = Circuit()
        one = c.const(ONE)
        a = c.add_input("a")
        c.add_output(c.add_gate(AND2, [a, one]))
        assert c.gate_count() == 1

    def test_fanout(self):
        c = Circuit()
        a = c.add_input("a")
        n1 = c.add_gate(INV, [a])
        n2 = c.add_gate(INV, [a])
        c.add_output(n1)
        c.add_output(n2)
        assert c.fanout()[a] == 2
        assert c.fanout()[n1] == 1

    def test_is_mc_safe(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        c.add_output(c.add_gate(AND2, [a, b]))
        assert c.is_mc_safe()
        c.add_output(c.add_gate(XOR2, [a, b]))
        assert not c.is_mc_safe()


class TestTopologicalOrder:
    def test_orders_dependencies(self):
        c = Circuit()
        a = c.add_input("a")
        # add gates in reverse dependency order via explicit nets
        c.add_gate(INV, ["mid"], output="out")
        c.add_gate(INV, [a], output="mid")
        c.add_output("out")
        order = [g.output for g in c.topological_gates()]
        assert order.index("mid") < order.index("out")

    def test_undriven_net_detected(self):
        c = Circuit()
        c.add_gate(INV, ["ghost"], output="out")
        c.add_output("out")
        with pytest.raises(CircuitError, match="undriven"):
            c.topological_gates()

    def test_cycle_detected(self):
        c = Circuit()
        c.add_gate(INV, ["b"], output="a")
        c.add_gate(INV, ["a"], output="b")
        with pytest.raises(CircuitError, match="cycle"):
            c.topological_gates()

    def test_undriven_output_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("nothing")
        with pytest.raises(CircuitError):
            c.topological_gates()


class TestInstantiate:
    def _half_adder(self):
        sub = Circuit("ha")
        a, b = sub.add_input("a"), sub.add_input("b")
        sub.add_output(sub.add_gate(XOR2, [a, b]))
        sub.add_output(sub.add_gate(AND2, [a, b]))
        return sub

    def test_instantiation_copies_gates(self):
        sub = self._half_adder()
        top = Circuit("top")
        x, y = top.add_input("x"), top.add_input("y")
        outs = top.instantiate(sub, [x, y])
        top.add_outputs(outs)
        assert top.gate_count() == 2
        # instantiate twice: independent copies
        outs2 = top.instantiate(sub, [x, y])
        top.add_outputs(outs2)
        assert top.gate_count() == 4

    def test_instantiation_arity_check(self):
        sub = self._half_adder()
        top = Circuit()
        x = top.add_input("x")
        with pytest.raises(CircuitError):
            top.instantiate(sub, [x])

    def test_instantiation_maps_constants(self):
        sub = Circuit("withconst")
        a = sub.add_input("a")
        sub.add_output(sub.add_gate(AND2, [a, sub.const(ONE)]))
        top = Circuit()
        x = top.add_input("x")
        outs = top.instantiate(sub, [x])
        top.add_outputs(outs)
        from repro.circuits.evaluate import evaluate_outputs

        assert evaluate_outputs(top, {x: META}) == (META,)
        assert evaluate_outputs(top, {x: ONE}) == (ONE,)
