"""Tests for the comparison FSM (paper Fig. 2, Lemma 3.2, Table 4)."""

import pytest

from repro.core.fsm import (
    ALL_STATES,
    EQ_EVEN,
    EQ_ODD,
    GREATER,
    INITIAL,
    LESS,
    classify,
    fsm_step,
    output_bits,
    run_fsm,
    two_sort_via_fsm_stable,
)
from repro.graycode.rgc import gray_decode, gray_encode, two_sort_stable
from repro.ternary.trit import ONE, ZERO
from repro.ternary.word import Word


class TestTransitions:
    def test_initial_state(self):
        assert INITIAL == EQ_EVEN

    def test_equal_bits_toggle_parity(self):
        assert fsm_step(EQ_EVEN, ONE, ONE) == EQ_ODD
        assert fsm_step(EQ_ODD, ONE, ONE) == EQ_EVEN
        assert fsm_step(EQ_EVEN, ZERO, ZERO) == EQ_EVEN
        assert fsm_step(EQ_ODD, ZERO, ZERO) == EQ_ODD

    def test_difference_decides_by_parity(self):
        # Parity 0: g_i = 1 means g larger (Lemma 3.2).
        assert fsm_step(EQ_EVEN, ONE, ZERO) == GREATER
        assert fsm_step(EQ_EVEN, ZERO, ONE) == LESS
        # Parity 1 reverses.
        assert fsm_step(EQ_ODD, ONE, ZERO) == LESS
        assert fsm_step(EQ_ODD, ZERO, ONE) == GREATER

    def test_absorbing_states(self):
        for state in (LESS, GREATER):
            for g in (ZERO, ONE):
                for h in (ZERO, ONE):
                    assert fsm_step(state, g, h) == state


class TestClassification:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5])
    def test_classify_agrees_with_decoding(self, width):
        for x in range(1 << width):
            for y in range(1 << width):
                g, h = gray_encode(x, width), gray_encode(y, width)
                state = classify(g, h)
                if x > y:
                    assert state == GREATER
                elif x < y:
                    assert state == LESS
                else:
                    assert state == (EQ_ODD if x % 2 else EQ_EVEN)

    def test_run_fsm_trajectory_length(self):
        g, h = gray_encode(3, 4), gray_encode(12, 4)
        states = run_fsm(g, h)
        assert len(states) == 5
        assert states[0] == INITIAL

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            run_fsm(Word("01"), Word("011"))


class TestOutput:
    def test_output_table4(self):
        g, h = ONE, ZERO
        assert output_bits(EQ_EVEN, g, h) == (ONE, ZERO)   # (max, min)
        assert output_bits(GREATER, g, h) == (g, h)
        assert output_bits(EQ_ODD, g, h) == (ZERO, ONE)    # (min, max)
        assert output_bits(LESS, g, h) == (h, g)

    def test_output_rejects_garbage_state(self):
        with pytest.raises(ValueError):
            output_bits(Word("0"), ONE, ZERO)

    @pytest.mark.parametrize("width", [1, 2, 3, 4, 6])
    def test_fsm_two_sort_equals_decoding_spec(self, width):
        """Section 3 pipeline == decode-compare-swap on all stable pairs."""
        for x in range(1 << width):
            for y in range(1 << width):
                g, h = gray_encode(x, width), gray_encode(y, width)
                assert two_sort_via_fsm_stable(g, h) == two_sort_stable(g, h)

    def test_state_encodings_are_distinct(self):
        assert len(set(map(str, ALL_STATES))) == 4
