"""Tests for composing networks with 2-sort circuits (repro.networks.build)."""

import pytest

from repro.circuits.analysis import logic_depth
from repro.circuits.evaluate import evaluate_words
from repro.core.two_sort import predicted_gate_count
from repro.graycode.rgc import gray_decode, gray_encode
from repro.networks.build import TWO_SORT_BUILDERS, build_sorting_circuit
from repro.networks.topologies import SORT4, SORT7
from repro.ternary.word import Word
from repro.verify.random_valid import ValidStringSource


def _run_network_circuit(circuit, words):
    width = len(words[0])
    out = evaluate_words(circuit, *words)
    return [out[i * width : (i + 1) * width] for i in range(len(words))]


class TestComposition:
    def test_gate_count_factorises(self):
        """Table 8 gate counts are size(network) x gates(2-sort(B))."""
        for width in (2, 4):
            c = build_sorting_circuit(SORT4, width)
            assert c.gate_count() == SORT4.size * predicted_gate_count(width)

    def test_io_shape(self):
        c = build_sorting_circuit(SORT4, 3)
        assert len(c.inputs) == 12
        assert len(c.outputs) == 12

    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError, match="unknown 2-sort"):
            build_sorting_circuit(SORT4, 2, two_sort="quantum")

    def test_registry_contents(self):
        assert set(TWO_SORT_BUILDERS) == {"this-paper", "date17", "bincomp"}


class TestEndToEndSorting:
    def test_sorts_stable_gray_words(self):
        width = 3
        c = build_sorting_circuit(SORT4, width)
        values = [5, 0, 7, 3]
        words = [gray_encode(v, width) for v in values]
        out = _run_network_circuit(c, words)
        assert [gray_decode(w) for w in out] == sorted(values)

    def test_sorts_with_metastable_input(self):
        """A superposed value lands between its neighbours."""
        width = 4
        c = build_sorting_circuit(SORT4, width)
        words = [
            gray_encode(9, width),
            Word("0M10"),  # rg(3) * rg(4)
            gray_encode(2, width),
            gray_encode(12, width),
        ]
        out = _run_network_circuit(c, words)
        assert [str(w) for w in out] == ["0011", "0M10", "1101", "1010"]

    def test_all_designs_agree_on_stable_inputs(self):
        width = 2
        values = [3, 1, 0, 2]
        mc_words = [gray_encode(v, width) for v in values]
        bin_words = [Word.from_int(v, width) for v in values]
        got = {}
        for design in ("this-paper", "date17"):
            c = build_sorting_circuit(SORT4, width, two_sort=design)
            got[design] = [gray_decode(w) for w in _run_network_circuit(c, mc_words)]
        c = build_sorting_circuit(SORT4, width, two_sort="bincomp")
        got["bincomp"] = [
            w.to_int() for w in _run_network_circuit(c, bin_words)
        ]
        assert got["this-paper"] == got["date17"] == got["bincomp"] == sorted(values)

    def test_seven_sort_random_valid_inputs(self):
        """7-channel network on random valid strings: gate-level vs rank order."""
        from repro.graycode.valid import rank

        width = 3
        c = build_sorting_circuit(SORT7, width)
        source = ValidStringSource(width, meta_rate=0.4, seed=42)
        for _ in range(20):
            words = source.sample_vector(7)
            out = _run_network_circuit(c, words)
            assert sorted(rank(w) for w in words) == [rank(w) for w in out]
