"""Tests for repro.graycode.valid -- S^B_rg and the Table 2 order."""

import pytest

from repro.graycode.rgc import gray_encode
from repro.graycode.valid import (
    InvalidStringError,
    all_valid_strings,
    count_valid_strings,
    from_rank,
    is_valid,
    make_valid,
    rank,
    try_rank,
    validate,
    value_interval,
)
from repro.ternary.word import Word


class TestTable2:
    """The 4-bit valid-input table of the paper, verbatim."""

    EXPECTED = [
        "0000", "000M", "0001", "00M1", "0011", "001M", "0010", "0M10",
        "0110", "011M", "0111", "01M1", "0101", "010M", "0100", "M100",
        "1100", "110M", "1101", "11M1", "1111", "111M", "1110", "1M10",
        "1010", "101M", "1011", "10M1", "1001", "100M", "1000",
    ]

    def test_enumeration_matches_table2(self):
        assert [str(w) for w in all_valid_strings(4)] == self.EXPECTED

    def test_count(self):
        assert count_valid_strings(4) == 31
        assert len(all_valid_strings(4)) == 31

    def test_counts_per_width(self):
        for width in (1, 2, 3, 5, 6):
            assert len(all_valid_strings(width)) == (1 << (width + 1)) - 1


class TestMembership:
    def test_all_codewords_are_valid(self):
        for x in range(16):
            assert is_valid(gray_encode(x, 4))

    def test_adjacent_superpositions_are_valid(self):
        for x in range(15):
            assert is_valid(make_valid(x, 4, metastable=True))

    def test_two_ms_invalid(self):
        assert not is_valid(Word("0MM0"))

    def test_non_adjacent_m_invalid(self):
        # 0M01: resolutions 0001 (1) and 0101 (6) -- not adjacent.
        assert not is_valid(Word("0M01"))

    def test_mm_only_string_invalid(self):
        assert not is_valid(Word("MM"))

    def test_single_bit_m_is_valid(self):
        # width 1: M = rg(0) * rg(1) is a valid string.
        assert is_valid(Word("M"))


class TestRankOrder:
    def test_rank_round_trip(self):
        for width in (1, 2, 3, 4):
            for r in range(count_valid_strings(width)):
                assert rank(from_rank(r, width)) == r

    def test_stable_rank_is_twice_value(self):
        assert rank(gray_encode(5, 4)) == 10

    def test_superposed_rank_is_odd(self):
        assert rank(make_valid(5, 4, metastable=True)) == 11

    def test_rank_rejects_invalid(self):
        with pytest.raises(InvalidStringError):
            rank(Word("0MM0"))

    def test_try_rank_returns_none(self):
        assert try_rank(Word("MM")) is None

    def test_from_rank_bounds(self):
        with pytest.raises(ValueError):
            from_rank(-1, 3)
        with pytest.raises(ValueError):
            from_rank(15, 3)

    def test_order_is_table2_order(self):
        """Ascending rank must walk Table 2 top to bottom."""
        words = all_valid_strings(4)
        assert sorted(words, key=rank) == list(words)


class TestValueInterval:
    def test_stable_interval_is_point(self):
        assert value_interval(gray_encode(3, 4)) == (3, 3)

    def test_superposed_interval_spans_two(self):
        assert value_interval(Word("0M10")) == (3, 4)

    def test_paper_example_0M10(self):
        """0M10 = rg(3) * rg(4) (between values 3 and 4)."""
        assert Word("0010") * Word("0110") == Word("0M10")
        assert value_interval(Word("0M10")) == (3, 4)


class TestMakeValidate:
    def test_make_valid_range_check(self):
        with pytest.raises(ValueError):
            make_valid(3, 2, metastable=True)  # rg(4) doesn't exist

    def test_validate_passthrough(self):
        w = Word("011M")
        assert validate(w) is w

    def test_validate_raises(self):
        with pytest.raises(InvalidStringError):
            validate(Word("M0M0"))


class TestObservation24:
    def test_substrings_of_valid_are_valid(self):
        """Observation 2.4: g_{i,j} of a valid string is valid."""
        for w in all_valid_strings(5):
            for i in range(1, 6):
                for j in range(i, 6):
                    assert is_valid(w.substring(i, j)), (w, i, j)
