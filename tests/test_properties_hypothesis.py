"""Property-based tests (hypothesis) on core invariants.

Coverage at widths beyond exhaustive reach: random valid strings up to
32 bits, random ternary words, and algebraic laws of the substrate.
"""

from hypothesis import given, settings, strategies as st

from repro.core.diamond import diamond_m
from repro.core.functional import two_sort_via_fsm
from repro.core.two_sort import build_two_sort, predicted_gate_count
from repro.circuits.evaluate import evaluate_words
from repro.graycode.ops import two_sort_closure
from repro.graycode.rgc import gray_decode, gray_encode
from repro.graycode.valid import from_rank, is_valid, rank, value_interval
from repro.networks.comparator import from_comparator_list
from repro.networks.simulate import ENGINES, sort_words, sort_words_batch
from repro.ppc.prefix import ladner_fischer_prefixes, lf_op_count, serial_prefixes
from repro.ternary.resolution import resolutions, superpose
from repro.ternary.trit import Trit
from repro.ternary.word import Word

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
trits = st.sampled_from([Trit.ZERO, Trit.ONE, Trit.META])


def words(width):
    return st.lists(trits, min_size=width, max_size=width).map(Word)


def valid_strings(width):
    n_ranks = (1 << (width + 1)) - 1
    return st.integers(min_value=0, max_value=n_ranks - 1).map(
        lambda r: from_rank(r, width)
    )


# ----------------------------------------------------------------------
# Ternary substrate laws
# ----------------------------------------------------------------------
@given(words(6))
def test_superpose_resolutions_round_trip(w):
    """∗ res(x) = x (Observation 2.6) at random widths."""
    assert superpose(resolutions(w)) == w


@given(words(5), words(5))
def test_superposition_commutative(a, b):
    assert a * b == b * a


@given(words(5), words(5), words(5))
def test_superposition_associative(a, b, c):
    assert (a * b) * c == a * (b * c)


@given(words(4))
def test_superpose_idempotent(a):
    assert a * a == a


# ----------------------------------------------------------------------
# Gray code laws
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=16), st.data())
def test_gray_round_trip(width, data):
    x = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    assert gray_decode(gray_encode(x, width)) == x


@given(st.integers(min_value=2, max_value=14), st.data())
def test_adjacent_codewords_hamming_one(width, data):
    x = data.draw(st.integers(min_value=0, max_value=(1 << width) - 2))
    g0, g1 = gray_encode(x, width), gray_encode(x + 1, width)
    assert sum(1 for a, b in zip(g0, g1) if a is not b) == 1


@given(valid_strings(8))
def test_valid_string_rank_interval_consistency(w):
    lo, hi = value_interval(w)
    assert rank(w) in (2 * lo, 2 * lo + 1)
    assert hi - lo == w.metastable_count


# ----------------------------------------------------------------------
# 2-sort semantics at large widths
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(valid_strings(16), valid_strings(16))
def test_circuit_matches_spec_width16(g, h):
    """Gate-level 2-sort(16) == closure spec on random valid pairs."""
    circuit = _cached16()
    out = evaluate_words(circuit, g, h)
    assert (out[:16], out[16:]) == two_sort_closure(g, h)


_CIRCUIT16 = None


def _cached16():
    global _CIRCUIT16
    if _CIRCUIT16 is None:
        _CIRCUIT16 = build_two_sort(16)
    return _CIRCUIT16


@settings(max_examples=30, deadline=None)
@given(valid_strings(32), valid_strings(32))
def test_fsm_decomposition_matches_spec_width32(g, h):
    assert two_sort_via_fsm(g, h) == two_sort_closure(g, h)


@settings(max_examples=60, deadline=None)
@given(valid_strings(12), valid_strings(12))
def test_outputs_are_valid_strings(g, h):
    mx, mn = two_sort_via_fsm(g, h)
    assert is_valid(mx) and is_valid(mn)
    assert rank(mx) >= rank(mn)
    assert sorted((rank(mx), rank(mn))) == sorted((rank(g), rank(h)))


# ----------------------------------------------------------------------
# Theorem 4.1 at large widths
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(valid_strings(20), valid_strings(20))
def test_diamond_closure_order_independence(g, h):
    items = [Word([g.bit(i), h.bit(i)]) for i in range(1, 21)]
    assert ladner_fischer_prefixes(items, diamond_m) == serial_prefixes(
        items, diamond_m
    )


# ----------------------------------------------------------------------
# Batched network simulation vs the per-vector reference
# ----------------------------------------------------------------------
def layered_networks(max_channels=5, max_comparators=8):
    """Random valid layered networks via ASAP packing of comparator lists."""

    def build(spec):
        channels, raw = spec
        comps = []
        for a, b in raw:
            lo, hi = sorted((a % channels, b % channels))
            if lo != hi:
                comps.append((lo, hi))
        return from_comparator_list(channels, comps, name="random")

    return st.tuples(
        st.integers(min_value=2, max_value=max_channels),
        st.lists(
            st.tuples(st.integers(0, 31), st.integers(0, 31)),
            max_size=max_comparators,
        ),
    ).map(build)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_batch_agrees_with_per_vector_all_engines(data):
    """sort_words_batch == per-vector sort_words for every registered
    engine on randomized M-laden words and random layered networks,
    including the sharded dispatch path."""
    width = data.draw(st.integers(min_value=1, max_value=3))
    net = data.draw(layered_networks())
    vectors = data.draw(
        st.lists(
            st.lists(
                valid_strings(width),
                min_size=net.channels,
                max_size=net.channels,
            ),
            max_size=5,
        )
    )
    reference = None
    for engine in sorted(ENGINES):
        per_vector = [sort_words(net, v, engine=engine) for v in vectors]
        assert sort_words_batch(net, vectors, engine=engine) == per_vector
        # engines agree with each other on valid inputs
        if reference is None:
            reference = per_vector
        else:
            assert per_vector == reference
    # the sharded path (serial executor: same shard/merge code, no fork
    # cost per hypothesis example)
    sharded = sort_words_batch(
        net, vectors, jobs=3, shard_size=2, executor="serial"
    )
    assert sharded == reference


# ----------------------------------------------------------------------
# PPC accounting
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=300))
def test_lf_op_count_monotone_and_linear(n):
    assert lf_op_count(n) <= 2 * n
    if n > 1:
        assert lf_op_count(n) >= lf_op_count(n - 1)


@given(st.integers(min_value=2, max_value=200))
def test_gate_count_formula_linear_bound(width):
    assert predicted_gate_count(width) <= 31 * width
