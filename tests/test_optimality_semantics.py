"""Deeper semantic checks: the circuits achieve the *behavioural optimum*.

The paper's designs are not just contained (outputs valid) and correct
(equal to the closure spec): the metastable closure is the information-
theoretic best any deterministic circuit can do in the worst-case model.
These tests pin that optimality down from several angles.
"""

import pytest

from repro.circuits.evaluate import weaker_than_closure
from repro.core.two_sort import build_two_sort
from repro.graycode.ops import two_sort_closure
from repro.graycode.rgc import gray_decode
from repro.graycode.valid import all_valid_strings, rank, value_interval
from repro.ternary.resolution import resolutions
from repro.verify.exhaustive import valid_pairs


class TestClosureOptimality:
    """The gate-level 2-sort is never weaker than the closure ideal."""

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_no_unnecessary_metastability(self, width):
        """No output bit is M where the closure of the circuit's own
        Boolean function would be stable -- on any valid input pair."""
        circuit = build_two_sort(width)
        for g, h in valid_pairs(width):
            assert weaker_than_closure(circuit, g, h) == []

    @pytest.mark.parametrize("width", [2, 3])
    def test_output_uncertainty_matches_input_uncertainty(self, width):
        """Total metastable bits out never exceed metastable bits in,
        and uncertainty only disappears when values overlap so the
        max/min become determined (e.g. max(0M, 01) = 01)."""
        for g, h in valid_pairs(width):
            mx, mn = two_sort_closure(g, h)
            in_m = g.metastable_count + h.metastable_count
            out_m = mx.metastable_count + mn.metastable_count
            assert out_m <= in_m


class TestOrderSemantics:
    """The valid-string order is the faithful refinement of value order."""

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_rank_refines_value_intervals(self, width):
        """If every resolution of g is <= every resolution of h, then
        rank(g) <= rank(h): the Table 2 order never contradicts values."""
        strings = all_valid_strings(width)
        for g in strings:
            for h in strings:
                g_lo, g_hi = value_interval(g)
                h_lo, h_hi = value_interval(h)
                if g_hi < h_lo:
                    assert rank(g) < rank(h)

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_output_intervals_are_min_max_of_input_intervals(self, width):
        """However each output's metastability settles, its value lies in
        the exact min/max interval of the input intervals.

        Note what is *not* promised: the two outputs' M bits are
        independent physical nodes, so when both outputs are superposed
        (e.g. max = min = 0M for inputs 0M, 0M) they may settle
        inconsistently (max reads 0, min reads 1).  Containment bounds
        each output individually; it does not correlate them -- which is
        exactly the paper's Definition 2.8 via the per-output closure.
        """
        for g, h in valid_pairs(width):
            mx, mn = two_sort_closure(g, h)
            g_lo, g_hi = value_interval(g)
            h_lo, h_hi = value_interval(h)
            assert value_interval(mn) == (min(g_lo, h_lo), min(g_hi, h_hi))
            assert value_interval(mx) == (max(g_lo, h_lo), max(g_hi, h_hi))
            # and each settled reading stays inside its interval
            for a in resolutions(mx):
                assert max(g_lo, h_lo) <= gray_decode(a) <= max(g_hi, h_hi)
            for b in resolutions(mn):
                assert min(g_lo, h_lo) <= gray_decode(b) <= min(g_hi, h_hi)
