"""Tests for word-level network simulation (repro.networks.simulate)."""

import pytest

from repro.graycode.rgc import gray_encode
from repro.graycode.valid import rank
from repro.networks.properties import check_mc_sort, is_sorted_by_rank, outputs_all_valid
from repro.networks.simulate import ENGINES, sort_words, sort_words_batch
from repro.networks.topologies import SORT4, SORT7, SORT10_SIZE, batcher_odd_even
from repro.ternary.word import Word
from repro.verify.random_valid import ValidStringSource


class TestEngines:
    def test_engine_registry(self):
        assert set(ENGINES) == {"closure", "fsm", "rank", "circuit", "compiled"}

    def test_unknown_engine(self):
        with pytest.raises(KeyError, match="unknown simulation engine"):
            sort_words(SORT4, [Word("00")] * 4, engine="abacus")

    @pytest.mark.parametrize(
        "engine", ["closure", "fsm", "rank", "circuit", "compiled"]
    )
    def test_engines_sort_stable(self, engine):
        width = 3
        words = [gray_encode(v, width) for v in (6, 1, 4, 0)]
        out = sort_words(SORT4, words, engine=engine)
        assert [rank(w) for w in out] == sorted(rank(w) for w in words)

    @pytest.mark.parametrize("engine", ["closure", "fsm", "circuit", "compiled"])
    def test_engines_agree_on_metastable(self, engine):
        width = 4
        source = ValidStringSource(width, meta_rate=0.6, seed=7)
        for _ in range(15):
            words = source.sample_vector(4)
            baseline = sort_words(SORT4, words, engine="rank")
            assert sort_words(SORT4, words, engine=engine) == baseline


class TestSortWordsBatch:
    def test_batch_matches_per_vector_rank(self):
        width = 4
        source = ValidStringSource(width, meta_rate=0.5, seed=13)
        vectors = [source.sample_vector(4) for _ in range(40)]
        batch = sort_words_batch(SORT4, vectors)
        assert batch == [sort_words(SORT4, v, engine="rank") for v in vectors]

    def test_batch_matches_gate_level_engine(self):
        width = 3
        source = ValidStringSource(width, meta_rate=0.6, seed=21)
        vectors = [source.sample_vector(SORT7.channels) for _ in range(12)]
        batch = sort_words_batch(SORT7, vectors, engine="compiled")
        per_vec = [sort_words(SORT7, v, engine="circuit") for v in vectors]
        assert batch == per_vec

    def test_non_compiled_engine_falls_back(self):
        width = 3
        source = ValidStringSource(width, meta_rate=0.4, seed=5)
        vectors = [source.sample_vector(4) for _ in range(6)]
        batch = sort_words_batch(SORT4, vectors, engine="fsm")
        assert batch == [sort_words(SORT4, v, engine="fsm") for v in vectors]

    def test_empty_batch(self):
        assert sort_words_batch(SORT4, []) == []

    def test_unknown_engine_uniform_error(self):
        """Regression: an unknown engine with an *empty* batch used to
        return [] instead of raising like sort_words does."""
        with pytest.raises(KeyError, match="unknown simulation engine"):
            sort_words_batch(SORT4, [], engine="abacus")
        with pytest.raises(KeyError, match="unknown simulation engine"):
            sort_words_batch(SORT4, [[Word("00")] * 4], engine="abacus")

    def test_channel_count_checked(self):
        with pytest.raises(ValueError, match="expects 4 values"):
            sort_words_batch(SORT4, [[Word("00")] * 3])

    def test_mixed_widths_rejected(self):
        bad = [[Word("00"), Word("01"), Word("000"), Word("11")]]
        with pytest.raises(ValueError, match="width"):
            sort_words_batch(SORT4, bad)


class TestSortWordsBatchSharded:
    def _workload(self, n, width=4, channels=None, seed=3):
        channels = channels or SORT4.channels
        source = ValidStringSource(width, meta_rate=0.5, seed=seed)
        return [source.sample_vector(channels) for _ in range(n)]

    def test_process_shards_match_serial(self):
        vectors = self._workload(24)
        serial = sort_words_batch(SORT4, vectors)
        sharded = sort_words_batch(SORT4, vectors, jobs=2, shard_size=5)
        assert sharded == serial

    def test_serial_executor_shards_match(self):
        vectors = self._workload(17)
        serial = sort_words_batch(SORT4, vectors)
        for shard_size in (1, 3, 100):
            assert (
                sort_words_batch(
                    SORT4,
                    vectors,
                    jobs=3,
                    shard_size=shard_size,
                    executor="serial",
                )
                == serial
            )

    def test_sharded_non_compiled_engine(self):
        vectors = self._workload(9)
        serial = sort_words_batch(SORT4, vectors, engine="fsm")
        sharded = sort_words_batch(
            SORT4, vectors, engine="fsm", jobs=2, shard_size=4,
            executor="serial",
        )
        assert sharded == serial

    def test_jobs_one_stays_single_process(self):
        vectors = self._workload(5)
        assert sort_words_batch(SORT4, vectors, jobs=1) == sort_words_batch(
            SORT4, vectors
        )

    def test_sharded_rejects_mixed_widths_like_serial(self):
        """The sharded path must reject exactly what the serial path
        rejects, independent of where shard boundaries fall."""
        mixed = self._workload(4, width=2) + self._workload(4, width=3)
        with pytest.raises(ValueError, match="width"):
            sort_words_batch(SORT4, mixed)
        with pytest.raises(ValueError, match="width"):
            sort_words_batch(SORT4, mixed, jobs=2, shard_size=4)

    def test_sharded_unknown_executor(self):
        with pytest.raises(KeyError, match="unknown executor"):
            sort_words_batch(
                SORT4, self._workload(4), jobs=2, executor="quantum"
            )

    def test_executor_validated_regardless_of_batch_size(self):
        """A bad executor name must raise even for 0- or 1-vector
        batches -- validation must not depend on batch size."""
        for n in (0, 1):
            with pytest.raises(KeyError, match="unknown executor"):
                sort_words_batch(
                    SORT4, self._workload(n), jobs=2, executor="quantum"
                )

    def test_executor_alone_routes_through_registry(self):
        vectors = self._workload(6)
        out = sort_words_batch(SORT4, vectors, executor="serial")
        assert out == sort_words_batch(SORT4, vectors)


class TestMcSortContract:
    @pytest.mark.parametrize("net", [SORT4, SORT7, SORT10_SIZE])
    def test_contract_on_random_vectors(self, net):
        width = 4
        source = ValidStringSource(width, meta_rate=0.5, seed=net.channels)
        for _ in range(10):
            words = source.sample_vector(net.channels)
            out = sort_words(net, words, engine="fsm")
            assert check_mc_sort(words, out) == []

    def test_batcher_with_mc_elements(self):
        width = 3
        net = batcher_odd_even(6)
        source = ValidStringSource(width, meta_rate=0.5, seed=99)
        for _ in range(10):
            words = source.sample_vector(6)
            out = sort_words(net, words, engine="closure")
            assert outputs_all_valid(out)
            assert is_sorted_by_rank(out)


class TestPropertyHelpers:
    def test_is_sorted_by_rank(self):
        assert is_sorted_by_rank([Word("00"), Word("0M"), Word("0M"), Word("01")])
        assert not is_sorted_by_rank([Word("01"), Word("00")])

    def test_check_mc_sort_detects_width_change(self):
        probs = check_mc_sort([Word("00")], [Word("00"), Word("01")])
        assert any("channel count" in p for p in probs)

    def test_check_mc_sort_detects_invalid_output(self):
        probs = check_mc_sort([Word("00"), Word("01")], [Word("MM"), Word("01")])
        assert any("not a valid string" in p for p in probs)

    def test_check_mc_sort_detects_unsorted(self):
        probs = check_mc_sort([Word("00"), Word("01")], [Word("01"), Word("00")])
        assert any("not ascending" in p for p in probs)

    def test_check_mc_sort_detects_rank_change(self):
        probs = check_mc_sort([Word("00"), Word("01")], [Word("00"), Word("11")])
        assert any("rank multiset" in p for p in probs)
