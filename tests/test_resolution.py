"""Tests for resolution / superposition / closure (Defs 2.1, 2.5, 2.7)."""

import pytest

from repro.ternary.resolution import (
    all_stable_words,
    all_words,
    covers,
    metastable_closure,
    metastable_closure_multi,
    resolution_count,
    resolutions,
    superpose,
)
from repro.ternary.word import Word


class TestResolutions:
    def test_stable_word_is_fixed_point(self):
        w = Word("0110")
        assert resolutions(w) == [w]

    def test_single_m_two_resolutions(self):
        rs = set(resolutions(Word("0M")))
        assert rs == {Word("00"), Word("01")}

    def test_all_ms_full_cube(self):
        rs = set(resolutions(Word("MM")))
        assert rs == {Word("00"), Word("01"), Word("10"), Word("11")}

    def test_resolution_count(self):
        assert resolution_count(Word("0110")) == 1
        assert resolution_count(Word("MM0M")) == 8
        assert all(
            resolution_count(w) == len(resolutions(w)) for w in all_words(3)
        )


class TestSuperpose:
    def test_single_element(self):
        assert superpose([Word("01")]) == Word("01")

    def test_pairwise_disagreement(self):
        assert superpose([Word("00"), Word("01"), Word("11")]) == Word("MM")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            superpose([])

    def test_observation_2_6_star_res_identity(self):
        """∗ res(x) = x for every x (Observation 2.6)."""
        for w in all_words(3):
            assert superpose(resolutions(w)) == w

    def test_observation_2_6_subset(self):
        """S ⊆ res(∗S) for arbitrary S (Observation 2.6)."""
        sets = [
            [Word("010"), Word("011")],
            [Word("000"), Word("111")],
            [Word("0M0"), Word("010")],
        ]
        for s in sets:
            sup = superpose(s)
            res_set = set(resolutions(sup))
            for member in s:
                # each stable resolution of a member must be in res(∗S)
                for r in resolutions(member):
                    assert r in res_set


class TestCovers:
    def test_wildcard_covers_both(self):
        assert covers(Word("0M"), Word("00"))
        assert covers(Word("0M"), Word("01"))
        assert not covers(Word("0M"), Word("10"))

    def test_width_mismatch_is_false(self):
        assert not covers(Word("0M"), Word("001"))


class TestClosure:
    def test_closure_of_identity(self):
        ident = metastable_closure(lambda x: x)
        for w in all_words(2):
            assert ident(w) == w

    def test_closure_of_constant(self):
        const = metastable_closure(lambda x: Word("1"))
        assert const(Word("M")) == Word("1")

    def test_closure_masks_when_output_agrees(self):
        # f(x) = AND of bits; closure of ("0M") must be 0.
        def f(x):
            return Word([min(t.to_int() for t in x)])

        f_m = metastable_closure(f)
        assert f_m(Word("0M")) == Word("0")
        assert f_m(Word("1M")) == Word("M")

    def test_multi_output_closure(self):
        def sort2(a, b):
            return (a, b) if a.to_int() >= b.to_int() else (b, a)

        s_m = metastable_closure_multi(sort2, arity_out=2)
        hi, lo = s_m(Word("0M"), Word("00"))
        assert (hi, lo) == (Word("0M"), Word("00"))

    def test_multi_output_arity_check(self):
        bad = metastable_closure_multi(lambda a: (a,), arity_out=2)
        with pytest.raises(ValueError):
            bad(Word("0"))


class TestEnumerators:
    def test_all_words_count(self):
        assert len(all_words(3)) == 27

    def test_all_stable_words_count(self):
        ws = all_stable_words(4)
        assert len(ws) == 16
        assert all(w.is_stable for w in ws)
