"""Tests for the gate-level selection cells (paper Fig. 3 / Table 6).

The decisive property (paper footnote 2): these specific formulas
compute the *metastable closure* of their operators gate-by-gate.  We
check that exhaustively over all 3^4 operand combinations.
"""

import itertools

import pytest

from repro.circuits.evaluate import evaluate_words
from repro.circuits.analysis import logic_depth
from repro.core.diamond import diamond_hat_m
from repro.core.out_op import out_m
from repro.core.selection import diamond_hat_circuit, out_circuit
from repro.ternary.trit import Trit
from repro.ternary.word import Word

ALL2 = [Word(a + b) for a in "01M" for b in "01M"]


class TestDiamondHatCell:
    def test_cost_and_shape(self):
        c = diamond_hat_circuit()
        assert c.gate_count() == 10
        assert c.gate_histogram() == {"AND2": 4, "OR2": 4, "INV": 2}
        assert logic_depth(c) == 3
        assert c.is_mc_safe()

    def test_computes_closure_exhaustively(self):
        """Cell == ⋄̂_M on all 81 operand pairs -- not just valid ones."""
        c = diamond_hat_circuit()
        for x in ALL2:
            for y in ALL2:
                got = evaluate_words(c, x, y)
                assert got == diamond_hat_m(x, y), (x, y)

    def test_footnote2_would_fail_here(self):
        """The naive formula the paper warns about is weaker on (10, M0).

        (s ⋄ b)_1 via (s̄1 + b1)(s̄2 + b̄1) outputs M for s=10, b=M0; the
        correct cells output the closure value.  We reproduce the gap.
        """
        from repro.ternary.kleene import kleene_and, kleene_not, kleene_or

        s, b = Word("10"), Word("M0")
        s1, s2, b1 = s.bit(1), s.bit(2), b.bit(1)
        naive = kleene_and(
            kleene_or(kleene_not(s1), b1),
            kleene_or(kleene_not(s2), kleene_not(b1)),
        )
        assert naive is Trit.META  # the broken formula
        # closure of (s ⋄ b)_1 is stable 1 -> N-domain first bit is 0:
        from repro.core.diamond import diamond_m

        assert diamond_m(s, b) == Word("10")


class TestOutCell:
    def test_cost_and_shape(self):
        c = out_circuit()
        assert c.gate_count() == 10
        assert c.gate_histogram() == {"AND2": 4, "OR2": 4, "INV": 2}
        assert logic_depth(c) == 3
        assert c.is_mc_safe()

    def test_computes_closure_exhaustively(self):
        """Cell(Ns, b) == out_M(s, b) on all 81 operand pairs."""
        from repro.core.diamond import n_transform

        c = out_circuit()
        for s in ALL2:
            for b in ALL2:
                got = evaluate_words(c, n_transform(s), b)
                assert got == out_m(s, b), (s, b)

    def test_initial_cell_reduction(self):
        """With Ns^(0) = (1, 0), out_M degenerates to (OR, AND)."""
        from repro.ternary.kleene import kleene_and, kleene_or

        for b in ALL2:
            want = out_m(Word("00"), b)
            assert want.bit(1) is kleene_or(b.bit(1), b.bit(2))
            assert want.bit(2) is kleene_and(b.bit(1), b.bit(2))
