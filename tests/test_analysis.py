"""Tests for the measurement/comparison layer (repro.analysis)."""

import pytest

from repro.analysis.compare import (
    PAPER_WIDTHS,
    measure_network,
    measure_two_sort,
    table7_rows,
    table8_rows,
)
from repro.analysis.cost import ComparisonRow
from repro.analysis.published import (
    DESIGNS,
    HEADLINE,
    NETWORK_SIZES,
    TABLE7,
    TABLE8,
    improvement_pct,
)
from repro.analysis.tables import render_grouped, render_table


class TestPublishedRegistry:
    def test_table7_complete(self):
        for design in DESIGNS:
            assert set(TABLE7[design]) == {2, 4, 8, 16}

    def test_table8_complete(self):
        for design in DESIGNS:
            assert set(TABLE8[design]) == {"4-sort", "7-sort", "10-sort#", "10-sortd"}
            for net in TABLE8[design].values():
                assert set(net) == {2, 4, 8, 16}

    def test_table8_mc_gates_factorise(self):
        """Published MC gate counts factorise as size x 2-sort gates."""
        for design in ("this-paper", "date17"):
            for label, size in NETWORK_SIZES.items():
                for width in (2, 4, 8, 16):
                    network_gates = TABLE8[design][label][width].gates
                    two_sort_gates = TABLE7[design][width].gates
                    assert network_gates == size * two_sort_gates, (
                        design, label, width,
                    )

    def test_headline_claims_derive_from_table8(self):
        """Abstract: 48.46% delay / 71.58% area improvement at 10ch/16b."""
        ours = TABLE8["this-paper"]["10-sortd"][16]
        theirs = TABLE8["date17"]["10-sortd"][16]
        assert improvement_pct(ours.delay_ps, theirs.delay_ps) == pytest.approx(
            HEADLINE["delay_improvement_pct"], abs=0.01
        )
        assert improvement_pct(ours.area_um2, theirs.area_um2) == pytest.approx(
            HEADLINE["area_improvement_pct"], abs=0.01
        )

    def test_improvement_pct_zero_baseline(self):
        with pytest.raises(ValueError):
            improvement_pct(1.0, 0.0)


class TestMeasurement:
    def test_measure_two_sort_exact_gates(self):
        row = measure_two_sort("this-paper", 8)
        assert row.gates_exact is True
        assert abs(row.area_deviation_pct) < 0.2

    def test_measure_two_sort_unpublished_width(self):
        row = measure_two_sort("this-paper", 3)
        assert row.published is None
        assert row.gates_exact is None
        assert row.area_deviation_pct is None
        assert "paper:" not in row.format()

    def test_measure_network_factorises(self):
        row = measure_network("this-paper", "4-sort", 2)
        assert row.measured.gate_count == 65
        assert row.gates_exact is True

    def test_table7_rows_shape(self):
        rows = table7_rows(widths=(2,), designs=("this-paper",))
        assert len(rows) == 1
        assert isinstance(rows[0], ComparisonRow)
        assert "13" in rows[0].format()

    def test_table8_rows_shape(self):
        rows = table8_rows(widths=(2,), designs=("this-paper",), networks=("4-sort",))
        assert len(rows) == 1
        assert rows[0].measured.gate_count == 65


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbb"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert lines[1].index("bbb") == lines[3].index("  2") or True
        assert "333" in text

    def test_render_grouped(self):
        text = render_grouped("Title", [("G1", "body1"), ("G2", "body2")])
        assert text.splitlines()[1].startswith("=")
        assert "G2" in text
