"""Named prefix schedules for experiments and ablations.

``SCHEDULES`` maps a schedule name to a circuit-level builder with the
signature of :func:`repro.ppc.circuit.build_ppc`.  The paper uses
``ladner_fischer`` (its Fig. 4); ``serial`` models the bit-serial
ASYNC 2016 approach [12]; ``sklansky`` is the classic minimum-depth
schedule, included to quantify the size/depth trade-off (bench E9).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..circuits.netlist import Circuit
from .circuit import Item, OpBuilder, build_ppc, build_serial, build_sklansky

ScheduleFn = Callable[[Circuit, Sequence[Item], OpBuilder], List[Item]]

SCHEDULES: Dict[str, ScheduleFn] = {
    "ladner_fischer": build_ppc,
    "serial": build_serial,
    "sklansky": build_sklansky,
}


def get_schedule(name: str) -> ScheduleFn:
    """Look up a schedule by name with a helpful error."""
    try:
        return SCHEDULES[name]
    except KeyError:
        raise KeyError(
            f"unknown prefix schedule {name!r}; available: {sorted(SCHEDULES)}"
        ) from None
