"""Functional parallel prefix computation (Ladner & Fischer [11]).

Given an associative operator ``op`` and inputs ``δ_0 .. δ_{n-1}``, a
parallel prefix computation outputs all prefixes
``π_i = δ_0 op δ_1 op ... op δ_i``.  The paper instantiates the
size-optimal Ladner-Fischer recursion (its Fig. 4) with the ``⋄̂_M``
operator to compute all FSM states ``s^{(i)}_M`` at once (Section 5.2).

This module provides the *value-level* recursion (used to validate the
circuit generator and to test Theorem 4.1's order-independence claim)
plus the op-count/depth accounting, including the closed forms of the
paper's Equation 3 for powers of two.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")
BinOp = Callable[[T, T], T]


def serial_prefixes(items: Sequence[T], op: BinOp) -> List[T]:
    """Left-fold prefixes: the obvious depth-(n-1), (n-1)-op schedule."""
    if not items:
        return []
    out = [items[0]]
    for item in items[1:]:
        out.append(op(out[-1], item))
    return out


def ladner_fischer_prefixes(items: Sequence[T], op: BinOp) -> List[T]:
    """All prefixes via the Fig. 4 recursion (size-optimal LF variant).

    Structure for ``n`` inputs:

    * pair adjacent inputs with ``⌊n/2⌋`` ops (for odd ``n`` the last
      input is passed through unpaired -- the dashed lines of Fig. 4);
    * recurse on the ``⌈n/2⌉`` pair results;
    * odd-indexed outputs come straight from the recursion; even-indexed
      outputs ``π_{2i}`` (``i ≥ 1``) need one more op with ``δ_{2i}``.

    For an associative ``op`` this equals :func:`serial_prefixes`; for
    the *closure* operator ``⋄_M`` it equals it only on valid strings
    (Theorem 4.1), which the tests check both positively and negatively.
    """
    n = len(items)
    if n == 0:
        return []
    if n == 1:
        return [items[0]]
    paired: List[T] = [
        op(items[2 * i], items[2 * i + 1]) for i in range(n // 2)
    ]
    if n % 2:
        paired.append(items[-1])
    inner = ladner_fischer_prefixes(paired, op)
    out: List[T] = [items[0]] * n
    for i, prefix in enumerate(inner):
        position = 2 * i + 1
        if position < n:
            out[position] = prefix
    if n % 2:
        out[n - 1] = inner[-1]
    for i in range(1, (n + 1) // 2):
        position = 2 * i
        if position <= n - 1 and (position != n - 1 or n % 2 == 0):
            out[position] = op(inner[i - 1], items[position])
    return out


def lf_op_count(n: int) -> int:
    """Exact op count ``C(n)`` of the Fig. 4 recursion.

    ``C(1) = 0``; ``C(n) = ⌊n/2⌋ + C(⌈n/2⌉) + (#even outputs needing a
    combine)``.  For powers of two this equals the paper's Eq. 3 closed
    form ``2n - log2(n) - 2``.  Key values driving the gate counts of
    Table 7: C(1)=0, C(3)=2, C(7)=9, C(15)=24.
    """
    if n < 1:
        raise ValueError("prefix over less than one item")
    if n == 1:
        return 0
    pair_ops = n // 2
    if n % 2:
        extra = (n - 3) // 2 if n >= 3 else 0
    else:
        extra = (n - 2) // 2
    return pair_ops + lf_op_count((n + 1) // 2) + extra


def lf_depth(n: int) -> int:
    """Exact op depth of the Fig. 4 recursion (deepest output).

    Computed by simulating the recursion on depth values.  Bounded above
    by ``2⌈log2 n⌉ - 1`` (the paper's Eq. 3 bound).
    """

    class _D:
        __slots__ = ("d",)

        def __init__(self, d: int):
            self.d = d

    result = ladner_fischer_prefixes(
        [_D(0)] * n, lambda a, b: _D(max(a.d, b.d) + 1)
    )
    return max(x.d for x in result)


def eq3_cost_pow2(n: int) -> int:
    """Paper Eq. 3: ``cost(PPC(n)) = 2n - log2(n) - 2`` ops (n a power of 2)."""
    _require_pow2(n)
    return 2 * n - int(math.log2(n)) - 2


def eq3_delay_pow2(n: int) -> int:
    """Paper Eq. 3: ``delay(PPC(n)) = 2 log2(n) - 1`` op levels (upper bound
    for the Fig. 4 recursion; the recursion often does one level better)."""
    _require_pow2(n)
    return 2 * int(math.log2(n)) - 1


def _require_pow2(n: int) -> None:
    if n < 1 or n & (n - 1):
        raise ValueError(f"{n} is not a power of two")
