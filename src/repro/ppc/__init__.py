"""Parallel prefix computation (Ladner-Fischer) -- values and circuits.

Implements the PPC framework of [11] that the paper leans on
(Section 5.2 and Fig. 4): the size-optimal recursion at the value level,
the gate-level template parameterised by an operator implementation, and
alternative schedules (serial, Sklansky) for ablation studies.
"""

from .prefix import (
    eq3_cost_pow2,
    eq3_delay_pow2,
    ladner_fischer_prefixes,
    lf_depth,
    lf_op_count,
    serial_prefixes,
)
from .circuit import Item, OpBuilder, build_ppc, build_serial, build_sklansky
from .schedules import SCHEDULES, get_schedule

__all__ = [
    "eq3_cost_pow2",
    "eq3_delay_pow2",
    "ladner_fischer_prefixes",
    "lf_depth",
    "lf_op_count",
    "serial_prefixes",
    "Item",
    "OpBuilder",
    "build_ppc",
    "build_serial",
    "build_sklansky",
    "SCHEDULES",
    "get_schedule",
]
