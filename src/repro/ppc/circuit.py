"""Gate-level parallel prefix circuit generation (the paper's Fig. 4).

The generator is generic over the *operator implementation*: an
``OpBuilder`` callback receives the enclosing
:class:`~repro.circuits.netlist.Circuit` and two operand "items" (tuples
of nets, e.g. the 2-net FSM state signals) and must emit gates computing
``a OP b``, returning the result item.  The PPC template then wires
``⌊n/2⌋`` pair ops, a recursive PPC, and the even-output combine ops --
exactly the structure whose op count ``C(n)`` reproduces the paper's
gate counts (DESIGN.md Section 3).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..circuits.netlist import Circuit, NetId

#: An operand bundle flowing through the prefix network (e.g. 2 state nets).
Item = Tuple[NetId, ...]

#: Emits gates for one OP instance; returns the output item.
OpBuilder = Callable[[Circuit, Item, Item], Item]


def build_ppc(
    circuit: Circuit,
    items: Sequence[Item],
    op: OpBuilder,
) -> List[Item]:
    """Instantiate the Fig. 4 Ladner-Fischer prefix network.

    Returns items carrying ``π_i = δ_0 OP ... OP δ_i`` for every ``i``.
    The emitted structure uses exactly :func:`repro.ppc.prefix.lf_op_count`
    OP instances.
    """
    items = [tuple(it) for it in items]
    n = len(items)
    if n == 0:
        return []
    if n == 1:
        return [items[0]]

    paired: List[Item] = [
        op(circuit, items[2 * i], items[2 * i + 1]) for i in range(n // 2)
    ]
    if n % 2:
        paired.append(items[-1])

    inner = build_ppc(circuit, paired, op)

    out: List[Item] = [items[0]] * n
    for i, prefix in enumerate(inner):
        position = 2 * i + 1
        if position < n:
            out[position] = prefix
    if n % 2:
        out[n - 1] = inner[-1]
    for i in range(1, (n + 1) // 2):
        position = 2 * i
        if position <= n - 1 and (position != n - 1 or n % 2 == 0):
            out[position] = op(circuit, inner[i - 1], items[position])
    return out


def build_serial(
    circuit: Circuit,
    items: Sequence[Item],
    op: OpBuilder,
) -> List[Item]:
    """Serial (ripple) prefix chain: ``n-1`` ops, depth ``n-1``.

    The bit-serial structure of the ASYNC 2016 predecessor [12]; used by
    the ablation bench to show what PPC buys.
    """
    items = [tuple(it) for it in items]
    if not items:
        return []
    out = [items[0]]
    for item in items[1:]:
        out.append(op(circuit, out[-1], item))
    return out


def build_sklansky(
    circuit: Circuit,
    items: Sequence[Item],
    op: OpBuilder,
) -> List[Item]:
    """Sklansky (divide-and-conquer) prefix: depth ``⌈log2 n⌉``, about
    ``(n/2)·log2 n`` ops -- the depth-optimal/size-heavier corner.

    This is also (up to operator implementation) the prefix structure
    underlying the Θ(B log B) construction of the DATE 2017 baseline, so
    the ablation quantifies the paper's core saving.
    """
    items = [tuple(it) for it in items]
    n = len(items)
    if n == 0:
        return []
    if n == 1:
        return [items[0]]
    mid = (n + 1) // 2
    left = build_sklansky(circuit, items[:mid], op)
    right = build_sklansky(circuit, items[mid:], op)
    combined = [op(circuit, left[-1], r) for r in right]
    return left + combined
