"""Unified result persistence: pluggable stores behind one protocol.

Public surface of the ``repro.store`` subsystem (see
:mod:`repro.store.base` for the protocol itself):

* :func:`open_store` parses a store *spec* -- ``"memory"`` /
  ``"memory:N"``, ``"journal:PATH"``, ``"sqlite:PATH"``, or a bare
  path (``.jsonl``/``.journal`` suffix selects the journal backend,
  anything else sqlite) -- and returns an opened
  :class:`~repro.store.base.ResultStore`;
* :func:`register_store_backend` is the registry hook, exactly like
  the executor and plane-backend registries;
* :func:`shared_store` returns a per-process cached handle for a spec
  -- the worker-side entry point: pool and remote workers receive a
  shareable store's spec through the sweep initargs and consult the
  store before executing a leased range.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from .base import ResultStore, RunRecord, result_digest
from .journal import JournalStore
from .memory import MemoryStore
from .sqlite_store import SqliteStore
from .stacked import StackedStore

__all__ = [
    "JournalStore",
    "MemoryStore",
    "ResultStore",
    "RunRecord",
    "SqliteStore",
    "StackedStore",
    "available_store_backends",
    "open_store",
    "register_store_backend",
    "result_digest",
    "shared_store",
]

#: Backend factories: ``factory(arg)`` where ``arg`` is the text after
#: the first ``:`` of the spec (possibly empty).
_BACKENDS: Dict[str, Callable[[str], ResultStore]] = {}


def register_store_backend(
    name: str, factory: Callable[[str], ResultStore]
) -> None:
    """Register (or replace) a store backend under ``name``."""
    _BACKENDS[name] = factory


def available_store_backends() -> List[str]:
    return sorted(_BACKENDS)


def _make_memory(arg: str) -> ResultStore:
    return MemoryStore(maxsize=int(arg)) if arg else MemoryStore()


register_store_backend("memory", _make_memory)
register_store_backend("journal", lambda arg: JournalStore(arg))
register_store_backend("sqlite", lambda arg: SqliteStore(arg))


def open_store(spec: str) -> ResultStore:
    """Open the store a spec names.

    ``"memory"``/``"memory:4096"`` -> LRU; ``"journal:PATH"`` ->
    JSON-lines journal; ``"sqlite:PATH"`` -> shared WAL-mode SQLite.  A
    bare path picks the backend by suffix: ``.jsonl``/``.journal`` mean
    journal, everything else (``.db``, ``.sqlite``, ...) sqlite -- so
    ``verify --store s.db`` does the expected thing with no ceremony.
    """
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"store spec must be a non-empty string, got {spec!r}")
    name, sep, arg = spec.partition(":")
    if sep and name in _BACKENDS:
        return _BACKENDS[name](arg)
    if not sep and spec in _BACKENDS:
        return _BACKENDS[spec]("")
    # A bare path: infer the backend from the suffix.
    if spec.endswith((".jsonl", ".journal")):
        return _BACKENDS["journal"](spec)
    return _BACKENDS["sqlite"](spec)


#: Worker-side handle cache, keyed on (pid, spec).  The pid guards
#: forked pool workers: a SQLite connection must never be shared across
#: a fork, so each process lazily opens its own.
_SHARED: Dict[Tuple[int, str], ResultStore] = {}


def shared_store(spec: str) -> ResultStore:
    """A per-process cached handle on ``spec`` (for worker consults).

    Handles are kept open for the life of the process -- workers
    consult the store per task, and reconnecting per task would turn
    every shard into a connection handshake.
    """
    key = (os.getpid(), spec)
    store = _SHARED.get(key)
    if store is None:
        store = open_store(spec)
        _SHARED[key] = store
    return store
