"""The ``sqlite`` backend: one store shared across processes and hosts.

The journal backend is durable but per-sweep and per-handle; this
backend is the *shared* half of the ROADMAP's persistence item: a
single SQLite file (WAL mode) that CLI runs, service jobs, the
distributed coordinator, and workers on other hosts (via a shared
path) all read and write concurrently.  ``shareable = True`` is the
protocol-level consequence: the sharded sweep ships this store's spec
to its pool/remote workers, which open their own connections and
consult the store *before executing a leased range*.

Layout (all values pure JSON -- no pickles on disk):

* ``results(key, value, created)`` -- first-write-wins keyed values
  (``INSERT OR IGNORE``, matching the journal and the coordinator);
* ``epochs(fingerprint, epoch, shards, shard_size, created)``;
* ``runs(...)`` -- the append-only audit trail of completed sweeps;
* ``claims(key, host, pid, ts)`` -- advisory in-flight markers with a
  TTL, the no-double-execute mechanism: :meth:`claim` arbitrates via
  ``BEGIN IMMEDIATE`` so exactly one writer wins a key, and a claimant
  that dies simply lets its claim expire.

Keys are stored as their canonical JSON-array text, so any tuple of
JSON scalars works and prefix scans decode losslessly.  Connections
use ``busy_timeout`` + WAL so concurrent writers queue instead of
failing, and every handle is thread-safe behind one lock (SQLite
serializes per-connection access anyway).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..verify.exhaustive import SweepEpoch
from .base import ResultStore, RunRecord, decode_value, encode_value

__all__ = ["SqliteStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key     TEXT PRIMARY KEY,
    value   TEXT NOT NULL,
    created REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS epochs (
    fingerprint TEXT PRIMARY KEY,
    epoch       TEXT NOT NULL,
    shards      INTEGER,
    shard_size  INTEGER,
    created     REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    circuit        TEXT NOT NULL,
    circuit_hash   TEXT NOT NULL,
    backend        TEXT NOT NULL,
    executor       TEXT NOT NULL,
    width          INTEGER NOT NULL,
    shards         INTEGER NOT NULL,
    checked        INTEGER NOT NULL,
    failure_count  INTEGER NOT NULL,
    ok             INTEGER NOT NULL,
    result_digest  TEXT NOT NULL,
    mode           TEXT NOT NULL,
    host           TEXT NOT NULL,
    pid            INTEGER NOT NULL,
    timestamp      REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS claims (
    key  TEXT PRIMARY KEY,
    host TEXT NOT NULL,
    pid  INTEGER NOT NULL,
    ts   REAL NOT NULL
);
"""

_RUN_COLUMNS = (
    "circuit", "circuit_hash", "backend", "executor", "width", "shards",
    "checked", "failure_count", "ok", "result_digest", "mode", "host",
    "pid", "timestamp",
)


def _key_text(key: Tuple) -> str:
    return json.dumps(list(key), separators=(",", ":"), sort_keys=False)


class SqliteStore(ResultStore):
    """WAL-mode SQLite store, safe for concurrent multi-process writers.

    ``claim_ttl`` is the default advisory-claim lifetime in seconds: a
    worker that claims a key and dies releases it implicitly after the
    TTL, so a shared sweep degrades to at-least-once execution instead
    of wedging.  ``fsync`` maps to ``synchronous=NORMAL`` (default;
    WAL-safe against process crash) vs ``FULL``.
    """

    backend_name = "sqlite"
    shareable = True

    def __init__(
        self, path: str, claim_ttl: float = 60.0, fsync: bool = False
    ):
        path = os.fspath(path)
        if path != ":memory:":
            path = os.path.abspath(path)
        super().__init__(spec=f"sqlite:{path}")
        self.path = path
        self.claim_ttl = claim_ttl
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            path, timeout=30.0, check_same_thread=False
        )
        self._conn.isolation_level = None  # explicit transactions only
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(
                "PRAGMA synchronous=%s" % ("FULL" if fsync else "NORMAL")
            )
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.executescript(_SCHEMA)

    # -- keyed results -------------------------------------------------
    def get(self, key: Tuple) -> Optional[Any]:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM results WHERE key = ?",
                (_key_text(key),),
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            self.hits += 1
        return decode_value(json.loads(row[0]))

    def put(self, key: Tuple, value: Any) -> None:
        blob = json.dumps(
            encode_value(value), separators=(",", ":"), sort_keys=True
        )
        text = _key_text(key)
        with self._lock:
            # First write wins (like the journal); the claim, if any,
            # is released in the same transaction so waiting claimants
            # see key+result appear atomically.
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT OR IGNORE INTO results(key, value, created) "
                    "VALUES (?, ?, ?)",
                    (text, blob, time.time()),
                )
                self._conn.execute(
                    "DELETE FROM claims WHERE key = ?", (text,)
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self.puts += 1

    def scan(self, prefix: Tuple = ()) -> Iterator[Tuple[Tuple, Any]]:
        prefix = tuple(prefix)
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, value FROM results ORDER BY key"
            ).fetchall()
        for key_text, blob in rows:
            key = tuple(json.loads(key_text))
            if key[: len(prefix)] == prefix:
                yield key, decode_value(json.loads(blob))

    def claim(self, key: Tuple, ttl: Optional[float] = None) -> bool:
        ttl = self.claim_ttl if ttl is None else ttl
        text = _key_text(key)
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT ts FROM claims WHERE key = ?", (text,)
                ).fetchone()
                if row is not None and now - row[0] < ttl:
                    self._conn.execute("COMMIT")
                    return False
                self._conn.execute(
                    "INSERT OR REPLACE INTO claims(key, host, pid, ts) "
                    "VALUES (?, ?, ?, ?)",
                    (text, _hostname(), os.getpid(), now),
                )
                self._conn.execute("COMMIT")
                return True
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    # -- epochs --------------------------------------------------------
    def record_epoch(
        self,
        epoch: SweepEpoch,
        shards: Optional[int] = None,
        shard_size: Optional[int] = None,
    ) -> None:
        blob = json.dumps(
            epoch.to_dict(), separators=(",", ":"), sort_keys=True
        )
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT OR IGNORE INTO epochs"
                    "(fingerprint, epoch, shards, shard_size, created) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (epoch.fingerprint(), blob, shards, shard_size,
                     time.time()),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def epochs(self) -> List[SweepEpoch]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT epoch FROM epochs ORDER BY created, fingerprint"
            ).fetchall()
        return [SweepEpoch.from_dict(json.loads(blob)) for (blob,) in rows]

    # -- audit trail ---------------------------------------------------
    def record_run(self, run: RunRecord) -> None:
        data = run.to_dict()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT INTO runs(%s) VALUES (%s)"
                    % (", ".join(_RUN_COLUMNS),
                       ", ".join("?" * len(_RUN_COLUMNS))),
                    tuple(
                        int(data[c]) if c == "ok" else data[c]
                        for c in _RUN_COLUMNS
                    ),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def runs(self, limit: Optional[int] = None) -> List[RunRecord]:
        with self._lock:
            if limit:
                rows = self._conn.execute(
                    "SELECT %s FROM runs ORDER BY id DESC LIMIT ?"
                    % ", ".join(_RUN_COLUMNS),
                    (limit,),
                ).fetchall()
                rows.reverse()
            else:
                rows = self._conn.execute(
                    "SELECT %s FROM runs ORDER BY id" % ", ".join(_RUN_COLUMNS)
                ).fetchall()
        return [
            RunRecord.from_dict(dict(zip(_RUN_COLUMNS, row))) for row in rows
        ]

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            (n,) = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
        return n

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            (results,) = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
            (epochs,) = self._conn.execute(
                "SELECT COUNT(*) FROM epochs"
            ).fetchone()
            (runs,) = self._conn.execute(
                "SELECT COUNT(*) FROM runs"
            ).fetchone()
            (claims,) = self._conn.execute(
                "SELECT COUNT(*) FROM claims"
            ).fetchone()
        return {
            "backend": self.backend_name,
            "path": self.path,
            "results": results,
            "epochs": epochs,
            "runs": runs,
            "claims": claims,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()


def _hostname() -> str:
    import socket

    return socket.gethostname()
