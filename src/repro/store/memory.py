"""The ``memory`` backend: a bounded in-process LRU result store.

The LRU previously living in ``repro.service.cache.ShardCache``,
extracted behind the :class:`~repro.store.base.ResultStore` protocol
(``ShardCache`` remains as a thin alias).  Epochs and audit records are
kept in plain dicts/lists -- useful for the service layer's run
counters and for tests, gone with the process by design.

Thread-safe: job bodies run on a thread pool, and two concurrent
verify jobs for the same circuit may read and write the same keys.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..verify.exhaustive import SweepEpoch
from .base import ResultStore, RunRecord

__all__ = ["MemoryStore"]


class MemoryStore(ResultStore):
    """A bounded LRU map with hit/miss accounting.

    ``maxsize`` counts *entries* (one per shard); at the default shard
    sizing a full B=13 sweep is ~2.6k shards, so the default of 8192
    holds a few full widths.  ``maxsize <= 0`` disables storage (every
    ``get`` is a miss, ``put`` is a no-op) -- the switch for callers
    that must never serve a stale-circuit result even in theory.
    """

    backend_name = "memory"
    shareable = False

    def __init__(self, maxsize: int = 8192, spec: Optional[str] = None):
        super().__init__(spec=spec or "memory")
        self.maxsize = maxsize
        self._data: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._epochs: Dict[str, SweepEpoch] = {}
        self._runs: List[RunRecord] = []
        self._lock = threading.Lock()

    def get(self, key: Tuple) -> Optional[Any]:
        key = tuple(key)
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Tuple, value: Any) -> None:
        if self.maxsize <= 0:
            return
        key = tuple(key)
        with self._lock:
            # Re-putting a present key replaces the value in place and
            # refreshes its recency; it must never count as a second
            # entry toward maxsize (pinned by a regression test -- the
            # distributed path re-puts keys whenever an expired lease
            # is re-run).
            self._data[key] = value
            self._data.move_to_end(key)
            self.puts += 1
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def scan(self, prefix: Tuple = ()) -> Iterator[Tuple[Tuple, Any]]:
        prefix = tuple(prefix)
        with self._lock:
            snapshot = list(self._data.items())
        for key, value in snapshot:
            if key[: len(prefix)] == prefix:
                yield key, value

    def record_epoch(
        self,
        epoch: SweepEpoch,
        shards: Optional[int] = None,
        shard_size: Optional[int] = None,
    ) -> None:
        with self._lock:
            self._epochs.setdefault(epoch.fingerprint(), epoch)

    def epochs(self) -> List[SweepEpoch]:
        with self._lock:
            return list(self._epochs.values())

    def record_run(self, run: RunRecord) -> None:
        with self._lock:
            self._runs.append(run)

    def runs(self, limit: Optional[int] = None) -> List[RunRecord]:
        with self._lock:
            out = list(self._runs)
        return out[-limit:] if limit else out

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "backend": self.backend_name,
                "entries": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "runs": len(self._runs),
            }
