"""The ``ResultStore`` protocol: one seam for all result persistence.

PRs 4-6 grew three divergent persistence layers -- the in-process LRU
``ShardCache``, the append-only ``SweepCheckpoint`` journal, and the
``StackedCache`` glue -- each speaking a slightly different get/put
dialect.  This module is the unification: every backend (memory,
journal, sqlite) and the stacking combinator implement one
:class:`ResultStore` interface, and every consumer -- the sharded
sweep, the service layer, the distributed workers, the CLI -- talks to
that interface only.

A store holds three record families:

* **results** -- keyed values: a :class:`~repro.verify.exhaustive.
  VerificationResult` per circuit-granularity shard key, or a plain
  JSON value per region-granularity key.  First write wins (matching
  the coordinator's result accounting), so replays are idempotent.
* **epochs** -- the self-describing
  :class:`~repro.verify.exhaustive.SweepEpoch` setup descriptors,
  deduplicated by fingerprint.
* **runs** -- the audit trail: one :class:`RunRecord` per *completed*
  sweep (circuit, content hash, backend, executor, width, result
  digest, timestamp, host), queryable via ``python -m repro store log``.

Values round-trip through pure JSON (:func:`encode_value` /
:func:`decode_value`): no pickles on disk, so a store file is safe to
inspect and to accept from another host.

Concurrency is part of the protocol: :meth:`ResultStore.claim` lets a
worker announce "I am computing this key" before executing, so two
processes sweeping the same circuit against one shared store never
double-execute a shard.  Backends without cross-process visibility
(memory, journal) grant every claim -- their callers already dedup
within the process -- while the sqlite backend arbitrates claims
transactionally.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..verify.exhaustive import SweepEpoch, VerificationResult

__all__ = [
    "RunRecord",
    "ResultStore",
    "decode_value",
    "encode_value",
    "result_digest",
    "result_from_record",
    "result_to_record",
]


# ----------------------------------------------------------------------
# Value codec: VerificationResult <-> pure JSON
# ----------------------------------------------------------------------
def result_to_record(result: VerificationResult) -> Dict[str, Any]:
    """Exact JSON form of a shard result (no derived fields)."""
    out: Dict[str, Any] = {
        "checked": result.checked,
        "failure_count": result.failure_count,
        "failures": list(result.failures),
        "truncated": result.truncated,
    }
    if result.elapsed is not None:
        out["elapsed"] = result.elapsed
    return out


def result_from_record(data: Dict[str, Any]) -> VerificationResult:
    return VerificationResult(
        checked=int(data["checked"]),
        failure_count=int(data["failure_count"]),
        failures=[str(m) for m in data["failures"]],
        truncated=bool(data["truncated"]),
        elapsed=data.get("elapsed"),
    )


def encode_value(value: Any) -> Dict[str, Any]:
    """One-key envelope distinguishing typed results from plain JSON.

    ``{"result": ...}`` is the wire form the PR-6 journal already used
    for :class:`VerificationResult` records; any other JSON value (the
    per-region outcome dicts) travels as ``{"value": ...}``, so old
    journals load unchanged and new record kinds need no migration.
    """
    if isinstance(value, VerificationResult):
        return {"result": result_to_record(value)}
    return {"value": value}


def decode_value(envelope: Dict[str, Any]) -> Any:
    if "result" in envelope:
        return result_from_record(envelope["result"])
    return envelope.get("value")


def result_digest(result: VerificationResult) -> str:
    """Stable digest of a merged report (hex, 16 chars).

    Covers exactly the deterministic fields -- counts, messages,
    truncation -- and excludes ``elapsed``, so two runs of the same
    sweep always digest identically and an audit can assert "same
    answer" across hosts and executors by comparing digests alone.
    """
    blob = json.dumps(
        {
            "checked": result.checked,
            "failure_count": result.failure_count,
            "failures": list(result.failures),
            "truncated": result.truncated,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Audit records
# ----------------------------------------------------------------------
@dataclass
class RunRecord:
    """One completed sweep, as the audit trail remembers it."""

    circuit: str
    circuit_hash: str
    backend: str
    executor: str
    width: int
    shards: int
    checked: int
    failure_count: int
    ok: bool
    result_digest: str
    mode: str  # "shards" (circuit-granularity) or "regions"
    host: str
    pid: int
    timestamp: float

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        return cls(
            circuit=str(data["circuit"]),
            circuit_hash=str(data["circuit_hash"]),
            backend=str(data["backend"]),
            executor=str(data["executor"]),
            width=int(data["width"]),
            shards=int(data["shards"]),
            checked=int(data["checked"]),
            failure_count=int(data["failure_count"]),
            ok=bool(data["ok"]),
            result_digest=str(data["result_digest"]),
            mode=str(data.get("mode", "shards")),
            host=str(data.get("host", "")),
            pid=int(data.get("pid", 0)),
            timestamp=float(data["timestamp"]),
        )


# ----------------------------------------------------------------------
# The protocol
# ----------------------------------------------------------------------
class ResultStore:
    """Base class / protocol for verification-result stores.

    Subclasses implement :meth:`get`, :meth:`put`, :meth:`scan`,
    :meth:`record_epoch`, :meth:`record_run`, and :meth:`runs`; the
    base supplies counters, claim defaults, and context-manager
    plumbing.  Keys are tuples of JSON scalars (the shard/region keys
    built by :mod:`repro.verify.parallel`); values are
    :class:`VerificationResult` instances or plain JSON values.
    """

    #: Registry name of the backend ("memory", "journal", "sqlite", ...).
    backend_name: str = "base"
    #: True when independent handles on :attr:`spec` observe each
    #: other's writes (the sqlite backend) -- the gate for shipping the
    #: spec to pool/remote workers so they consult the store directly.
    shareable: bool = False

    def __init__(self, spec: Optional[str] = None):
        self.spec = spec
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # -- keyed results -------------------------------------------------
    def get(self, key: Tuple) -> Optional[Any]:
        raise NotImplementedError

    def put(self, key: Tuple, value: Any) -> None:
        raise NotImplementedError

    def scan(self, prefix: Tuple = ()) -> Iterator[Tuple[Tuple, Any]]:
        """Iterate ``(key, value)`` pairs whose key starts with ``prefix``."""
        raise NotImplementedError

    def claim(self, key: Tuple, ttl: Optional[float] = None) -> bool:
        """Try to announce "I am computing ``key``"; True on success.

        A granted claim is advisory and expires after ``ttl`` seconds
        (so a crashed claimant never wedges the sweep); :meth:`put` on
        the key releases it.  Backends without cross-process claim
        arbitration grant every request -- their callers already
        deduplicate within the process.
        """
        return True

    # -- epochs --------------------------------------------------------
    def record_epoch(
        self,
        epoch: SweepEpoch,
        shards: Optional[int] = None,
        shard_size: Optional[int] = None,
    ) -> None:
        raise NotImplementedError

    def epochs(self) -> List[SweepEpoch]:
        raise NotImplementedError

    # -- audit trail ---------------------------------------------------
    def record_run(self, run: RunRecord) -> None:
        raise NotImplementedError

    def runs(self, limit: Optional[int] = None) -> List[RunRecord]:
        """Audit records, oldest first; ``limit`` keeps the newest N."""
        raise NotImplementedError

    # -- shared plumbing -----------------------------------------------
    def share_spec(self) -> Optional[str]:
        """Spec workers may re-open for direct store access, if safe."""
        return self.spec if self.shareable else None

    def counters(self) -> Dict[str, Any]:
        """The observability block surfaced by ``verify --json``."""
        return {
            "backend": self.backend_name,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
        }

    def stats(self) -> Dict[str, Any]:
        return self.counters()

    def close(self) -> None:
        pass

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def wait_for(
    store: ResultStore,
    key: Tuple,
    execute,
    ttl: float = 60.0,
    poll: float = 0.02,
) -> Any:
    """Get-or-compute ``key`` with claim arbitration.

    The worker-side consult loop: return a stored value if present;
    otherwise try to claim the key and compute it.  When another
    claimant holds the key, poll for their result instead of
    recomputing -- if the claimant dies, the claim's TTL expires and
    this caller takes over.  This is what keeps two processes sweeping
    the same circuit against one shared store from double-executing.
    """
    hit = store.get(key)
    if hit is not None:
        return hit
    while True:
        if store.claim(key, ttl=ttl):
            value = execute()
            store.put(key, value)
            return value
        time.sleep(poll)
        hit = store.get(key)
        if hit is not None:
            return hit
