"""The ``stacked`` combinator: layered stores with backfill.

Replaces the ad-hoc ``StackedCache`` from PR 6 with a general
combinator over any number of :class:`~repro.store.base.ResultStore`
layers.  The canonical uses:

* service layer: ``StackedStore(sqlite_or_journal, memory_lru)`` --
  durable ground truth in front, memory speed on repeat sweeps;
* a request-scoped store in front of the server-wide one.

Lookups try layers in order; a hit at any layer is backfilled into
every *other* layer, so all layers converge on everything any of them
knows (the journal-vs-memory bidirectional backfill from PR 6, now for
any stack).  Writes, epoch records, and audit records go to every
layer.  Duck-typed layers with only ``get``/``put`` (the test spies)
still work: optional protocol methods are forwarded only where
present.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..verify.exhaustive import SweepEpoch
from .base import ResultStore, RunRecord

__all__ = ["StackedStore"]


class StackedStore(ResultStore):
    """Check layers in order, backfill on hit, write through to all.

    The stack does not own its layers: :meth:`close` is a no-op so a
    caller may stack a request-scoped store over a long-lived
    server-wide one without the request tearing the server store down.
    """

    backend_name = "stacked"

    def __init__(self, *layers: Any):
        layers = tuple(layer for layer in layers if layer is not None)
        if not layers:
            raise ValueError("StackedStore needs at least one layer")
        super().__init__(
            spec="stacked(%s)"
            % ",".join(getattr(l, "spec", None) or "?" for l in layers)
        )
        self.layers = layers

    @property
    def shareable(self) -> bool:  # type: ignore[override]
        return any(getattr(l, "shareable", False) for l in self.layers)

    def share_spec(self) -> Optional[str]:
        for layer in self.layers:
            spec = None
            if hasattr(layer, "share_spec"):
                spec = layer.share_spec()
            if spec is not None:
                return spec
        return None

    # -- keyed results -------------------------------------------------
    def get(self, key: Tuple) -> Optional[Any]:
        for i, layer in enumerate(self.layers):
            hit = layer.get(key)
            if hit is not None:
                self.hits += 1
                for j, other in enumerate(self.layers):
                    if j != i:
                        other.put(key, hit)
                return hit
        self.misses += 1
        return None

    def put(self, key: Tuple, value: Any) -> None:
        self.puts += 1
        for layer in self.layers:
            layer.put(key, value)

    def scan(self, prefix: Tuple = ()) -> Iterator[Tuple[Tuple, Any]]:
        seen = set()
        for layer in self.layers:
            if not hasattr(layer, "scan"):
                continue
            for key, value in layer.scan(prefix):
                if key not in seen:
                    seen.add(key)
                    yield key, value

    def claim(self, key: Tuple, ttl: Optional[float] = None) -> bool:
        # Arbitration belongs to the shared layer (there is at most one
        # that other processes can see); local-only stacks grant all.
        for layer in self.layers:
            if getattr(layer, "shareable", False):
                return layer.claim(key, ttl=ttl)
        return True

    # -- epochs / audit ------------------------------------------------
    def record_epoch(
        self,
        epoch: SweepEpoch,
        shards: Optional[int] = None,
        shard_size: Optional[int] = None,
    ) -> None:
        for layer in self.layers:
            if hasattr(layer, "record_epoch"):
                layer.record_epoch(epoch, shards=shards, shard_size=shard_size)

    def epochs(self) -> List[SweepEpoch]:
        seen: Dict[str, SweepEpoch] = {}
        for layer in self.layers:
            if hasattr(layer, "epochs"):
                for epoch in layer.epochs():
                    seen.setdefault(epoch.fingerprint(), epoch)
        return list(seen.values())

    def record_run(self, run: RunRecord) -> None:
        for layer in self.layers:
            if hasattr(layer, "record_run"):
                layer.record_run(run)

    def runs(self, limit: Optional[int] = None) -> List[RunRecord]:
        # The front layer is ground truth for the audit trail (every
        # record_run reached all layers anyway).
        for layer in self.layers:
            if hasattr(layer, "runs"):
                return layer.runs(limit)
        return []

    # -- introspection -------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        out = self.counters()
        out["layers"] = [
            layer.stats() if hasattr(layer, "stats") else {}
            for layer in self.layers
        ]
        return out

    def close(self) -> None:
        pass  # layers are owned by their creators
