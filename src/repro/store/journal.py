"""The ``journal`` backend: an append-only JSON-lines result store.

The durable sweep checkpoint from PR 6
(``repro.distributed.checkpoint.SweepCheckpoint``), adapted behind the
:class:`~repro.store.base.ResultStore` protocol -- the old class
remains as a thin alias.  A coordinator that dies mid-sweep (SIGKILL,
OOM, power) loses nothing: every released shard result is one JSON
line, keyed on the same content-addressed tuples every other backend
uses, so resume needs no new machinery -- journaled shards are skipped
and only the unfinished remainder is dispatched.

Record formats, one JSON object per line::

    {"type": "epoch", "fingerprint": "...", "epoch": {...},
     "shards": N, "shard_size": S}
    {"type": "result", "key": [...], "result": {"checked": ...,
     "failure_count": ..., "failures": [...], "truncated": ...}}
    {"type": "value", "key": [...], "value": <any JSON>}
    {"type": "run", "run": {...}}

``"result"`` is the PR-6 wire form for
:class:`~repro.verify.exhaustive.VerificationResult` records (old
journals load unchanged); ``"value"`` carries any other JSON value
(the per-region outcome dicts); ``"run"`` is one audit-trail record
per completed sweep.

Crash tolerance: writes are flushed (and by default fsynced) per
record, and the loader tolerates a torn trailing line -- the partial
record a SIGKILL mid-write leaves behind is counted and dropped, never
fatal.  Duplicate keys keep the first record (first-write-wins,
matching the coordinator's result accounting), so replaying a journal
is idempotent.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..verify.exhaustive import SweepEpoch
from .base import ResultStore, RunRecord, decode_value, encode_value

__all__ = ["JournalStore"]


class JournalStore(ResultStore):
    """Append-only JSON-lines store with first-write-wins semantics.

    ``fsync=True`` (the default) makes every record durable against
    power loss before ``put`` returns; pass ``False`` to trade that for
    speed when only process death matters.  Thread-safe: the service
    layer shares one journal across its sweep threads.  Not
    cross-process shareable -- two handles on one path each hold an
    append handle and neither sees the other's writes until reload;
    use the ``sqlite`` backend for shared stores.
    """

    backend_name = "journal"
    shareable = False

    def __init__(self, path: str, fsync: bool = True):
        super().__init__(spec=f"journal:{path}")
        self.path = path
        self.fsync = fsync
        self._lock = threading.RLock()
        self._results: Dict[Tuple, Any] = {}
        self._epochs: Dict[str, Dict[str, Any]] = {}
        self._runs: List[RunRecord] = []
        #: Records dropped on load: torn/corrupt lines and duplicate keys.
        self.torn = 0
        self.duplicates = 0
        self._load()
        self._fh = open(self.path, "ab")

    # -- journal I/O ---------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as fh:
            for raw in fh:
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    self._ingest(record)
                except (ValueError, KeyError, TypeError):
                    # A torn record (the line a SIGKILL mid-write left
                    # behind) or stray corruption: drop it -- the shard
                    # is simply treated as not done and re-executed.
                    self.torn += 1

    def _ingest(self, record: Dict[str, Any]) -> None:
        kind = record["type"]
        if kind in ("result", "value"):
            key = tuple(record["key"])
            if key in self._results:
                self.duplicates += 1
                return  # first write wins, like the coordinator
            self._results[key] = decode_value(record)
        elif kind == "epoch":
            self._epochs.setdefault(str(record["fingerprint"]), record)
        elif kind == "run":
            self._runs.append(RunRecord.from_dict(record["run"]))
        # Unknown record types are ignored: forward compatibility.

    def _append(self, record: Dict[str, Any]) -> None:
        data = json.dumps(record, separators=(",", ":")).encode("utf-8")
        self._fh.write(data + b"\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    # -- the store protocol --------------------------------------------
    def get(self, key: Tuple) -> Optional[Any]:
        with self._lock:
            hit = self._results.get(tuple(key))
            if hit is None:
                self.misses += 1
                return None
            self.hits += 1
            return hit

    def put(self, key: Tuple, value: Any) -> None:
        key = tuple(key)
        with self._lock:
            if key in self._results:
                return  # already durable; keep the journal append-only
            self._results[key] = value
            self.puts += 1
            record = {"type": "result", "key": list(key)}
            envelope = encode_value(value)
            if "result" in envelope:
                record["result"] = envelope["result"]
            else:
                record["type"] = "value"
                record["value"] = envelope["value"]
            self._append(record)

    def scan(self, prefix: Tuple = ()) -> Iterator[Tuple[Tuple, Any]]:
        prefix = tuple(prefix)
        with self._lock:
            snapshot = list(self._results.items())
        for key, value in snapshot:
            if key[: len(prefix)] == prefix:
                yield key, value

    def record_epoch(
        self,
        epoch: SweepEpoch,
        shards: Optional[int] = None,
        shard_size: Optional[int] = None,
    ) -> None:
        """Journal the sweep descriptor (once per distinct epoch)."""
        fp = epoch.fingerprint()
        with self._lock:
            if fp in self._epochs:
                return
            record: Dict[str, Any] = {
                "type": "epoch",
                "fingerprint": fp,
                "epoch": epoch.to_dict(),
            }
            if shards is not None:
                record["shards"] = shards
            if shard_size is not None:
                record["shard_size"] = shard_size
            self._epochs[fp] = record
            self._append(record)

    def record_run(self, run: RunRecord) -> None:
        with self._lock:
            self._runs.append(run)
            self._append({"type": "run", "run": run.to_dict()})

    def runs(self, limit: Optional[int] = None) -> List[RunRecord]:
        with self._lock:
            out = list(self._runs)
        return out[-limit:] if limit else out

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def keys(self) -> List[Tuple]:
        with self._lock:
            return list(self._results)

    def epochs(self) -> List[SweepEpoch]:
        with self._lock:
            return [
                SweepEpoch.from_dict(rec["epoch"])
                for rec in self._epochs.values()
            ]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "backend": self.backend_name,
                "path": self.path,
                "results": len(self._results),
                "epochs": len(self._epochs),
                "runs": len(self._runs),
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "torn": self.torn,
                "duplicates": self.duplicates,
            }

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
                self._fh.close()

    def __enter__(self) -> "JournalStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
