"""Published numbers from the paper, transcribed for comparison.

Benches print measured values next to these so the reproduction quality
is visible row by row.  Sources:

* :data:`TABLE7` -- 2-sort(B) gate count / post-layout area [µm²] /
  pre-layout delay [ps] for the three designs (paper Table 7; Figure 1
  plots the same data for "This paper" vs. [2]).
* :data:`TABLE8` -- full sorting networks, n ∈ {4, 7, 10#, 10d},
  B ∈ {2, 4, 8, 16} (paper Table 8).
* :data:`HEADLINE` -- the abstract's improvement claims, which derive
  from the 10-sortd/B=16 row of Table 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class PublishedCost:
    """One (design, configuration) cell of a paper table."""

    gates: int
    area_um2: float
    delay_ps: float


#: Design labels used across the paper and this library.
DESIGNS = ("this-paper", "date17", "bincomp")

#: Table 7: ``TABLE7[design][B]``.
TABLE7: Dict[str, Dict[int, PublishedCost]] = {
    "this-paper": {
        2: PublishedCost(13, 17.486, 119),
        4: PublishedCost(55, 73.752, 362),
        8: PublishedCost(169, 227.29, 516),
        16: PublishedCost(407, 548.016, 805),
    },
    "date17": {
        2: PublishedCost(34, 49.42, 268),
        4: PublishedCost(160, 230.3, 498),
        8: PublishedCost(504, 723.52, 827),
        16: PublishedCost(1344, 1928.262, 1233),
    },
    "bincomp": {
        2: PublishedCost(8, 15.582, 145),
        4: PublishedCost(19, 34.58, 288),
        8: PublishedCost(41, 73.752, 477),
        16: PublishedCost(81, 151.648, 422),
    },
}

#: Table 8: ``TABLE8[design][network][B]``; network labels as in the paper.
TABLE8: Dict[str, Dict[str, Dict[int, PublishedCost]]] = {
    "this-paper": {
        "4-sort": {
            2: PublishedCost(65, 87.402, 357),
            4: PublishedCost(275, 368.641, 640),
            8: PublishedCost(845, 1136.184, 1396),
            16: PublishedCost(2035, 2739.961, 2069),
        },
        "7-sort": {
            2: PublishedCost(208, 279.741, 714),
            4: PublishedCost(880, 1179.528, 1014),
            8: PublishedCost(2704, 3636.08, 1921),
            16: PublishedCost(6512, 8767.374, 3396),
        },
        "10-sort#": {
            2: PublishedCost(377, 506.912, 912),
            4: PublishedCost(1595, 2137.905, 1235),
            8: PublishedCost(4901, 6590.283, 2179),
            16: PublishedCost(11803, 15891.12, 4030),
        },
        "10-sortd": {
            2: PublishedCost(403, 541.968, 833),
            4: PublishedCost(1705, 2285.514, 1133),
            8: PublishedCost(5239, 7044.541, 2059),
            16: PublishedCost(12617, 16987.194, 3844),
        },
    },
    "date17": {
        "4-sort": {
            2: PublishedCost(170, 247.016, 846),
            4: PublishedCost(800, 1151.472, 1558),
            8: PublishedCost(2520, 3617.67, 2394),
            16: PublishedCost(6720, 9640.75, 3396),
        },
        "7-sort": {
            2: PublishedCost(544, 790.44, 1715),
            4: PublishedCost(2560, 3684.541, 3147),
            8: PublishedCost(8064, 11576.32, 4715),
            16: PublishedCost(21504, 30849.875, 6415),
        },
        "10-sort#": {
            2: PublishedCost(986, 1432.62, 2285),
            4: PublishedCost(4640, 6678.294, 4207),
            8: PublishedCost(14616, 20982.542, 6252),
            16: PublishedCost(38976, 55916.448, 8437),
        },
        "10-sortd": {
            2: PublishedCost(1054, 1531.467, 2010),
            4: PublishedCost(4960, 7138.74, 3681),
            8: PublishedCost(15624, 22429.176, 5481),
            16: PublishedCost(41664, 59772.132, 7458),
        },
    },
    "bincomp": {
        "4-sort": {
            2: PublishedCost(40, 77.91, 478),
            4: PublishedCost(95, 172.935, 906),
            8: PublishedCost(205, 368.641, 1475),
            16: PublishedCost(405, 530.67, 1298),
        },
        "7-sort": {
            2: PublishedCost(128, 249.326, 953),
            4: PublishedCost(304, 553.28, 1810),
            8: PublishedCost(656, 1179.528, 2948),
            16: PublishedCost(1296, 2425.99, 2600),
        },
        "10-sort#": {
            2: PublishedCost(232, 451.815, 1284),
            4: PublishedCost(551, 1002.848, 2429),
            8: PublishedCost(1189, 2137.905, 3945),
            16: PublishedCost(2349, 4397.085, 3474),
        },
        "10-sortd": {
            2: PublishedCost(248, 483.0, 1145),
            4: PublishedCost(589, 1072.099, 2143),
            8: PublishedCost(1271, 2285.514, 3470),
            16: PublishedCost(2511, 4700.304, 3050),
        },
    },
}

#: Comparator counts behind Table 8 (sanity anchors: gates factorise as
#: ``size × gates(2-sort(B))`` for the MC designs).
NETWORK_SIZES = {"4-sort": 5, "7-sort": 16, "10-sort#": 29, "10-sortd": 31}

#: Abstract headline: improvements over [2] at 10 channels, B=16
#: (from the 10-sortd row): delay -48.46%, area -71.58%.
HEADLINE = {"delay_improvement_pct": 48.46, "area_improvement_pct": 71.58}


def improvement_pct(ours: float, baseline: float) -> float:
    """Relative improvement of ``ours`` vs ``baseline`` in percent."""
    if baseline == 0:
        raise ValueError("baseline must be nonzero")
    return (1.0 - ours / baseline) * 100.0
