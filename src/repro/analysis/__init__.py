"""Measurement, comparison, and reporting against the paper's tables."""

from .cost import ComparisonRow
from .published import (
    DESIGNS,
    HEADLINE,
    NETWORK_SIZES,
    TABLE7,
    TABLE8,
    PublishedCost,
    improvement_pct,
)
from .compare import (
    PAPER_WIDTHS,
    measure_network,
    measure_two_sort,
    table7_rows,
    table8_rows,
)
from .tables import render_grouped, render_table

__all__ = [
    "ComparisonRow",
    "DESIGNS",
    "HEADLINE",
    "NETWORK_SIZES",
    "TABLE7",
    "TABLE8",
    "PublishedCost",
    "improvement_pct",
    "PAPER_WIDTHS",
    "measure_network",
    "measure_two_sort",
    "table7_rows",
    "table8_rows",
    "render_grouped",
    "render_table",
]
