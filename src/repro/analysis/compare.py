"""High-level measurement drivers for the paper's tables and figure.

These functions build the relevant circuits, measure them, and pair the
results with the published numbers -- the shared machinery behind the
benchmark harness (``benchmarks/``) and the examples.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..circuits.analysis import report
from ..circuits.library import DEFAULT_LIBRARY, CellLibrary
from ..networks.build import TWO_SORT_BUILDERS, build_sorting_circuit
from ..networks.topologies import TABLE8_NETWORKS
from .cost import ComparisonRow
from .published import TABLE7, TABLE8, PublishedCost

#: The bit widths evaluated throughout the paper's Section 6.
PAPER_WIDTHS = (2, 4, 8, 16)


def measure_two_sort(
    design: str, width: int, library: CellLibrary = DEFAULT_LIBRARY
) -> ComparisonRow:
    """Build and measure one 2-sort(B); pair with its Table 7 cell."""
    builder = TWO_SORT_BUILDERS[design]
    circuit = builder(width)
    published: Optional[PublishedCost] = TABLE7.get(design, {}).get(width)
    return ComparisonRow(
        label=f"{design} 2-sort({width})",
        measured=report(circuit, library),
        published=published,
    )


def table7_rows(
    widths=PAPER_WIDTHS, designs=("this-paper", "date17", "bincomp"),
    library: CellLibrary = DEFAULT_LIBRARY,
) -> List[ComparisonRow]:
    """All rows of Table 7 (also the data series of Figure 1)."""
    return [
        measure_two_sort(design, width, library)
        for width in widths
        for design in designs
    ]


def measure_network(
    design: str,
    network_label: str,
    width: int,
    library: CellLibrary = DEFAULT_LIBRARY,
) -> ComparisonRow:
    """Build and measure one full sorting circuit; pair with Table 8."""
    network = TABLE8_NETWORKS[network_label]
    circuit = build_sorting_circuit(network, width, two_sort=design)
    published = TABLE8.get(design, {}).get(network_label, {}).get(width)
    return ComparisonRow(
        label=f"{design} {network_label} B={width}",
        measured=report(circuit, library),
        published=published,
    )


def table8_rows(
    widths=PAPER_WIDTHS,
    designs=("this-paper", "date17", "bincomp"),
    networks=("4-sort", "7-sort", "10-sort#", "10-sortd"),
    library: CellLibrary = DEFAULT_LIBRARY,
) -> List[ComparisonRow]:
    """All rows of Table 8, in the paper's (B, network, design) order."""
    return [
        measure_network(design, network_label, width, library)
        for width in widths
        for network_label in networks
        for design in designs
    ]
