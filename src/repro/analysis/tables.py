"""Plain-text table rendering in the layout of the paper's tables.

Used by the benchmark harness to print regenerated Table 7 / Table 8 /
Figure 1 data as aligned text, one paper artifact per bench.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table with a rule under headers."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def render_grouped(
    title: str,
    groups: Sequence[tuple],
) -> str:
    """Render ``(group_heading, table_text)`` sections under one title."""
    parts = [title, "=" * len(title)]
    for heading, body in groups:
        parts.append("")
        parts.append(heading)
        parts.append(body)
    return "\n".join(parts)
