"""Measured-vs-published cost rows for the reproduction benches.

Wraps :func:`repro.circuits.analysis.report` results together with the
corresponding :class:`~repro.analysis.published.PublishedCost`, plus
relative deviations, so every bench prints the evidence needed to judge
the reproduction (exactness of gate counts, closeness of area, shape of
delay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..circuits.analysis import CostReport
from .published import PublishedCost


@dataclass(frozen=True)
class ComparisonRow:
    """One measured/published pairing (one cell group of a paper table)."""

    label: str
    measured: CostReport
    published: Optional[PublishedCost]

    @property
    def gates_exact(self) -> Optional[bool]:
        if self.published is None:
            return None
        return self.measured.gate_count == self.published.gates

    @property
    def area_deviation_pct(self) -> Optional[float]:
        if self.published is None or self.published.area_um2 == 0:
            return None
        return (
            self.measured.area_um2 / self.published.area_um2 - 1.0
        ) * 100.0

    @property
    def delay_deviation_pct(self) -> Optional[float]:
        if self.published is None or self.published.delay_ps == 0:
            return None
        return (
            self.measured.delay_ps / self.published.delay_ps - 1.0
        ) * 100.0

    def format(self) -> str:
        """A fixed-width report line: measured values, then paper values."""
        m = self.measured
        line = (
            f"{self.label:<28} {m.gate_count:>6} gates "
            f"{m.area_um2:>11.3f} µm² {m.delay_ps:>7.0f} ps"
        )
        if self.published is not None:
            p = self.published
            marks = "=" if self.gates_exact else "≠"
            line += (
                f"   | paper: {p.gates:>6}{marks} {p.area_um2:>11.3f} "
                f"{p.delay_ps:>6.0f}"
            )
        return line
