"""Clients for the JSON-lines service protocol.

:class:`AsyncServiceClient` speaks the protocol natively inside an
event loop; :class:`ServiceClient` is the blocking wrapper (it owns a
private event loop), used by the ``submit``/``status`` CLI subcommands
and any synchronous scripting.

A client holds one connection and runs one op at a time on it; open
more clients for pipelining.  Both clients raise :class:`ServiceError`
when the server answers ``{"ok": false}``.
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator, Dict, Iterator, Optional, Union

from ..distributed.wire import decode_line, encode_line
from .jobs import Request, SortRequest, VerifyRequest, request_from_dict
from .server import DEFAULT_HOST, DEFAULT_PORT

__all__ = ["AsyncServiceClient", "ServiceClient", "ServiceError"]

RequestLike = Union[Request, Dict[str, Any]]


class ServiceError(RuntimeError):
    """The server reported a failure (or the connection dropped)."""


def _as_request_dict(request: RequestLike) -> Dict[str, Any]:
    if isinstance(request, (VerifyRequest, SortRequest)):
        return request.to_dict()
    if isinstance(request, dict):
        # Validate client-side too: catches typos before a round-trip.
        return request_from_dict(request).to_dict()
    raise TypeError(
        f"request must be a VerifyRequest, SortRequest, or dict, "
        f"got {type(request).__name__}"
    )


class AsyncServiceClient:
    """Asyncio client: ``async with AsyncServiceClient(port=p) as c: ...``"""

    def __init__(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "AsyncServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc: Any) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    async def _send(self, payload: Dict[str, Any]) -> None:
        if self._writer is None:
            await self.connect()
        assert self._writer is not None
        self._writer.write(encode_line(payload))
        await self._writer.drain()

    async def _recv(self) -> Dict[str, Any]:
        assert self._reader is not None, "not connected"
        line = await self._reader.readline()
        if not line:
            raise ServiceError("connection closed by server")
        try:
            msg = decode_line(line)
        except ValueError as exc:
            raise ServiceError(f"malformed response: {exc}") from None
        if not msg.get("ok"):
            raise ServiceError(msg.get("error", "unknown server error"))
        return msg

    async def call(self, **payload: Any) -> Dict[str, Any]:
        await self._send(payload)
        return await self._recv()

    # ------------------------------------------------------------------
    async def ping(self) -> bool:
        return bool((await self.call(op="ping")).get("pong"))

    async def submit(self, request: RequestLike) -> str:
        """Submit a job; returns its id immediately."""
        response = await self.call(
            op="submit", request=_as_request_dict(request)
        )
        return response["id"]

    async def status(self, job_id: str) -> Dict[str, Any]:
        return await self.call(op="status", id=job_id)

    async def result(self, job_id: str) -> Dict[str, Any]:
        """Block until the job is terminal; returns state + payload."""
        return await self.call(op="result", id=job_id)

    async def cancel(self, job_id: str) -> bool:
        return bool((await self.call(op="cancel", id=job_id)).get("cancelled"))

    async def jobs(self) -> Dict[str, Any]:
        return await self.call(op="list")

    async def stream(self, job_id: str) -> AsyncIterator[Dict[str, Any]]:
        """Yield the job's events (progress/failure/state) through ``done``."""
        await self._send({"op": "stream", "id": job_id})
        while True:
            msg = await self._recv()
            event = msg.get("event")
            if not isinstance(event, dict):
                raise ServiceError(f"malformed stream frame: {msg!r}")
            yield event
            if event.get("event") == "done":
                return


class ServiceClient:
    """Blocking wrapper: same surface, runs a private event loop.

    Safe anywhere *except* inside a running event loop (use
    :class:`AsyncServiceClient` there).
    """

    def __init__(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT):
        self._loop = asyncio.new_event_loop()
        self._client = AsyncServiceClient(host, port)

    def _run(self, coro: Any) -> Any:
        return self._loop.run_until_complete(coro)

    def connect(self) -> "ServiceClient":
        try:
            self._run(self._client.connect())
        except BaseException:
            # `with ServiceClient(...) as c` never reaches __exit__ when
            # connect fails -- release the private loop (its selector fd)
            # here instead of leaking one per retry.
            self._loop.close()
            raise
        return self

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._run(self._client.aclose())
        finally:
            self._loop.close()

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return self._run(self._client.ping())

    def submit(self, request: RequestLike) -> str:
        return self._run(self._client.submit(request))

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._run(self._client.status(job_id))

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._run(self._client.result(job_id))

    def cancel(self, job_id: str) -> bool:
        return self._run(self._client.cancel(job_id))

    def jobs(self) -> Dict[str, Any]:
        return self._run(self._client.jobs())

    def stream(self, job_id: str) -> Iterator[Dict[str, Any]]:
        agen = self._client.stream(job_id)
        while True:
            try:
                yield self._run(agen.__anext__())
            except StopAsyncIteration:
                return

    def wait_for(self, job_id: str) -> Dict[str, Any]:
        """Stream to completion (discarding events) and fetch the result."""
        for _ in self.stream(job_id):
            pass
        return self.result(job_id)
