"""Job-oriented async front-end over the sharded verification engine.

The public API redesign: instead of blocking on
:func:`~repro.verify.parallel.verify_two_sort_sharded` or
:func:`~repro.networks.simulate.sort_words_batch`, clients *submit*
typed requests to a :class:`JobManager` and get back a :class:`Job`
they can poll, stream, and cancel while other jobs run concurrently.

Layering:

* :class:`VerifyRequest` / :class:`SortRequest` are the typed,
  JSON-round-trippable request dataclasses.  Their ``run()`` method is
  the one synchronous code path -- the CLI calls it directly, the
  JobManager calls it on a worker thread -- so a served job and a
  one-shot CLI run are the same computation by construction.
* :class:`JobManager` drives ``run()`` shard-by-shard through asyncio:
  the blocking sweep is offloaded to a thread pool, per-shard progress
  re-enters the event loop via ``call_soon_threadsafe``, and
  cancellation is a ``threading.Event`` the sweep polls between shards
  (:class:`~repro.verify.parallel.SweepCancelled`).
* Progress, failures, and state changes are published as event dicts,
  buffered per job (late subscribers replay from the start) and fanned
  out to any number of ``async for`` consumers.

The manager owns a :class:`~repro.service.cache.ShardCache`, so
re-verifying an unedited circuit skips clean shards; the hit/miss
counters are part of :meth:`JobManager.stats`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from enum import Enum
from functools import partial
from typing import (
    Any,
    AsyncIterator,
    Callable,
    ClassVar,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

from ..backends import known_backend_names
from ..core.two_sort import build_two_sort
from ..graycode.valid import validate
from ..networks.simulate import ENGINES, sort_words_batch
from ..networks.topologies import best_known
from ..ternary.word import Word
from ..verify.exhaustive import VerificationResult
from ..verify.parallel import (
    SweepCancelled,
    available_executors,
    verify_two_sort_sharded,
)
from .cache import ShardCache

__all__ = [
    "Job",
    "JobManager",
    "JobState",
    "MAX_VERIFY_WIDTH",
    "SortRequest",
    "VerifyRequest",
    "request_from_dict",
]

#: Exhaustive verification stays tractable up to B=13 (268M pairs);
#: beyond that 4^B outgrows any single job.
MAX_VERIFY_WIDTH = 13

#: ``on_shard`` as seen by requests (done, total, shard payload).
OnShard = Callable[[int, int, Any], None]
ShouldStop = Callable[[], bool]


def _validate_sharding(
    jobs: Optional[int],
    shard_size: Optional[int],
    executor: Optional[str],
    backend: Optional[str],
) -> None:
    if jobs is not None and jobs < 0:
        raise ValueError(
            f"jobs must be >= 0 (0 = one worker per core), got {jobs}"
        )
    if shard_size is not None and shard_size <= 0:
        raise ValueError(
            f"shard_size must be a positive lane count, got {shard_size}"
        )
    if executor is not None and executor not in available_executors():
        raise ValueError(
            f"unknown executor {executor!r}; "
            f"available: {available_executors()}"
        )
    if backend is not None and backend not in known_backend_names():
        raise ValueError(
            f"unknown plane backend {backend!r}; "
            f"available: {known_backend_names()}"
        )


@dataclass(frozen=True)
class VerifyRequest:
    """Exhaustively verify 2-sort(``width``) against the closure spec.

    The service twin of ``python -m repro verify``: same parameters,
    same semantics (``jobs=0`` means one worker per core), same result.

    ``checkpoint`` names a durable shard journal
    (:class:`repro.distributed.checkpoint.SweepCheckpoint`) on the
    *executing* host: shards already journaled there are skipped, fresh
    ones are appended as they complete, so a killed job resubmitted
    with the same checkpoint resumes instead of restarting.

    ``store`` names a unified result store (a
    :func:`repro.store.open_store` spec, e.g. ``sqlite:results.db``) on
    the executing host.  Unlike a checkpoint it keys results per
    output-cone *region*, so re-verifying after a circuit edit only
    executes the shards of the cones the edit touched, and every
    completed sweep appends an audit record.  Mutually exclusive with
    ``checkpoint`` (the journal alias of the same machinery).
    """

    width: int
    jobs: int = 1
    shard_size: Optional[int] = None
    executor: Optional[str] = None
    backend: Optional[str] = None
    checkpoint: Optional[str] = None
    store: Optional[str] = None

    kind: ClassVar[str] = "verify"

    def validate(self) -> None:
        if not 1 <= self.width <= MAX_VERIFY_WIDTH:
            raise ValueError(
                f"width must be in 1..{MAX_VERIFY_WIDTH}, got {self.width} "
                f"(beyond B={MAX_VERIFY_WIDTH} the 4^B pair domain outgrows "
                f"exhaustive verification)"
            )
        if self.checkpoint is not None and (
            not isinstance(self.checkpoint, str) or not self.checkpoint
        ):
            raise ValueError(
                "checkpoint must be a non-empty journal path"
            )
        if self.store is not None and (
            not isinstance(self.store, str) or not self.store
        ):
            raise ValueError("store must be a non-empty store spec")
        if self.store is not None and self.checkpoint is not None:
            raise ValueError(
                "checkpoint and store are mutually exclusive "
                "(a checkpoint is the journal store; pass one or the other)"
            )
        _validate_sharding(self.jobs, self.shard_size, self.executor, self.backend)

    def describe(self) -> str:
        return f"verify 2-sort({self.width})"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "width": self.width}
        if self.jobs != 1:
            out["jobs"] = self.jobs
        for name in ("shard_size", "executor", "backend", "checkpoint", "store"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    def run(
        self,
        on_shard: Optional[OnShard] = None,
        should_stop: Optional[ShouldStop] = None,
        cache: Optional[ShardCache] = None,
        store: Optional[Any] = None,
    ) -> VerificationResult:
        """The single synchronous code path (CLI, service, and tests).

        ``store`` is an already-open :class:`repro.store.base.ResultStore`
        handle (the CLI opens ``--store`` itself so it can report the
        handle's counters afterwards); when it is None but the request
        carries a ``store`` spec, the store is opened -- and closed --
        here.  A caller-provided ``cache`` (the server-wide memory
        store) is layered behind the per-request store so jobs on one
        server still share warm results.
        """
        self.validate()
        circuit = build_two_sort(self.width)
        opened = None
        journal = None
        if store is None and self.store is not None:
            from ..store import open_store

            store = opened = open_store(self.store)
        if self.checkpoint is not None:
            # Imported lazily: the checkpoint layer must not make every
            # service import pay for repro.distributed.
            from ..distributed.checkpoint import StackedCache, SweepCheckpoint

            journal = SweepCheckpoint(self.checkpoint)
            cache = (
                StackedCache(journal, cache) if cache is not None else journal
            )
        if store is not None and cache is not None:
            from ..store import StackedStore

            store = StackedStore(store, cache)
            cache = None
        try:
            return verify_two_sort_sharded(
                circuit,
                self.width,
                jobs=self.jobs or None,
                shard_size=self.shard_size,
                executor=self.executor,
                backend=self.backend,
                on_shard=on_shard,
                should_stop=should_stop,
                cache=cache,
                store=store,
            )
        finally:
            if journal is not None:
                journal.close()
            if opened is not None:
                opened.close()

    def result_to_dict(self, result: VerificationResult) -> Dict[str, Any]:
        return result.to_dict()


@dataclass(frozen=True)
class SortRequest:
    """Sort batches of valid Gray-code words through the paper's network.

    ``vectors`` carries words as plain strings (the JSON interchange
    form); each inner tuple is one measurement vector.  All vectors
    must have the same channel count and word width.
    """

    vectors: Tuple[Tuple[str, ...], ...]
    engine: str = "compiled"
    jobs: int = 1
    shard_size: Optional[int] = None
    executor: Optional[str] = None
    backend: Optional[str] = None

    kind: ClassVar[str] = "sort"

    @classmethod
    def single(cls, values: List[str], **kwargs: Any) -> "SortRequest":
        """One measurement vector (the CLI ``sort`` form)."""
        return cls(vectors=(tuple(values),), **kwargs)

    def validate(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown simulation engine {self.engine!r}; "
                f"available: {sorted(ENGINES)}"
            )
        if self.backend is not None and self.engine != "compiled":
            raise ValueError(
                "backend selects a plane representation, which only the "
                f"compiled engine uses (got engine={self.engine!r})"
            )
        _validate_sharding(self.jobs, self.shard_size, self.executor, self.backend)
        if not self.vectors:
            raise ValueError("sort request needs at least one vector")
        channels = {len(v) for v in self.vectors}
        if len(channels) != 1:
            raise ValueError(
                f"all vectors must have the same channel count, got {sorted(channels)}"
            )
        widths = {len(s) for v in self.vectors for s in v}
        if len(widths) > 1:
            raise ValueError("all inputs must share one width")

    def describe(self) -> str:
        n = len(self.vectors)
        ch = len(self.vectors[0]) if self.vectors else 0
        return f"sort {n} vector(s) x {ch} channel(s)"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "vectors": [list(v) for v in self.vectors],
            "engine": self.engine,
        }
        if self.jobs != 1:
            out["jobs"] = self.jobs
        for name in ("shard_size", "executor", "backend"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    def run(
        self,
        on_shard: Optional[OnShard] = None,
        should_stop: Optional[ShouldStop] = None,
        cache: Optional[ShardCache] = None,
    ) -> List[List[Word]]:
        """Sort every vector; identical to the CLI ``sort`` semantics.

        ``cache`` is accepted for interface uniformity and ignored --
        sort workloads have no shard-stable key to cache on.
        """
        self.validate()
        words = [[validate(Word(s)) for s in vec] for vec in self.vectors]
        network = best_known(len(words[0]))
        return sort_words_batch(
            network,
            words,
            engine=self.engine,
            jobs=self.jobs,
            shard_size=self.shard_size,
            executor=self.executor,
            backend=self.backend,
            on_shard=on_shard,
            should_stop=should_stop,
        )

    def result_to_dict(self, result: List[List[Word]]) -> Dict[str, Any]:
        return {"vectors": [[str(w) for w in row] for row in result]}


Request = Union[VerifyRequest, SortRequest]

_REQUEST_KINDS: Dict[str, type] = {
    VerifyRequest.kind: VerifyRequest,
    SortRequest.kind: SortRequest,
}


def request_from_dict(data: Dict[str, Any]) -> Request:
    """Rebuild a typed request from its wire form (strict on fields)."""
    if not isinstance(data, dict):
        raise ValueError(f"request must be a JSON object, got {type(data).__name__}")
    data = dict(data)
    kind = data.pop("kind", None)
    try:
        cls = _REQUEST_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown request kind {kind!r}; available: {sorted(_REQUEST_KINDS)}"
        ) from None
    fields = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - fields
    if unknown:
        raise ValueError(
            f"unknown {kind} request field(s): {sorted(unknown)}"
        )
    if cls is SortRequest and "vectors" in data:
        vectors = data["vectors"]
        # A flat ["0110", ...] would iterate char-by-char into width-1
        # words and "succeed" with garbage -- demand the nested shape.
        if not isinstance(vectors, (list, tuple)) or any(
            not isinstance(v, (list, tuple)) for v in vectors
        ):
            raise ValueError(
                "vectors must be a list of lists of strings "
                "(one inner list per measurement vector)"
            )
        data["vectors"] = tuple(tuple(str(s) for s in v) for v in vectors)
    request = cls(**data)
    request.validate()
    return request


# ----------------------------------------------------------------------
# Job lifecycle
# ----------------------------------------------------------------------
class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

#: Event-history bounds: a running B=13 sweep publishes ~2.6k progress
#: events, so the running cap never bites normal jobs; after a job
#: finishes only a short tail (always including ``done``) is kept, so
#: retained terminal jobs cost O(1) memory each.
EVENTS_KEEP_RUNNING = 8192
EVENTS_KEEP_TERMINAL = 32


@dataclass
class JobProgress:
    """Cumulative per-shard counters, updated as shards finish."""

    shards_done: int = 0
    shards_total: int = 0
    checked: int = 0
    failure_count: int = 0
    items_done: int = 0  # sort jobs: vectors sorted so far

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class Job:
    """One submitted request and everything observable about it.

    Created by :meth:`JobManager.submit`; not constructed directly.
    All mutation happens on the manager's event loop, so readers on
    that loop see a consistent snapshot.
    """

    def __init__(self, job_id: str, request: Request):
        self.id = job_id
        self.request = request
        self.state = JobState.QUEUED
        self.progress = JobProgress()
        self.result: Any = None
        self.error: Optional[str] = None
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        #: Ordered event history; late stream subscribers replay it.
        #: Bounded: the oldest events are compacted away past
        #: ``EVENTS_KEEP_RUNNING`` (and down to ``EVENTS_KEEP_TERMINAL``
        #: once the job finishes); ``events_dropped`` counts them so
        #: streamers can skip forward instead of misindexing.
        self.events: List[Dict[str, Any]] = []
        self.events_dropped = 0
        self._cancel = threading.Event()
        self._done = asyncio.Event()
        self._changed = asyncio.Event()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def status(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.request.kind,
            "request": self.request.to_dict(),
            "state": self.state.value,
            "progress": self.progress.to_dict(),
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
        }

    def result_payload(self) -> Optional[Dict[str, Any]]:
        if self.result is None:
            return None
        return self.request.result_to_dict(self.result)


class JobManager:
    """Submits, schedules, observes, and cancels jobs on one event loop.

    ``jobs`` bounds how many submitted jobs *run* concurrently (the
    rest wait in queue order); each running job occupies one thread of
    an internal pool and may itself fan out over process workers via
    its request's ``jobs``/``executor`` fields.  Constructed and used
    from within a running event loop.
    """

    def __init__(
        self,
        jobs: int = 2,
        cache_size: int = 8192,
        default_backend: Optional[str] = None,
        keep_finished: int = 256,
        store: Optional[Any] = None,
    ):
        self.max_jobs = max(1, jobs)
        self.default_backend = default_backend
        #: Terminal jobs retained for status/result queries; beyond
        #: this the oldest are evicted so a long-lived server doesn't
        #: accumulate every result and event history forever.
        self.keep_finished = max(1, keep_finished)
        #: The server-wide result store every job consults.  By default
        #: an in-process LRU; with ``store`` (an open
        #: :class:`~repro.store.base.ResultStore`, e.g. ``serve
        #: --store``) a durable backend fronted by that LRU, so results
        #: survive restarts and are shared with CLI runs against the
        #: same path.  ``cache`` is the historical alias for the same
        #: object.
        memory = ShardCache(maxsize=cache_size)
        if store is not None:
            from ..store import StackedStore

            self.store: Any = StackedStore(store, memory)
        else:
            self.store = memory
        self.cache = self.store
        self._jobs: Dict[str, Job] = {}
        self._sem = asyncio.Semaphore(self.max_jobs)
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_jobs, thread_name_prefix="repro-job"
        )
        self._tasks: set = set()
        self._seq = itertools.count(1)

    # -- accounting ----------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        return self.cache.misses

    def stats(self) -> Dict[str, Any]:
        by_state: Dict[str, int] = {}
        for job in self._jobs.values():
            by_state[job.state.value] = by_state.get(job.state.value, 0) + 1
        return {
            "jobs": by_state,
            "max_jobs": self.max_jobs,
            "cache": self.cache.stats(),
            # The uniform observability block (same shape as the CLI's
            # `verify --json` store section), including audit counters.
            "store": dict(
                self.store.counters(),
                runs=len(self.store.runs() or []),
            ),
        }

    # -- submission / lookup -------------------------------------------
    def submit(self, request: Request) -> Job:
        """Validate, enqueue, and start driving a request; returns its Job."""
        if (
            self.default_backend is not None
            and request.backend is None
            # Only requests that *use* a plane backend: forcing one onto
            # e.g. an fsm-engine sort would turn it invalid.
            and (request.kind == "verify" or getattr(request, "engine", None)
                 == "compiled")
        ):
            request = dataclasses.replace(request, backend=self.default_backend)
        request.validate()  # fail fast, before a job exists
        job_id = f"j{next(self._seq):04d}-{uuid.uuid4().hex[:6]}"
        job = Job(job_id, request)
        self._jobs[job.id] = job
        self._publish(job, {"event": "state", "state": JobState.QUEUED.value})
        task = asyncio.get_running_loop().create_task(self._drive(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def list_jobs(self) -> List[Dict[str, Any]]:
        return [job.status() for job in self._jobs.values()]

    async def wait(self, job_id: str) -> Job:
        job = self.get(job_id)
        await job._done.wait()
        return job

    def cancel(self, job_id: str) -> bool:
        """Request cooperative cancellation; True if the job could still stop.

        A queued job is finalised immediately; a running one stops at
        the next shard boundary.  Terminal jobs return False.
        """
        job = self.get(job_id)
        if job.terminal:
            return False
        job._cancel.set()
        if job.state is JobState.QUEUED:
            self._finish(job, JobState.CANCELLED)
        return True

    # -- event stream --------------------------------------------------
    async def stream(self, job_id: str) -> AsyncIterator[Dict[str, Any]]:
        """Replay a job's event history, then follow it live to the end.

        Yields event dicts in publish order and returns after the
        terminal ``done`` event -- the ``async for`` failure/progress
        stream.  Any number of consumers may stream one job.  Event
        history is bounded (:data:`EVENTS_KEEP_RUNNING` /
        :data:`EVENTS_KEEP_TERMINAL`), so a consumer that subscribes
        very late or falls far behind skips the compacted-away prefix;
        the terminal event is always delivered.
        """
        job = self.get(job_id)
        pos = 0  # absolute event index (compaction-aware)
        while True:
            base = job.events_dropped
            if pos < base:
                pos = base  # prefix compacted away; skip forward
            if pos - base < len(job.events):
                event = job.events[pos - base]
                pos += 1
                yield event
                if event.get("event") == "done":
                    return
                continue
            # No await between the length check and clear(): publishes
            # only happen on this loop, so no event can slip past.
            job._changed.clear()
            await job._changed.wait()

    # -- internals -----------------------------------------------------
    def _publish(self, job: Job, event: Dict[str, Any]) -> None:
        event = dict(event)
        event["id"] = job.id
        event["ts"] = time.time()
        job.events.append(event)
        if len(job.events) > EVENTS_KEEP_RUNNING:
            self._compact_events(job, EVENTS_KEEP_RUNNING)
        job._changed.set()

    @staticmethod
    def _compact_events(job: Job, keep: int) -> None:
        excess = len(job.events) - keep
        if excess > 0:
            del job.events[:excess]
            job.events_dropped += excess

    def _finish(self, job: Job, state: JobState) -> None:
        job.state = state
        job.finished = time.time()
        event: Dict[str, Any] = {
            "event": "done",
            "state": state.value,
            "progress": job.progress.to_dict(),
        }
        if job.error is not None:
            event["error"] = job.error
        self._publish(job, event)
        job._done.set()
        # Terminal jobs keep only a short event tail (ending in `done`),
        # so the retained-job window is O(1) memory per job.
        self._compact_events(job, EVENTS_KEEP_TERMINAL)
        self._evict_finished()

    def _evict_finished(self) -> None:
        """Drop the oldest terminal jobs past the retention bound."""
        terminal = [j for j in self._jobs.values() if j.terminal]
        for job in terminal[: max(0, len(terminal) - self.keep_finished)]:
            del self._jobs[job.id]

    def _on_shard(self, job: Job, done: int, total: int, payload: Any) -> None:
        """Runs on the event loop (scheduled from the job's thread)."""
        progress = job.progress
        progress.shards_done = done
        progress.shards_total = total
        if isinstance(payload, VerificationResult):
            progress.checked += payload.checked
            progress.failure_count += payload.failure_count
            for message in payload.failures:
                self._publish(job, {"event": "failure", "message": message})
        else:
            progress.items_done += len(payload)
        self._publish(job, {"event": "progress", **progress.to_dict()})

    async def _drive(self, job: Job) -> None:
        async with self._sem:
            if job.terminal or job._cancel.is_set():
                if not job.terminal:
                    self._finish(job, JobState.CANCELLED)
                return
            loop = asyncio.get_running_loop()
            job.state = JobState.RUNNING
            job.started = time.time()
            self._publish(
                job, {"event": "state", "state": JobState.RUNNING.value}
            )

            def on_shard(done: int, total: int, payload: Any) -> None:
                loop.call_soon_threadsafe(
                    self._on_shard, job, done, total, payload
                )

            body = partial(
                job.request.run,
                on_shard=on_shard,
                should_stop=job._cancel.is_set,
                cache=self.cache,
            )
            try:
                result = await loop.run_in_executor(self._pool, body)
            except SweepCancelled:
                self._finish(job, JobState.CANCELLED)
            except Exception as exc:  # surfaced to the client, not the loop
                job.error = f"{type(exc).__name__}: {exc}"
                self._finish(job, JobState.FAILED)
            else:
                job.result = result
                if isinstance(result, VerificationResult) and job.started:
                    result.elapsed = time.time() - job.started
                self._finish(job, JobState.DONE)

    async def aclose(self) -> None:
        """Cancel whatever is still running and release the thread pool."""
        for job in self._jobs.values():
            if not job.terminal:
                job._cancel.set()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        self._pool.shutdown(wait=True)
