"""Job-oriented async service layer over the verification engine.

The public API of the reproduction, redesigned around *jobs*: typed
requests (:class:`VerifyRequest`, :class:`SortRequest`) are submitted
to a :class:`JobManager`, which drives the sharded sweeps through
asyncio with per-shard progress, an ``async for`` failure stream, and
cooperative cancellation.  :class:`ReproServer` exposes the manager
over a dependency-free JSON-lines TCP protocol;
:class:`AsyncServiceClient` / :class:`ServiceClient` speak it.

Entry points::

    python -m repro serve --port 7421 --jobs 2      # run the service
    python -m repro submit verify --width 8          # client round-trip
    python -m repro status <job-id>

or programmatically::

    manager = JobManager(jobs=4)
    job = manager.submit(VerifyRequest(width=10))
    async for event in manager.stream(job.id):
        ...
"""

from .cache import ShardCache
from .client import AsyncServiceClient, ServiceClient, ServiceError
from .jobs import (
    Job,
    JobManager,
    JobState,
    MAX_VERIFY_WIDTH,
    SortRequest,
    VerifyRequest,
    request_from_dict,
)
from .server import DEFAULT_HOST, DEFAULT_PORT, ReproServer

__all__ = [
    "AsyncServiceClient",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "Job",
    "JobManager",
    "JobState",
    "MAX_VERIFY_WIDTH",
    "ReproServer",
    "ServiceClient",
    "ServiceError",
    "ShardCache",
    "SortRequest",
    "VerifyRequest",
    "request_from_dict",
]
