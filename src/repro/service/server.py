"""Dependency-free JSON-lines-over-TCP front-end for the JobManager.

One request per line, one (or, for ``stream``, many) response lines
back -- a protocol a shell script, ``nc``, or any language can speak.
Requests are JSON objects with an ``op`` field:

======== ============================================ ==================
op       request fields                               response
======== ============================================ ==================
ping     --                                           ``{"ok", "pong"}``
submit   ``request``: typed request dict (``kind``:   ``{"ok", "id",
         ``verify``/``sort`` + its fields)            "state"}``
status   ``id``                                       job status dict
result   ``id`` (blocks until the job is terminal)    ``{"ok", "id",
                                                      "state", "error",
                                                      "result"}``
stream   ``id``                                       one ``{"ok",
                                                      "event"}`` line
                                                      per event, ending
                                                      with the ``done``
                                                      event
cancel   ``id``                                       ``{"ok",
                                                      "cancelled"}``
list     --                                           ``{"ok", "jobs",
                                                      "stats"}``
======== ============================================ ==================

Every response carries ``"ok"``; failures are ``{"ok": false,
"error": msg}`` and leave the connection usable.  A connection handles
one op at a time (pipeline by opening more connections -- they're
cheap, and every connection shares the one JobManager).

This socket seam is where cross-host sharding (ROADMAP) will plug in:
the shard tasks dispatched by the manager are already picklable and
self-describing, so a remote work-queue executor only needs transport.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

# One wire format for every socket in the repo: the JSON-lines framing
# lives in repro.distributed.wire (shared with the shard coordinator),
# re-exported here for existing importers.
from ..distributed.wire import decode_line, encode_line  # noqa: F401
from .jobs import JobManager, request_from_dict

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ReproServer", "encode_line"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7421


class ReproServer:
    """Serve a :class:`~repro.service.jobs.JobManager` over TCP.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  Use as an async context manager in tests::

        async with ReproServer(JobManager(jobs=2), port=0) as server:
            ... connect to ("127.0.0.1", server.port) ...
    """

    def __init__(
        self,
        manager: Optional[JobManager] = None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ):
        self.manager = manager if manager is not None else JobManager()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "ReproServer":
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        # Resolve the actual port for port=0 requests.
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.aclose()

    async def __aenter__(self) -> "ReproServer":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    await self._dispatch(line, writer)
                except (ValueError, KeyError, TypeError) as exc:
                    # Protocol-level problem: report it, keep the
                    # connection; the client may well send a valid op
                    # next.
                    writer.write(
                        encode_line({"ok": False, "error": _error_text(exc)})
                    )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
                # Loop teardown can cancel a handler mid-close; the
                # connection is going away either way.
            ):
                pass

    async def _dispatch(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        msg = decode_line(line)  # shared framing; raises ValueError
        op = msg.get("op")
        handler = {
            "ping": self._op_ping,
            "submit": self._op_submit,
            "status": self._op_status,
            "result": self._op_result,
            "stream": self._op_stream,
            "cancel": self._op_cancel,
            "list": self._op_list,
        }.get(op)
        if handler is None:
            raise ValueError(
                f"unknown op {op!r}; available: cancel, list, ping, result, "
                f"status, stream, submit"
            )
        await handler(msg, writer)

    @staticmethod
    def _job_id(msg: Dict[str, Any]) -> str:
        job_id = msg.get("id")
        if not isinstance(job_id, str) or not job_id:
            raise ValueError(f"op {msg.get('op')!r} needs a job 'id'")
        return job_id

    async def _op_ping(self, msg, writer) -> None:
        writer.write(encode_line({"ok": True, "pong": True}))

    async def _op_submit(self, msg, writer) -> None:
        request = request_from_dict(msg.get("request"))
        job = self.manager.submit(request)
        writer.write(
            encode_line({"ok": True, "id": job.id, "state": job.state.value})
        )

    async def _op_status(self, msg, writer) -> None:
        job = self.manager.get(self._job_id(msg))
        writer.write(encode_line({"ok": True, **job.status()}))

    async def _op_result(self, msg, writer) -> None:
        job = await self.manager.wait(self._job_id(msg))
        writer.write(
            encode_line(
                {
                    "ok": True,
                    "id": job.id,
                    "state": job.state.value,
                    "error": job.error,
                    "progress": job.progress.to_dict(),
                    "result": job.result_payload(),
                }
            )
        )

    async def _op_stream(self, msg, writer) -> None:
        job_id = self._job_id(msg)
        async for event in self.manager.stream(job_id):
            writer.write(encode_line({"ok": True, "event": event}))
            await writer.drain()

    async def _op_cancel(self, msg, writer) -> None:
        cancelled = self.manager.cancel(self._job_id(msg))
        writer.write(encode_line({"ok": True, "cancelled": cancelled}))

    async def _op_list(self, msg, writer) -> None:
        writer.write(
            encode_line(
                {
                    "ok": True,
                    "jobs": self.manager.list_jobs(),
                    "stats": self.manager.stats(),
                }
            )
        )


def _error_text(exc: BaseException) -> str:
    # KeyError reprs its argument; unwrap so clients see the message.
    if isinstance(exc, KeyError) and exc.args:
        return str(exc.args[0])
    return str(exc)
