"""Back-compat alias: the LRU shard cache is now the ``memory`` store.

PR 4's in-process LRU lives on as
:class:`repro.store.memory.MemoryStore` behind the unified
:class:`~repro.store.base.ResultStore` protocol; this module keeps the
historical name and constructor signature so existing imports
(``from repro.service.cache import ShardCache``) keep working.  Shard
keys are unchanged: ``(circuit.name, circuit.content_hash(),
backend.name, width, g_lo, g_hi)`` -- content-addressed, so they are
stable across processes and hosts and shared with every other store
backend.
"""

from __future__ import annotations

from ..store.memory import MemoryStore

__all__ = ["ShardCache"]


class ShardCache(MemoryStore):
    """The PR-4 name for the ``memory`` result-store backend."""

    def __init__(self, maxsize: int = 8192):
        super().__init__(maxsize=maxsize)
