"""In-process LRU cache of per-shard verification results.

The ROADMAP's incremental-verification item in its minimal form: a
re-verification of an unedited netlist should not redo work it already
did.  Shards are pure functions of ``(circuit.name,
circuit.content_hash(), backend.name, width, g_lo, g_hi)`` -- the
content hash (:meth:`~repro.circuits.netlist.Circuit.content_hash`)
digests the netlist *structure*, so an edited netlist misses on every
shard, an untouched or identically rebuilt one hits on all of them,
and -- unlike the old in-process ``version`` counter -- two different
circuits that happen to share a name and mutation count can never
collide.  Content keys are also stable across processes and hosts,
which is what lets the distributed path
(:mod:`repro.distributed`) consult the same cache safely.  The cache
is consulted by :func:`repro.verify.parallel.verify_two_sort_sharded`
(duck-typed: anything with ``get``/``put``) and owned by the service
layer's :class:`~repro.service.jobs.JobManager`, which surfaces the
hit/miss counters to clients.

Thread-safe: job bodies run on a thread pool, and two concurrent
verify jobs for the same circuit may read and write the same keys.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

__all__ = ["ShardCache"]


class ShardCache:
    """A bounded LRU map with hit/miss accounting.

    ``maxsize`` counts *entries* (one per shard); at the default shard
    sizing a full B=13 sweep is ~2.6k shards, so the default of 8192
    holds a few full widths.  ``maxsize <= 0`` disables storage (every
    ``get`` is a miss, ``put`` is a no-op) -- the switch for callers
    that must never serve a stale-circuit result even in theory.
    """

    def __init__(self, maxsize: int = 8192):
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.maxsize <= 0:
            return
        with self._lock:
            # Re-putting a present key replaces the value in place and
            # refreshes its recency; it must never count as a second
            # entry toward maxsize (pinned by a regression test -- the
            # distributed path re-puts keys whenever an expired lease
            # is re-run).
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
            }
