"""Distributed shard execution: one sweep across many hosts.

The transport the ROADMAP said was "the only thing missing": shard
tasks were already picklable and self-describing, shard results
already merged deterministically, and plane backends already
serialized by name -- this package moves them over a socket work
queue.

* :mod:`~repro.distributed.wire` -- the JSON-lines framing shared
  with the service layer, plus pickle payload helpers;
* :mod:`~repro.distributed.coordinator` -- :class:`ShardCoordinator`:
  owns the shard queue, leases tasks to connected workers, heartbeats,
  re-queues shards whose worker dies or stalls, and releases results
  strictly in shard order;
* :mod:`~repro.distributed.worker` -- :class:`ShardWorker`, the agent
  behind ``python -m repro worker --connect HOST:PORT``;
* :mod:`~repro.distributed.executor` -- the ``"distributed"`` entry in
  the executor registry, so every sharded code path (CLI ``verify``,
  ``sort_words_batch``, service jobs) can fan out cross-host by name;
* :mod:`~repro.distributed.checkpoint` -- :class:`SweepCheckpoint`,
  the durable shard-result journal behind ``--checkpoint``/``--resume``
  (a restarted sweep re-queues only unfinished shards).

Quickstart (two shells, or two hosts)::

    python -m repro verify --width 10 --executor distributed --listen 7422
    python -m repro worker --connect COORDINATOR_HOST:7422 --jobs 4
"""

import importlib

# Only the wire format is imported eagerly: the service layer (and
# through it every CLI invocation) shares the framing, and must not
# pay for the coordinator/worker/executor machinery it may never use
# -- the registry stub in repro.verify.parallel defers that import for
# the same reason.  The heavier names below resolve lazily (PEP 562).
from .wire import DEFAULT_WORK_PORT, LineChannel, decode_line, encode_line, pack, unpack

_LAZY = {
    "BatchHandle": ".coordinator",
    "ShardCoordinator": ".coordinator",
    "ShardWorker": ".worker",
    "StackedCache": ".checkpoint",
    "SweepCheckpoint": ".checkpoint",
    "current_coordinator": ".executor",
    "ensure_coordinator": ".executor",
    "run_distributed": ".executor",
    "shutdown_coordinator": ".executor",
    "use_coordinator": ".executor",
}

__all__ = [
    "BatchHandle",
    "DEFAULT_WORK_PORT",
    "LineChannel",
    "ShardCoordinator",
    "ShardWorker",
    "StackedCache",
    "SweepCheckpoint",
    "current_coordinator",
    "decode_line",
    "encode_line",
    "ensure_coordinator",
    "pack",
    "run_distributed",
    "shutdown_coordinator",
    "unpack",
    "use_coordinator",
]


def __getattr__(name: str):
    try:
        module = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module, __name__), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(__all__)
