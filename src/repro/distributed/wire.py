"""JSON-lines wire format shared by every socket seam in the repo.

One message per line, each line one JSON object -- the framing the
service layer (:mod:`repro.service.server`) introduced and the
distributed shard queue (:mod:`repro.distributed.coordinator` /
``worker``) now speaks too.  This module is the single owner of that
framing so the two stacks cannot drift: :func:`encode_line` /
:func:`decode_line` are the codec, :func:`pack` / :func:`unpack` carry
Python payloads (shard tasks, :class:`VerificationResult`\\ s, compiled
initializers) that have no natural JSON form as base64 pickles inside
a JSON field, and :class:`LineChannel` wraps a blocking socket for the
synchronous endpoints (the worker agent, tests, ``nc``-style tools).

Dependency-free by design: both sides of every connection are this
repository, but nothing here assumes more than a byte stream.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import threading
from typing import Any, Dict, Optional

__all__ = [
    "DEFAULT_WORK_PORT",
    "LineChannel",
    "decode_line",
    "encode_line",
    "pack",
    "unpack",
]

#: Default port of the distributed shard coordinator (the job service
#: uses 7421; keeping them distinct lets one host run both).
DEFAULT_WORK_PORT = 7422


def encode_line(obj: Dict[str, Any]) -> bytes:
    """One message as one newline-terminated JSON line."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line; raises ``ValueError`` on malformed input."""
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON: {exc}") from None
    if not isinstance(msg, dict):
        raise ValueError(
            f"message must be a JSON object, got {type(msg).__name__}"
        )
    return msg


def pack(obj: Any) -> str:
    """Pickle ``obj`` into a JSON-safe ascii string (base64)."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack(data: str) -> Any:
    """Inverse of :func:`pack`."""
    return pickle.loads(base64.b64decode(data.encode("ascii")))


class LineChannel:
    """A blocking socket speaking one JSON object per line.

    Thread model: any thread may :meth:`send` (writes are serialized by
    an internal lock -- the worker's heartbeat thread and result
    callbacks interleave safely with its main loop), but only one
    thread may :meth:`recv`/:meth:`request` at a time.  The protocols
    built on this keep response-matching trivial by construction: only
    the main loop sends ops that expect a reply.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wlock = threading.Lock()
        self._closed = False

    @classmethod
    def connect(
        cls, host: str, port: int, timeout: Optional[float] = None
    ) -> "LineChannel":
        return cls(socket.create_connection((host, port), timeout=timeout))

    def send(self, obj: Dict[str, Any]) -> None:
        data = encode_line(obj)
        with self._wlock:
            self._sock.sendall(data)

    def recv(self) -> Optional[Dict[str, Any]]:
        """Next message, or ``None`` on orderly EOF."""
        while True:
            line = self._rfile.readline()
            if not line:
                return None
            if line.strip():
                return decode_line(line)

    def request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message and block for its reply (EOF is an error)."""
        self.send(obj)
        reply = self.recv()
        if reply is None:
            raise ConnectionError("connection closed while awaiting reply")
        return reply

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Shut the socket down FIRST: it unblocks any thread sitting in
        # recv()/readline (the coordinator closes channels whose handler
        # thread is mid-read).  Closing the buffered reader first would
        # block on the buffer lock that reader holds -- forever, for a
        # partitioned peer that will never send EOF.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._rfile.close()
        except (OSError, ValueError):
            pass
        self._sock.close()

    def __enter__(self) -> "LineChannel":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
