"""JSON-lines wire format shared by every socket seam in the repo.

One message per line, each line one JSON object -- the framing the
service layer (:mod:`repro.service.server`) introduced and the
distributed shard queue (:mod:`repro.distributed.coordinator` /
``worker``) now speaks too.  This module is the single owner of that
framing so the two stacks cannot drift: :func:`encode_line` /
:func:`decode_line` are the codec, :func:`pack` / :func:`unpack` carry
Python payloads (shard tasks, :class:`VerificationResult`\\ s, compiled
initializers) that have no natural JSON form as base64 pickles inside
a JSON field, and :class:`LineChannel` wraps a blocking socket for the
synchronous endpoints (the worker agent, tests, ``nc``-style tools).

Dependency-free by design: both sides of every connection are this
repository, but nothing here assumes more than a byte stream.
"""

from __future__ import annotations

import base64
import json
import pickle
import select
import socket
import threading
import time
from typing import Any, Dict, Optional

__all__ = [
    "ChannelTimeout",
    "DEFAULT_WORK_PORT",
    "LineChannel",
    "decode_line",
    "encode_line",
    "pack",
    "unpack",
]

#: Default port of the distributed shard coordinator (the job service
#: uses 7421; keeping them distinct lets one host run both).
DEFAULT_WORK_PORT = 7422

#: Sentinel distinguishing "no per-call timeout given" from an explicit
#: ``timeout=None`` (block forever).
_UNSET = object()


class ChannelTimeout(OSError):
    """No complete line arrived within the allotted read window.

    Raised by :meth:`LineChannel.recv` *instead of blocking forever* on
    a half-open socket (peer vanished without FIN/RST -- the failure
    mode a SIGKILLed host or a dropped NAT mapping produces).  The
    channel stays usable: any bytes of a partial line already received
    are kept buffered, so a later ``recv`` resumes exactly where this
    one stopped -- no message is torn by timing out.
    """


def encode_line(obj: Dict[str, Any]) -> bytes:
    """One message as one newline-terminated JSON line."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line; raises ``ValueError`` on malformed input."""
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON: {exc}") from None
    if not isinstance(msg, dict):
        raise ValueError(
            f"message must be a JSON object, got {type(msg).__name__}"
        )
    return msg


def pack(obj: Any) -> str:
    """Pickle ``obj`` into a JSON-safe ascii string (base64)."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack(data: str) -> Any:
    """Inverse of :func:`pack`."""
    return pickle.loads(base64.b64decode(data.encode("ascii")))


class LineChannel:
    """A blocking socket speaking one JSON object per line.

    Thread model: any thread may :meth:`send` (writes are serialized by
    an internal lock -- the worker's heartbeat thread and result
    callbacks interleave safely with its main loop), but only one
    thread may :meth:`recv`/:meth:`request` at a time.  The protocols
    built on this keep response-matching trivial by construction: only
    the main loop sends ops that expect a reply.

    Reads are buffered in this object (not a ``makefile`` reader), so a
    read *timeout* is safe: ``read_timeout`` (or a per-call
    ``timeout=``) bounds how long :meth:`recv` waits for a complete
    line before raising :class:`ChannelTimeout`, and a partial line is
    retained across the timeout.  Timeouts are implemented with
    ``select`` rather than ``settimeout`` so a concurrent ``send``
    never inherits a read deadline.
    """

    def __init__(
        self, sock: socket.socket, read_timeout: Optional[float] = None
    ):
        sock.settimeout(None)  # reads are select-bounded, writes blocking
        self._sock = sock
        self._buf = bytearray()
        self._wlock = threading.Lock()
        self._closed = False
        self.read_timeout = read_timeout

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
    ) -> "LineChannel":
        """Dial out; ``timeout`` bounds the connect, ``read_timeout``
        becomes the channel's default recv window."""
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock, read_timeout=read_timeout)

    def send(self, obj: Dict[str, Any]) -> None:
        self.send_raw(encode_line(obj))

    def send_raw(self, data: bytes) -> None:
        """Write raw bytes (the chaos harness's truncation seam)."""
        with self._wlock:
            self._sock.sendall(data)

    def _pop_line(self) -> Optional[Dict[str, Any]]:
        """Decode and remove the first complete buffered line, if any."""
        while True:
            nl = self._buf.find(b"\n")
            if nl < 0:
                return None
            line = bytes(self._buf[: nl + 1])
            del self._buf[: nl + 1]
            if line.strip():
                return decode_line(line)

    def recv(self, timeout: Any = _UNSET) -> Optional[Dict[str, Any]]:
        """Next message, or ``None`` on orderly EOF.

        ``timeout`` overrides the channel's ``read_timeout`` for this
        call (``None`` = block forever); expiry raises
        :class:`ChannelTimeout` with any partial line kept buffered.
        """
        effective = self.read_timeout if timeout is _UNSET else timeout
        deadline = (
            None if effective is None else time.monotonic() + effective
        )
        while True:
            msg = self._pop_line()
            if msg is not None:
                return msg
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ChannelTimeout(
                        f"no complete line within {effective}s"
                    )
                try:
                    ready, _, _ = select.select([self._sock], [], [], remaining)
                except (OSError, ValueError):
                    # Socket closed under us (close() from another
                    # thread): orderly end of channel.
                    return None
                if not ready:
                    raise ChannelTimeout(
                        f"no complete line within {effective}s"
                    )
            try:
                chunk = self._sock.recv(65536)
            except OSError:
                if self._closed:
                    return None
                raise
            if not chunk:
                return None  # EOF (a torn trailing partial line is dropped)
            self._buf.extend(chunk)

    def request(
        self, obj: Dict[str, Any], timeout: Any = _UNSET
    ) -> Dict[str, Any]:
        """Send one message and block for its reply (EOF is an error)."""
        self.send(obj)
        reply = self.recv(timeout=timeout)
        if reply is None:
            raise ConnectionError("connection closed while awaiting reply")
        return reply

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Shut the socket down FIRST: it unblocks any thread sitting in
        # recv()/select (the coordinator closes channels whose handler
        # thread is mid-read).
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "LineChannel":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
