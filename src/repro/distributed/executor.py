"""The ``"distributed"`` executor: run_sharded over the work queue.

This is where the subsystem meets the executor registry from
:mod:`repro.verify.parallel`: :func:`run_distributed` satisfies the
executor contract (tasks in, ordered results out, streaming
``on_result``/``should_stop`` honoured) by submitting the batch to a
:class:`~repro.distributed.coordinator.ShardCoordinator` and
collecting the leased results in task order.  Everything above the
registry -- ``verify_two_sort_sharded``, ``sort_words_batch``, the
service layer's :class:`~repro.service.jobs.JobManager`, the CLI --
gains cross-host execution by naming ``executor="distributed"``,
with no other code change.

The process-wide coordinator is explicit, not ambient:
:func:`ensure_coordinator` starts one (idempotently) -- the CLI's
``--listen PORT`` and ``serve --listen PORT`` call it -- and
:func:`use_coordinator` scopes one for tests and embedders.  Running
the executor with no coordinator raises immediately with instructions
rather than hanging.

``jobs`` is deliberately ignored here: parallelism is decided by each
*worker's* ``--jobs``, not by the submitting process.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..verify.exhaustive import SweepEpoch
from .coordinator import ShardCoordinator
from .wire import DEFAULT_WORK_PORT

__all__ = [
    "current_coordinator",
    "ensure_coordinator",
    "run_distributed",
    "shutdown_coordinator",
    "use_coordinator",
]

_LOCK = threading.Lock()
_COORDINATOR: Optional[ShardCoordinator] = None


def ensure_coordinator(
    host: str = "0.0.0.0",
    port: int = DEFAULT_WORK_PORT,
    lease_timeout: float = 30.0,
    max_range: int = 32,
) -> ShardCoordinator:
    """Start (once) and return the process-wide shard coordinator.

    Idempotent: a second call returns the running instance, ignoring
    the arguments -- one process serves one work queue.  The default
    bind is all interfaces, since the whole point is workers on other
    hosts; pass ``host="127.0.0.1"`` for a localhost-only queue.
    ``max_range`` caps the adaptive shard-range lease width
    (``1`` = one task per RPC).
    """
    global _COORDINATOR
    with _LOCK:
        if _COORDINATOR is None:
            _COORDINATOR = ShardCoordinator(
                host=host,
                port=port,
                lease_timeout=lease_timeout,
                max_range=max_range,
            ).start()
        return _COORDINATOR


def current_coordinator() -> Optional[ShardCoordinator]:
    return _COORDINATOR


def shutdown_coordinator() -> None:
    global _COORDINATOR
    with _LOCK:
        if _COORDINATOR is not None:
            _COORDINATOR.close()
            _COORDINATOR = None


@contextmanager
def use_coordinator(coordinator: ShardCoordinator) -> Iterator[ShardCoordinator]:
    """Scope the executor's coordinator (tests / embedding)."""
    global _COORDINATOR
    with _LOCK:
        previous = _COORDINATOR
        _COORDINATOR = coordinator
    try:
        yield coordinator
    finally:
        with _LOCK:
            _COORDINATOR = previous


def run_distributed(
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    on_result: Optional[Callable[[int, Any], None]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    epoch: Optional[SweepEpoch] = None,
) -> List[Any]:
    """Executor entry point registered as ``"distributed"``.

    Blocks until connected workers have completed every task (leases
    re-queued around any worker that dies), streaming results through
    ``on_result`` in task order exactly like the local executors.
    """
    coordinator = current_coordinator()
    if coordinator is None:
        raise RuntimeError(
            "executor 'distributed' needs a running shard coordinator: "
            "pass --listen PORT on the CLI (or call "
            "repro.distributed.ensure_coordinator()) and attach workers "
            "with `python -m repro worker --connect HOST:PORT`"
        )
    handle = coordinator.submit(
        worker,
        list(tasks),
        initializer=initializer,
        initargs=initargs,
        epoch=epoch.to_dict() if epoch is not None else None,
    )
    return handle.collect(on_result=on_result, should_stop=should_stop)
