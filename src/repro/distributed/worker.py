"""Worker agent: pull leased shards from a coordinator and run them.

``python -m repro worker --connect HOST:PORT [--jobs N] [--backend B]``
starts one :class:`ShardWorker`.  It dials *out* to the coordinator
(so worker boxes need no open ports), announces how many slots it
offers, and then pulls tasks one lease at a time:

* ``--jobs 1`` (default): tasks run inline in the agent process;
* ``--jobs N``: tasks fan out over a local ``multiprocessing`` pool,
  so an 8-core box contributes 8-way process sharding under a single
  connection -- the same pool initializer contract as the local
  ``"process"`` executor, just fed over the wire.

**Epochs.**  Tasks arrive tagged with their
:class:`~repro.verify.exhaustive.SweepEpoch`: the ``(circuit, backend,
width)`` setup every shard of one sweep shares.  The worker keys its
compile state on the epoch, so the circuit is unpickled, validated
(its :meth:`~repro.circuits.netlist.Circuit.content_hash` must match
the coordinator's -- a mismatch refuses the batch rather than merging
wrong results), and compiled exactly once per epoch, no matter how
many shards of that sweep it executes or how batches interleave.

**Liveness.**  A daemon thread heartbeats at the interval the
coordinator announces, refreshing this worker's leases; if the agent
dies instead, the dropped connection (or the lease deadline) re-queues
its shards for the surviving workers.  The agent exits when the
coordinator says ``bye`` or the connection closes.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from ..backends import use_backend
from ..circuits.netlist import Circuit
from .wire import DEFAULT_WORK_PORT, LineChannel, pack, unpack

__all__ = ["ShardWorker"]

#: Epochs (and their pools, at jobs > 1) kept live per agent; a
#: long-running worker serving many distinct sweeps releases the
#: least-recently-used setup instead of accumulating one pool per
#: sweep ever seen.
MAX_LIVE_EPOCHS = 4
#: Per-batch routing entries retained (batches complete without any
#: notice to workers, so old entries are pruned by recency).
MAX_BATCH_ROUTES = 64


class _EpochState:
    """Worker-side setup shared by every task of one epoch."""

    __slots__ = ("key", "initializer", "initargs", "pool")

    def __init__(self, key: str, initializer, initargs):
        self.key = key
        self.initializer = initializer
        self.initargs = initargs
        self.pool = None  # lazy; only for jobs > 1


class _EpochMismatch(RuntimeError):
    """The unpickled circuit is not the one the coordinator described."""


def _pool_worker_setup(backend, initializer, initargs) -> None:
    """Pool-child initializer: apply the agent's ``--backend``, then
    run the sweep's own initializer.

    Module-level (spawn context pickles it by reference).  The agent's
    ``use_backend`` scope is a process-global override that spawned
    children never inherit, so the effective default is re-applied
    here -- otherwise ``--jobs N --backend B`` would silently compile
    unpinned sweeps on each child's own default.
    """
    if backend is not None:
        from ..backends import set_default_backend

        set_default_backend(backend)
    if initializer is not None:
        initializer(*initargs)


def _epoch_key(meta: Dict[str, Any]) -> str:
    return json.dumps(meta, sort_keys=True, separators=(",", ":"))


class ShardWorker:
    """One worker agent connection (see module docstring).

    ``throttle`` sleeps that many seconds after each completed task --
    a load-shaping knob, and what tests use to hold a lease open long
    enough to kill the worker mid-sweep.  ``stop`` (an optional
    ``threading.Event`` passed to :meth:`run`) makes in-process agents
    shut down cleanly: the goodbye re-queues any leased-but-unfinished
    shards immediately.
    """

    def __init__(
        self,
        host: str,
        port: int = DEFAULT_WORK_PORT,
        jobs: int = 1,
        backend: Optional[str] = None,
        name: Optional[str] = None,
        throttle: float = 0.0,
    ):
        self.host = host
        self.port = port
        self.jobs = max(1, jobs)
        self.backend = backend
        self.name = name or f"worker@{host}"
        self.throttle = throttle
        self.completed = 0
        self._epochs: "OrderedDict[str, _EpochState]" = OrderedDict()
        self._batch_epoch: "OrderedDict[str, str]" = OrderedDict()
        self._batch_fn: Dict[str, Callable[[Any], Any]] = {}
        self._active_key: Optional[str] = None
        self._channel: Optional[LineChannel] = None
        self._outstanding = 0
        self._pending_cond = threading.Condition()

    # ------------------------------------------------------------------
    def run(self, stop: Optional[threading.Event] = None) -> int:
        """Serve until the coordinator closes (or ``stop`` is set).

        Returns the number of task results this agent sent.
        """
        channel = LineChannel.connect(self.host, self.port)
        self._channel = channel
        try:
            hello = channel.request(
                {"op": "hello", "name": self.name, "slots": self.jobs}
            )
            if not hello.get("ok"):
                raise RuntimeError(f"coordinator refused hello: {hello}")
            heartbeat = float(hello.get("heartbeat") or 5.0)
            hb_stop = threading.Event()
            hb = threading.Thread(
                target=self._heartbeat_loop,
                args=(channel, heartbeat, hb_stop),
                name="repro-worker-heartbeat",
                daemon=True,
            )
            hb.start()
            try:
                if self.backend is not None:
                    with use_backend(self.backend):
                        self._serve(channel, stop)
                else:
                    self._serve(channel, stop)
            finally:
                hb_stop.set()
        finally:
            self._drain_pools()
            try:
                channel.send({"op": "goodbye"})
            except OSError:
                pass
            channel.close()
        return self.completed

    # ------------------------------------------------------------------
    def _serve(self, channel: LineChannel, stop) -> None:
        while not (stop is not None and stop.is_set()):
            # Keep up to `jobs` leases in flight (one, when inline).
            with self._pending_cond:
                while self._outstanding >= self.jobs:
                    self._pending_cond.wait(timeout=0.1)
                    if stop is not None and stop.is_set():
                        return
            try:
                reply = channel.request({"op": "next"})
            except (ConnectionError, OSError):
                return
            kind = reply.get("kind")
            if kind == "bye" or not reply.get("ok"):
                self._wait_outstanding()
                return
            if kind == "wait":
                if self._outstanding == 0:
                    time.sleep(float(reply.get("delay") or 0.25))
                else:
                    with self._pending_cond:
                        self._pending_cond.wait(timeout=0.1)
                continue
            self._execute(channel, reply)

    def _wait_outstanding(self) -> None:
        with self._pending_cond:
            while self._outstanding:
                self._pending_cond.wait(timeout=0.1)

    def _execute(self, channel: LineChannel, reply: Dict[str, Any]) -> None:
        batch = str(reply["batch"])
        index = int(reply["index"])
        try:
            epoch, worker_fn = self._resolve_epoch(batch, reply)
            task = unpack(reply["task"])
        except Exception as exc:
            channel.send(
                {
                    "op": "error",
                    "batch": batch,
                    "index": index,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            return
        if self.jobs == 1:
            try:
                if self._active_key != epoch.key:
                    if epoch.initializer is not None:
                        epoch.initializer(*epoch.initargs)
                    self._active_key = epoch.key
                result = worker_fn(task)
            except Exception as exc:
                channel.send(
                    {
                        "op": "error",
                        "batch": batch,
                        "index": index,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
                return
            if self.throttle:
                time.sleep(self.throttle)
            channel.send(
                {"op": "result", "batch": batch, "index": index,
                 "result": pack(result)}
            )
            self.completed += 1
            return
        # Pool path: compile once per pool worker via the initializer,
        # then pipeline up to `jobs` leased tasks through it.  Always
        # the spawn context: this agent is multithreaded by
        # construction (the heartbeat daemon), and forking a
        # multithreaded process can deadlock children on locks held at
        # fork time -- the hazard repro.verify.parallel._pool_context
        # guards against, whose main-thread heuristic would
        # misclassify this process.
        if epoch.pool is None:
            ctx = multiprocessing.get_context("spawn")
            epoch.pool = ctx.Pool(
                processes=self.jobs,
                initializer=_pool_worker_setup,
                initargs=(self.backend, epoch.initializer, epoch.initargs),
            )
        with self._pending_cond:
            self._outstanding += 1
        epoch.pool.apply_async(
            worker_fn,
            (task,),
            callback=self._pool_done(channel, batch, index),
            error_callback=self._pool_failed(channel, batch, index),
        )

    def _pool_done(self, channel, batch: str, index: int):
        def callback(result) -> None:
            if self.throttle:
                time.sleep(self.throttle)
            try:
                channel.send(
                    {"op": "result", "batch": batch, "index": index,
                     "result": pack(result)}
                )
                self.completed += 1
            except OSError:
                pass
            with self._pending_cond:
                self._outstanding -= 1
                self._pending_cond.notify_all()

        return callback

    def _pool_failed(self, channel, batch: str, index: int):
        def callback(exc) -> None:
            try:
                channel.send(
                    {
                        "op": "error",
                        "batch": batch,
                        "index": index,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
            except OSError:
                pass
            with self._pending_cond:
                self._outstanding -= 1
                self._pending_cond.notify_all()

        return callback

    # ------------------------------------------------------------------
    def _resolve_epoch(
        self, batch: str, reply: Dict[str, Any]
    ) -> Tuple[_EpochState, Callable[[Any], Any]]:
        """Find (or build, once) the setup shared by this task's sweep."""
        meta = reply.get("epoch") or {}
        payload = reply.get("payload")
        if payload is None and not (
            self._batch_epoch.get(batch) in self._epochs
            and batch in self._batch_fn
        ):
            # The coordinator sends the setup payload once per worker
            # per batch; if this agent has since pruned it (or never
            # saw it), ask again rather than failing the batch.
            assert self._channel is not None
            info = self._channel.request({"op": "batch_info", "batch": batch})
            if not info.get("ok"):
                raise RuntimeError(
                    f"coordinator has no setup for batch {batch!r}: "
                    f"{info.get('error')}"
                )
            payload = info["payload"]
            meta = info.get("epoch") or meta
        key = _epoch_key(meta)
        if payload is not None:
            self._batch_fn[batch] = unpack(payload["worker_fn"])
            if key not in self._epochs:
                initializer, initargs = unpack(payload["init"])
                self._validate_epoch(meta, initargs)
                self._epochs[key] = _EpochState(key, initializer, initargs)
                self._prune_epochs(keep=key)
            self._batch_epoch[batch] = key
            while len(self._batch_epoch) > MAX_BATCH_ROUTES:
                old, _ = self._batch_epoch.popitem(last=False)
                self._batch_fn.pop(old, None)
        epoch_key = self._batch_epoch[batch]
        self._epochs.move_to_end(epoch_key)
        self._batch_epoch.move_to_end(batch)
        return self._epochs[epoch_key], self._batch_fn[batch]

    def _prune_epochs(self, keep: str) -> None:
        """Release least-recently-used epochs (and their pools).

        Eviction is deferred while tasks are in flight -- a pool may
        only be terminated once nothing references it -- and never
        touches ``keep`` (the epoch just installed) or the inline
        path's active setup.
        """
        if len(self._epochs) <= MAX_LIVE_EPOCHS or self._outstanding:
            return
        for key in list(self._epochs):
            if len(self._epochs) <= MAX_LIVE_EPOCHS:
                return
            if key in (keep, self._active_key):
                continue
            epoch = self._epochs.pop(key)
            if epoch.pool is not None:
                epoch.pool.terminate()
                epoch.pool.join()
                epoch.pool = None

    @staticmethod
    def _validate_epoch(meta: Dict[str, Any], initargs: Tuple) -> None:
        expected = meta.get("circuit_hash")
        if not expected:
            return
        circuits = [a for a in initargs if isinstance(a, Circuit)]
        if not circuits:
            raise _EpochMismatch(
                f"epoch names circuit {meta.get('circuit_name')!r} "
                f"({expected}) but the setup payload carries no circuit"
            )
        got = circuits[0].content_hash()
        if got != expected:
            raise _EpochMismatch(
                f"circuit content hash mismatch: coordinator sweeps "
                f"{meta.get('circuit_name')!r} {expected}, worker "
                f"deserialized {circuits[0].name!r} {got}"
            )

    def _drain_pools(self) -> None:
        for epoch in self._epochs.values():
            if epoch.pool is not None:
                epoch.pool.terminate()
                epoch.pool.join()
                epoch.pool = None

    @staticmethod
    def _heartbeat_loop(channel: LineChannel, interval: float, stop) -> None:
        while not stop.wait(interval):
            try:
                channel.send({"op": "heartbeat"})
            except OSError:
                return
