"""Worker agent: pull leased shards from a coordinator and run them.

``python -m repro worker --connect HOST:PORT [--jobs N] [--backend B]``
starts one :class:`ShardWorker`.  It dials *out* to the coordinator
(so worker boxes need no open ports), announces how many slots it
offers, and then pulls task *ranges* one lease at a time:

* ``--jobs 1`` (default): tasks run inline in the agent process;
* ``--jobs N``: tasks fan out over a local ``multiprocessing`` pool,
  so an 8-core box contributes 8-way process sharding under a single
  connection -- the same pool initializer contract as the local
  ``"process"`` executor, just fed over the wire.

**Epochs.**  Tasks arrive tagged with their
:class:`~repro.verify.exhaustive.SweepEpoch`: the ``(circuit, backend,
width)`` setup every shard of one sweep shares.  The worker keys its
compile state on the epoch, so the circuit is unpickled, validated
(its :meth:`~repro.circuits.netlist.Circuit.content_hash` must match
the coordinator's -- a mismatch refuses the batch rather than merging
wrong results), and compiled exactly once per epoch, no matter how
many shards of that sweep it executes or how batches interleave.

**Result stores.**  When the coordinator's sweep runs against a
shareable :class:`~repro.store.base.ResultStore` (``verify --store
sqlite:PATH``), the store's *spec* rides the epoch's initargs exactly
like the backend name: the worker-side initializer opens its own
handle (:func:`repro.store.shared_store`) and the region task worker
consults the store -- get, then claim -- *before executing* a leased
range, so a range whose results already exist (from a previous run,
another worker, or another host on a shared path) completes without
any plane work, and two workers racing one key never double-execute.

**Liveness.**  A daemon thread heartbeats at the interval the
coordinator announces, refreshing this worker's leases; every reply
wait is bounded (:class:`~repro.distributed.wire.ChannelTimeout`), so
a half-open socket -- peer SIGKILLed, NAT entry dropped -- can never
wedge the agent: a timeout while the heartbeat thread is still
delivering is retried, a timeout past the lease deadline (or with a
dead heartbeat) declares the connection lost.

**Self-healing.**  The agent is *supervised*: a lost connection (and
an initially absent coordinator -- startup order does not matter) is
redialed with jittered exponential backoff, up to ``retry_max``
consecutive failures.  Results whose send failed are kept in a replay
buffer and re-sent after reconnecting; the coordinator's
first-write-wins accounting (plus restart-unique batch IDs) makes a
replay either land exactly once or be safely discarded.  The agent
exits when the coordinator says ``bye``, ``stop`` is set, or the
retry budget is exhausted (``ConnectionError``).
"""

from __future__ import annotations

import json
import multiprocessing
import random
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..backends import use_backend
from ..circuits.netlist import Circuit
from .wire import (
    DEFAULT_WORK_PORT,
    ChannelTimeout,
    LineChannel,
    pack,
    unpack,
)

__all__ = ["ShardWorker"]

#: Epochs (and their pools, at jobs > 1) kept live per agent; a
#: long-running worker serving many distinct sweeps releases the
#: least-recently-used setup instead of accumulating one pool per
#: sweep ever seen.
MAX_LIVE_EPOCHS = 4
#: Per-batch routing entries retained (batches complete without any
#: notice to workers, so old entries are pruned by recency).
MAX_BATCH_ROUTES = 64


class _EpochState:
    """Worker-side setup shared by every task of one epoch."""

    __slots__ = ("key", "initializer", "initargs", "pool")

    def __init__(self, key: str, initializer, initargs):
        self.key = key
        self.initializer = initializer
        self.initargs = initargs
        self.pool = None  # lazy; only for jobs > 1


class _EpochMismatch(RuntimeError):
    """The unpickled circuit is not the one the coordinator described."""


class _ConnectionLost(ConnectionError):
    """This session's transport died; the supervisor should redial."""


def _pool_worker_setup(backend, initializer, initargs) -> None:
    """Pool-child initializer: apply the agent's ``--backend``, then
    run the sweep's own initializer.

    Module-level (spawn context pickles it by reference).  The agent's
    ``use_backend`` scope is a process-global override that spawned
    children never inherit, so the effective default is re-applied
    here -- otherwise ``--jobs N --backend B`` would silently compile
    unpinned sweeps on each child's own default.
    """
    if backend is not None:
        from ..backends import set_default_backend

        set_default_backend(backend)
    if initializer is not None:
        initializer(*initargs)


def _epoch_key(meta: Dict[str, Any]) -> str:
    return json.dumps(meta, sort_keys=True, separators=(",", ":"))


class ShardWorker:
    """One supervised worker agent (see module docstring).

    ``throttle`` sleeps that many seconds after each completed task --
    a load-shaping knob, and what tests use to hold a lease open long
    enough to kill the worker mid-sweep.  ``stop`` (an optional
    ``threading.Event`` passed to :meth:`run`) makes in-process agents
    shut down cleanly: the goodbye re-queues any leased-but-unfinished
    shards immediately.

    Reconnection knobs: ``retry_max`` bounds *consecutive* failed
    connect attempts (a successful session resets the count);
    ``backoff_base`` and ``backoff_max`` shape the jittered exponential
    delay between attempts (``retry_max=0`` restores fail-fast dialing
    for tests and impatient scripts).  ``seed`` pins the jitter for
    reproducible chaos runs; ``channel_wrapper`` is the fault-injection
    seam (:class:`repro.testing.chaos.FlakyChannel`) -- it wraps every
    freshly connected channel, heartbeats included.
    """

    def __init__(
        self,
        host: str,
        port: int = DEFAULT_WORK_PORT,
        jobs: int = 1,
        backend: Optional[str] = None,
        name: Optional[str] = None,
        throttle: float = 0.0,
        retry_max: int = 10,
        backoff_base: float = 0.5,
        backoff_max: float = 15.0,
        connect_timeout: float = 5.0,
        seed: Optional[int] = None,
        channel_wrapper: Optional[Callable[[LineChannel], Any]] = None,
    ):
        self.host = host
        self.port = port
        self.jobs = max(1, jobs)
        self.backend = backend
        self.name = name or f"worker@{host}"
        self.throttle = throttle
        self.retry_max = max(0, retry_max)
        self.backoff_base = max(0.0, backoff_base)
        self.backoff_max = max(self.backoff_base, backoff_max)
        self.connect_timeout = connect_timeout
        self.channel_wrapper = channel_wrapper
        self.completed = 0
        #: Sessions established after the first (telemetry for tests).
        self.reconnects = 0
        #: Buffered results re-sent after a reconnect.
        self.replayed = 0
        self._rng = random.Random(seed)
        self._epochs: "OrderedDict[str, _EpochState]" = OrderedDict()
        self._batch_epoch: "OrderedDict[str, str]" = OrderedDict()
        self._batch_fn: Dict[str, Callable[[Any], Any]] = {}
        self._active_key: Optional[str] = None
        self._outstanding = 0
        self._pending_cond = threading.Condition()
        self._replay: List[Dict[str, Any]] = []
        self._replay_lock = threading.Lock()
        # Session liveness, refreshed by the heartbeat thread; defaults
        # cover the window before the first hello reply.
        self._heartbeat = 2.0
        self._lease_timeout = 15.0
        self._hb_last = 0.0
        self._hb_dead = False
        self._greeted = False

    # ------------------------------------------------------------------
    def run(self, stop: Optional[threading.Event] = None) -> int:
        """Serve (and keep re-dialing) until the coordinator says bye,
        ``stop`` is set, or ``retry_max`` consecutive connects fail.

        Returns the number of task results this agent sent; raises
        ``ConnectionError`` when the retry budget is exhausted.
        """
        if stop is not None:
            threading.Thread(
                target=self._stop_watcher,
                args=(stop,),
                name="repro-worker-stopwatch",
                daemon=True,
            ).start()
        if self.backend is not None:
            with use_backend(self.backend):
                return self._run_supervised(stop)
        return self._run_supervised(stop)

    def _run_supervised(self, stop: Optional[threading.Event]) -> int:
        attempts = 0
        connected_before = False
        try:
            while not self._stop_requested(stop):
                try:
                    channel = LineChannel.connect(
                        self.host, self.port, timeout=self.connect_timeout
                    )
                except OSError as exc:
                    attempts += 1
                    if attempts > self.retry_max:
                        raise ConnectionError(
                            f"coordinator at {self.host}:{self.port} "
                            f"unreachable after {attempts} connect "
                            f"attempt(s): {exc}"
                        ) from exc
                    if self._backoff_wait(attempts, stop):
                        break
                    continue
                if connected_before:
                    self.reconnects += 1
                connected_before = True
                self._greeted = False
                try:
                    orderly = self._session(channel, stop)
                finally:
                    try:
                        channel.send({"op": "goodbye"})
                    except OSError:
                        pass
                    channel.close()
                if orderly:
                    break
                if self._greeted:
                    # A real conversation happened: the budget counts
                    # *consecutive* failures, so it refills here.
                    attempts = 0
                else:
                    # Connected but never got a hello-ok (e.g. a proxy
                    # whose upstream is down accepts then hangs up):
                    # counts against the budget and backs off, or this
                    # would be a tight redial loop.
                    attempts += 1
                    if attempts > self.retry_max:
                        raise ConnectionError(
                            f"coordinator at {self.host}:{self.port} "
                            f"unreachable after {attempts} connect "
                            f"attempt(s): connected but the handshake "
                            f"never completed"
                        )
                    if self._backoff_wait(attempts, stop):
                        break
        finally:
            self._drain_pools()
        return self.completed

    def _backoff_wait(
        self, attempts: int, stop: Optional[threading.Event]
    ) -> bool:
        """Sleep the backoff delay; True if ``stop`` fired meanwhile."""
        delay = self._backoff_delay(attempts)
        if stop is not None:
            return stop.wait(delay)
        time.sleep(delay)
        return False

    def _backoff_delay(self, attempts: int) -> float:
        """Jittered exponential backoff for connect attempt ``attempts``."""
        base = min(
            self.backoff_max, self.backoff_base * (2 ** (attempts - 1))
        )
        return base * (0.5 + self._rng.random() * 0.5)

    @staticmethod
    def _stop_requested(stop: Optional[threading.Event]) -> bool:
        return stop is not None and stop.is_set()

    def _stop_watcher(self, stop: threading.Event) -> None:
        # The serve loop's condition waits are notify-driven (no
        # polling); a stop request must therefore wake them explicitly.
        stop.wait()
        with self._pending_cond:
            self._pending_cond.notify_all()

    # ------------------------------------------------------------------
    def _session(
        self, channel: LineChannel, stop: Optional[threading.Event]
    ) -> bool:
        """One connected conversation; True = orderly end (don't redial)."""
        if self.channel_wrapper is not None:
            channel = self.channel_wrapper(channel)
        # Batch routing never survives a session: batch IDs are unique
        # per coordinator incarnation, so entries from the previous
        # connection can only be garbage here.  (Epoch compile state is
        # content-addressed and carries over untouched.)
        self._batch_fn.clear()
        self._batch_epoch.clear()
        self._hb_dead = False
        self._hb_last = time.monotonic()
        try:
            hello = self._request(
                channel, {"op": "hello", "name": self.name, "slots": self.jobs}
            )
        except (ConnectionError, OSError, ValueError):
            return False
        if not hello.get("ok"):
            raise RuntimeError(f"coordinator refused hello: {hello}")
        self._greeted = True
        self._heartbeat = float(hello.get("heartbeat") or 5.0)
        self._lease_timeout = float(hello.get("lease_timeout") or 30.0)
        hb_stop = threading.Event()
        hb = threading.Thread(
            target=self._heartbeat_loop,
            args=(channel, self._heartbeat, hb_stop),
            name="repro-worker-heartbeat",
            daemon=True,
        )
        hb.start()
        try:
            self._flush_replay(channel)
            return self._serve(channel, stop)
        except (ConnectionError, OSError, ValueError):
            return False
        finally:
            hb_stop.set()

    def _request(
        self, channel: LineChannel, msg: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Send one op and await its reply, never blocking forever.

        The coordinator answers every op immediately, so waiting is
        only ever transport trouble.  Each recv is a short bounded
        slice: a timeout while the heartbeat thread still delivers is
        retried (satellite of the half-open-socket fix -- live peer,
        slow wire), but once the total wait passes the lease deadline
        (or the heartbeat has died) the connection is declared lost so
        the supervisor can redial.
        """
        try:
            channel.send(msg)
        except OSError as exc:
            raise _ConnectionLost(f"send failed: {exc}") from exc
        deadline = time.monotonic() + max(
            self._lease_timeout, 4 * self._heartbeat
        )
        slice_s = min(max(self._heartbeat, 0.2), 1.0)
        while True:
            try:
                reply = channel.recv(timeout=slice_s)
            except ChannelTimeout:
                if self._hb_dead or time.monotonic() > deadline:
                    raise _ConnectionLost(
                        "no reply within the lease window (half-open "
                        "connection)"
                    ) from None
                continue
            except OSError as exc:
                raise _ConnectionLost(f"recv failed: {exc}") from exc
            if reply is None:
                raise _ConnectionLost("connection closed by coordinator")
            return reply

    # ------------------------------------------------------------------
    def _serve(
        self, channel: LineChannel, stop: Optional[threading.Event]
    ) -> bool:
        while True:
            # Keep up to `jobs` tasks in flight; the wait is woken by
            # pool completions (or the stop watcher), not a poll timer.
            with self._pending_cond:
                while (
                    self._outstanding >= self.jobs
                    and not self._stop_requested(stop)
                ):
                    self._pending_cond.wait()
            if self._stop_requested(stop):
                return True
            reply = self._request(channel, {"op": "next"})
            kind = reply.get("kind")
            if kind == "bye" or not reply.get("ok"):
                self._wait_outstanding()
                return True
            if kind == "wait":
                delay = float(reply.get("delay") or 0.25)
                if self._outstanding == 0:
                    if stop is not None:
                        if stop.wait(delay):
                            return True
                    else:
                        time.sleep(delay)
                else:
                    with self._pending_cond:
                        self._pending_cond.wait(timeout=delay)
                continue
            self._execute(channel, reply, stop)

    def _wait_outstanding(self) -> None:
        with self._pending_cond:
            while self._outstanding:
                self._pending_cond.wait()

    def _execute(
        self,
        channel: LineChannel,
        reply: Dict[str, Any],
        stop: Optional[threading.Event],
    ) -> None:
        batch = str(reply["batch"])
        items = reply.get("items")
        if items is None:  # single-task reply shape (pre-range protocol)
            items = [[reply["index"], reply["task"]]]
        first_index = int(items[0][0])
        try:
            epoch, worker_fn = self._resolve_epoch(channel, batch, reply)
            tasks = [(int(i), unpack(t)) for i, t in items]
        except _ConnectionLost:
            raise
        except Exception as exc:
            self._send_error(channel, batch, first_index, exc)
            return
        if self.jobs == 1:
            try:
                if self._active_key != epoch.key:
                    if epoch.initializer is not None:
                        epoch.initializer(*epoch.initargs)
                    self._active_key = epoch.key
            except Exception as exc:
                self._send_error(channel, batch, first_index, exc)
                return
            for index, task in tasks:
                if self._stop_requested(stop):
                    # Abandon the unexecuted tail: the goodbye (or the
                    # lease deadline) re-queues it -- partial-range
                    # reporting means everything already sent counts.
                    return
                try:
                    result = worker_fn(task)
                except Exception as exc:
                    self._send_error(channel, batch, index, exc)
                    return
                if self.throttle:
                    time.sleep(self.throttle)
                self._post_result(channel, batch, index, pack(result))
            return
        # Pool path: compile once per pool worker via the initializer,
        # then pipeline leased tasks through it.  Always the spawn
        # context: this agent is multithreaded by construction (the
        # heartbeat daemon), and forking a multithreaded process can
        # deadlock children on locks held at fork time -- the hazard
        # repro.verify.parallel._pool_context guards against, whose
        # main-thread heuristic would misclassify this process.
        if epoch.pool is None:
            ctx = multiprocessing.get_context("spawn")
            epoch.pool = ctx.Pool(
                processes=self.jobs,
                initializer=_pool_worker_setup,
                initargs=(self.backend, epoch.initializer, epoch.initargs),
            )
        with self._pending_cond:
            self._outstanding += len(tasks)
        for index, task in tasks:
            epoch.pool.apply_async(
                worker_fn,
                (task,),
                callback=self._pool_done(channel, batch, index),
                error_callback=self._pool_failed(channel, batch, index),
            )

    # ------------------------------------------------------------------
    # Result / error delivery (replay-buffered)
    # ------------------------------------------------------------------
    def _post_result(
        self, channel, batch: str, index: int, packed: str
    ) -> None:
        msg = {"op": "result", "batch": batch, "index": index,
               "result": packed}
        try:
            channel.send(msg)
        except OSError as exc:
            # Keep the computed result: it is replayed on the next
            # session (first-write-wins upstream makes that idempotent,
            # and restart-unique batch IDs make it safe to discard).
            with self._replay_lock:
                self._replay.append(msg)
            raise _ConnectionLost(f"result send failed: {exc}") from exc
        self.completed += 1

    def _flush_replay(self, channel) -> None:
        with self._replay_lock:
            msgs, self._replay = self._replay, []
        if not msgs:
            return
        for k, msg in enumerate(msgs):
            try:
                channel.send(msg)
            except OSError as exc:
                with self._replay_lock:
                    self._replay = msgs[k:] + self._replay
                raise _ConnectionLost(
                    f"replay send failed: {exc}"
                ) from exc
            self.completed += 1
            self.replayed += 1

    def _send_error(self, channel, batch: str, index: int, exc) -> None:
        # Errors are not replay-buffered: if the send is lost the lease
        # expires and the shard re-runs (re-raising) on a live
        # connection, so the failure still surfaces.
        try:
            channel.send(
                {
                    "op": "error",
                    "batch": batch,
                    "index": index,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
        except OSError as send_exc:
            raise _ConnectionLost(
                f"error send failed: {send_exc}"
            ) from send_exc

    def _pool_done(self, channel, batch: str, index: int):
        def callback(result) -> None:
            if self.throttle:
                time.sleep(self.throttle)
            msg = {"op": "result", "batch": batch, "index": index,
                   "result": pack(result)}
            try:
                channel.send(msg)
                self.completed += 1
            except OSError:
                with self._replay_lock:
                    self._replay.append(msg)
            with self._pending_cond:
                self._outstanding -= 1
                self._pending_cond.notify_all()

        return callback

    def _pool_failed(self, channel, batch: str, index: int):
        def callback(exc) -> None:
            try:
                channel.send(
                    {
                        "op": "error",
                        "batch": batch,
                        "index": index,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
            except OSError:
                pass
            with self._pending_cond:
                self._outstanding -= 1
                self._pending_cond.notify_all()

        return callback

    # ------------------------------------------------------------------
    def _resolve_epoch(
        self, channel: LineChannel, batch: str, reply: Dict[str, Any]
    ) -> Tuple[_EpochState, Callable[[Any], Any]]:
        """Find (or build, once) the setup shared by this task's sweep."""
        meta = reply.get("epoch") or {}
        payload = reply.get("payload")
        if payload is None and not (
            self._batch_epoch.get(batch) in self._epochs
            and batch in self._batch_fn
        ):
            # The coordinator sends the setup payload once per worker
            # per batch; if this agent has since pruned it (or never
            # saw it), ask again rather than failing the batch.
            info = self._request(channel, {"op": "batch_info", "batch": batch})
            if not info.get("ok"):
                raise RuntimeError(
                    f"coordinator has no setup for batch {batch!r}: "
                    f"{info.get('error')}"
                )
            payload = info["payload"]
            meta = info.get("epoch") or meta
        key = _epoch_key(meta)
        if payload is not None:
            self._batch_fn[batch] = unpack(payload["worker_fn"])
            if key not in self._epochs:
                initializer, initargs = unpack(payload["init"])
                self._validate_epoch(meta, initargs)
                self._epochs[key] = _EpochState(key, initializer, initargs)
                self._prune_epochs(keep=key)
            self._batch_epoch[batch] = key
            while len(self._batch_epoch) > MAX_BATCH_ROUTES:
                old, _ = self._batch_epoch.popitem(last=False)
                self._batch_fn.pop(old, None)
        epoch_key = self._batch_epoch[batch]
        self._epochs.move_to_end(epoch_key)
        self._batch_epoch.move_to_end(batch)
        return self._epochs[epoch_key], self._batch_fn[batch]

    def _prune_epochs(self, keep: str) -> None:
        """Release least-recently-used epochs (and their pools).

        Eviction is deferred while tasks are in flight -- a pool may
        only be terminated once nothing references it -- and never
        touches ``keep`` (the epoch just installed) or the inline
        path's active setup.
        """
        if len(self._epochs) <= MAX_LIVE_EPOCHS or self._outstanding:
            return
        for key in list(self._epochs):
            if len(self._epochs) <= MAX_LIVE_EPOCHS:
                return
            if key in (keep, self._active_key):
                continue
            epoch = self._epochs.pop(key)
            if epoch.pool is not None:
                epoch.pool.terminate()
                epoch.pool.join()
                epoch.pool = None

    @staticmethod
    def _validate_epoch(meta: Dict[str, Any], initargs: Tuple) -> None:
        expected = meta.get("circuit_hash")
        if not expected:
            return
        circuits = [a for a in initargs if isinstance(a, Circuit)]
        if not circuits:
            raise _EpochMismatch(
                f"epoch names circuit {meta.get('circuit_name')!r} "
                f"({expected}) but the setup payload carries no circuit"
            )
        got = circuits[0].content_hash()
        if got != expected:
            raise _EpochMismatch(
                f"circuit content hash mismatch: coordinator sweeps "
                f"{meta.get('circuit_name')!r} {expected}, worker "
                f"deserialized {circuits[0].name!r} {got}"
            )

    def _drain_pools(self) -> None:
        for epoch in self._epochs.values():
            if epoch.pool is not None:
                epoch.pool.terminate()
                epoch.pool.join()
                epoch.pool = None

    def _heartbeat_loop(self, channel, interval: float, stop) -> None:
        while not stop.wait(interval):
            try:
                channel.send({"op": "heartbeat"})
                self._hb_last = time.monotonic()
            except OSError:
                self._hb_dead = True
                return
