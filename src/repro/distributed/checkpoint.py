"""Durable sweep checkpoints: an append-only JSON-lines shard journal.

A coordinator that dies mid-sweep (SIGKILL, OOM, power) used to lose
every completed shard.  :class:`SweepCheckpoint` makes sweeps
restart-safe by journaling each *released* shard result to disk as one
JSON line, keyed on the same content-addressed tuple the in-memory
:class:`repro.service.cache.ShardCache` uses::

    (circuit.name, circuit.content_hash(), backend_name, width, g_lo, g_hi)

Because the journal speaks the cache's ``get``/``put`` protocol, resume
needs no new machinery: pass a checkpoint as the ``cache=`` of
:func:`repro.verify.parallel.verify_two_sort_sharded` and journaled
shards are skipped (reported first, in ascending shard order) while
only the unfinished remainder is dispatched.  The merged report is
byte-identical to an uninterrupted run -- merge order is shard order
either way, and results round-trip through pure JSON (no pickles on
disk, so a journal is safe to inspect and to accept from another host).

Record format, one JSON object per line::

    {"type": "epoch", "fingerprint": "...", "epoch": {...},
     "shards": N, "shard_size": S}
    {"type": "result", "key": [name, hash, backend, width, g_lo, g_hi],
     "result": {"checked": ..., "failure_count": ..., "failures": [...],
                "truncated": ...}}

Crash tolerance: writes are flushed (and by default fsynced) per
record, and the loader tolerates a torn trailing line -- the partial
record a SIGKILL mid-write leaves behind is counted and dropped, never
fatal.  Duplicate keys keep the first record (first-write-wins,
matching the coordinator's result accounting), so replaying a journal
is idempotent.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..verify.exhaustive import SweepEpoch, VerificationResult

__all__ = ["StackedCache", "SweepCheckpoint"]


def _result_to_record(result: VerificationResult) -> Dict[str, Any]:
    """Exact JSON form of a shard result (no derived fields)."""
    out: Dict[str, Any] = {
        "checked": result.checked,
        "failure_count": result.failure_count,
        "failures": list(result.failures),
        "truncated": result.truncated,
    }
    if result.elapsed is not None:
        out["elapsed"] = result.elapsed
    return out


def _result_from_record(data: Dict[str, Any]) -> VerificationResult:
    return VerificationResult(
        checked=int(data["checked"]),
        failure_count=int(data["failure_count"]),
        failures=[str(m) for m in data["failures"]],
        truncated=bool(data["truncated"]),
        elapsed=data.get("elapsed"),
    )


class SweepCheckpoint:
    """Append-only shard-result journal with the cache protocol.

    ``get``/``put`` make it a drop-in ``cache=`` for
    :func:`~repro.verify.parallel.verify_two_sort_sharded`;
    ``record_epoch`` (called by the sweep when present on the cache)
    journals the :class:`~repro.verify.exhaustive.SweepEpoch` descriptor
    so a journal is self-describing -- ``--resume`` can print what sweep
    it belongs to, and an audit can match journal to circuit by content
    hash alone.

    ``fsync=True`` (the default) makes every record durable against
    power loss before ``put`` returns; pass ``False`` to trade that for
    speed when only process death matters.  Thread-safe: the service
    layer shares one checkpoint across its sweep threads.
    """

    def __init__(self, path: str, fsync: bool = True):
        self.path = path
        self.fsync = fsync
        self._lock = threading.RLock()
        self._results: Dict[Tuple, VerificationResult] = {}
        self._epochs: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        #: Records dropped on load: torn/corrupt lines and duplicate keys.
        self.torn = 0
        self.duplicates = 0
        self._load()
        self._fh = open(self.path, "ab")

    # -- journal I/O ---------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as fh:
            for raw in fh:
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    self._ingest(record)
                except (ValueError, KeyError, TypeError):
                    # A torn record (the line a SIGKILL mid-write left
                    # behind) or stray corruption: drop it -- the shard
                    # is simply treated as not done and re-executed.
                    self.torn += 1

    def _ingest(self, record: Dict[str, Any]) -> None:
        kind = record["type"]
        if kind == "result":
            key = tuple(record["key"])
            if key in self._results:
                self.duplicates += 1
                return  # first write wins, like the coordinator
            self._results[key] = _result_from_record(record["result"])
        elif kind == "epoch":
            self._epochs.setdefault(str(record["fingerprint"]), record)
        # Unknown record types are ignored: forward compatibility.

    def _append(self, record: Dict[str, Any]) -> None:
        data = json.dumps(record, separators=(",", ":")).encode("utf-8")
        self._fh.write(data + b"\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    # -- the cache protocol --------------------------------------------
    def get(self, key: Tuple) -> Optional[VerificationResult]:
        with self._lock:
            hit = self._results.get(tuple(key))
            if hit is None:
                self.misses += 1
                return None
            self.hits += 1
            return hit

    def put(self, key: Tuple, result: VerificationResult) -> None:
        key = tuple(key)
        with self._lock:
            if key in self._results:
                return  # already durable; keep the journal append-only
            self._results[key] = result
            self._append(
                {
                    "type": "result",
                    "key": list(key),
                    "result": _result_to_record(result),
                }
            )

    def record_epoch(
        self,
        epoch: SweepEpoch,
        shards: Optional[int] = None,
        shard_size: Optional[int] = None,
    ) -> None:
        """Journal the sweep descriptor (once per distinct epoch)."""
        fp = epoch.fingerprint()
        with self._lock:
            if fp in self._epochs:
                return
            record: Dict[str, Any] = {
                "type": "epoch",
                "fingerprint": fp,
                "epoch": epoch.to_dict(),
            }
            if shards is not None:
                record["shards"] = shards
            if shard_size is not None:
                record["shard_size"] = shard_size
            self._epochs[fp] = record
            self._append(record)

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def keys(self) -> List[Tuple]:
        with self._lock:
            return list(self._results)

    def epochs(self) -> List[SweepEpoch]:
        with self._lock:
            return [
                SweepEpoch.from_dict(rec["epoch"])
                for rec in self._epochs.values()
            ]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "path": self.path,
                "results": len(self._results),
                "epochs": len(self._epochs),
                "hits": self.hits,
                "misses": self.misses,
                "torn": self.torn,
                "duplicates": self.duplicates,
            }

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
                self._fh.close()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class StackedCache:
    """A durable journal in front of an optional in-memory cache.

    The service layer keeps a process-wide LRU
    (:class:`repro.service.cache.ShardCache`); a checkpointed job wants
    *both* -- memory speed on repeat sweeps, durability across process
    death.  Lookups try the journal first (it is ground truth across
    restarts); a memory-only hit is backfilled into the journal so the
    durable record converges on everything the process knows.  Writes
    go to both layers.
    """

    def __init__(self, journal: SweepCheckpoint, memory: Optional[Any] = None):
        self.journal = journal
        self.memory = memory

    def get(self, key: Tuple) -> Optional[Any]:
        hit = self.journal.get(key)
        if hit is not None:
            if self.memory is not None:
                self.memory.put(key, hit)
            return hit
        if self.memory is not None:
            hit = self.memory.get(key)
            if hit is not None:
                self.journal.put(key, hit)
            return hit
        return None

    def put(self, key: Tuple, value: Any) -> None:
        self.journal.put(key, value)
        if self.memory is not None:
            self.memory.put(key, value)

    def record_epoch(self, epoch: SweepEpoch, **kwargs: Any) -> None:
        self.journal.record_epoch(epoch, **kwargs)
