"""Back-compat aliases: checkpoints are now the ``journal`` store.

PR 6's durable sweep checkpoint lives on as
:class:`repro.store.journal.JournalStore` behind the unified
:class:`~repro.store.base.ResultStore` protocol, and the ad-hoc
``StackedCache`` glue is the general
:class:`repro.store.stacked.StackedStore` combinator.  This module
keeps the historical names and constructor signatures so existing
imports and journals keep working unchanged: same record format, same
first-write-wins/torn-line semantics, same resume story (pass a
checkpoint as the ``cache=`` of
:func:`repro.verify.parallel.verify_two_sort_sharded` and journaled
shards are skipped while only the unfinished remainder is dispatched).
"""

from __future__ import annotations

from typing import Any, Optional

from ..store.journal import JournalStore
from ..store.stacked import StackedStore

__all__ = ["StackedCache", "SweepCheckpoint"]


class SweepCheckpoint(JournalStore):
    """The PR-6 name for the ``journal`` result-store backend."""

    def __init__(self, path: str, fsync: bool = True):
        super().__init__(path, fsync=fsync)


class StackedCache(StackedStore):
    """A durable journal in front of an optional in-memory cache.

    The historical two-layer form of :class:`StackedStore`: lookups
    try the journal first (it is ground truth across restarts), a
    memory-only hit is backfilled into the journal, and writes go to
    both layers.
    """

    def __init__(self, journal: SweepCheckpoint, memory: Optional[Any] = None):
        super().__init__(journal, memory)
        self.journal = journal
        self.memory = memory
