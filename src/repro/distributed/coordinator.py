"""Work-queue coordinator: lease shards to workers, merge in order.

The cross-host half of the ROADMAP's scaling story.  A
:class:`ShardCoordinator` owns a queue of shard tasks (the same
picklable units :func:`repro.verify.parallel.run_sharded` dispatches to
local pools), listens on a TCP port, and *leases* tasks to whatever
:mod:`repro.distributed.worker` agents connect -- so one sweep spans as
many hosts as care to attach, with no configuration beyond the
coordinator's address.

Failure model
-------------
Work is never lost and never double-merged:

* every leased task carries a deadline; a worker refreshes its leases
  with heartbeats (and implicitly with any message it sends).  A lease
  that expires -- worker wedged, network gone -- is re-queued at the
  front of the pending queue;
* a dropped connection (crash, ``kill -9``) re-queues that worker's
  leases immediately;
* results are recorded first-write-wins per task index, so a slow
  worker completing an already re-run shard is counted as ``late`` (or
  ``duplicate``) and ignored rather than merged twice.

Determinism
-----------
Results arrive in whatever order workers finish, but
:meth:`BatchHandle.collect` releases them strictly in task order --
the contract every local executor already obeys -- so the merged
:class:`~repro.verify.exhaustive.VerificationResult` is byte-identical
to a serial run no matter how many workers, how they race, or how
often shards were re-leased.

Threading: the coordinator is plain threads + one lock (no asyncio),
so it can be driven from synchronous callers -- the CLI, the service
layer's job threads -- without loop plumbing.  Connection handlers,
the lease reaper, and submitting threads all synchronize on
``self._lock``; per-batch completion is signalled through a condition
on that same lock.

Security: like ``multiprocessing``, the protocol moves pickles between
machines that trust each other.  Bind to an interface reachable only
by your own cluster.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..verify.parallel import SweepCancelled
from .wire import DEFAULT_WORK_PORT, LineChannel, pack, unpack

__all__ = ["BatchHandle", "ShardCoordinator"]

#: Terminal batches retained (as summary dicts) for stats after their
#: submitter collected them; the batches themselves -- task pickles and
#: results -- are freed at retirement so a long-lived coordinator
#: (``serve --listen``) does not accumulate every sweep it ever ran.
HISTORY_KEEP = 64


class _Worker:
    """Connection-scoped record of one attached worker agent."""

    __slots__ = ("id", "name", "slots", "last_seen", "results", "channel")

    def __init__(self, worker_id: str, name: str, slots: int, channel):
        self.id = worker_id
        self.name = name
        self.slots = slots
        self.last_seen = time.monotonic()
        self.results = 0
        self.channel = channel


class _Batch:
    """One submitted task list and its progress."""

    __slots__ = (
        "id", "worker_fn", "init", "epoch", "tasks", "pending", "leases",
        "results", "error", "cancelled", "requeued", "late", "duplicates",
        "payload_sent",
    )

    def __init__(self, batch_id, worker_fn, init, epoch, tasks):
        self.id = batch_id
        self.worker_fn = worker_fn  # packed
        self.init = init  # packed (initializer, initargs)
        self.epoch: Dict[str, Any] = epoch
        self.tasks: List[str] = tasks  # packed, one per index
        self.pending: deque = deque(range(len(tasks)))
        #: index -> (worker_id, monotonic deadline)
        self.leases: Dict[int, Tuple[str, float]] = {}
        self.results: Dict[int, Any] = {}
        self.error: Optional[str] = None
        self.cancelled = False
        self.requeued = 0
        self.late = 0
        self.duplicates = 0
        #: workers that already received the worker_fn/init payload
        self.payload_sent: set = set()

    @property
    def done(self) -> bool:
        return len(self.results) == len(self.tasks)

    def requeue_lease(self, index: int) -> None:
        del self.leases[index]
        if index not in self.results and not self.cancelled:
            self.pending.appendleft(index)
            self.requeued += 1


class BatchHandle:
    """The submitting side's view of one batch (returned by ``submit``)."""

    def __init__(self, coordinator: "ShardCoordinator", batch: _Batch):
        self._coordinator = coordinator
        self._batch = batch

    @property
    def id(self) -> str:
        return self._batch.id

    def cancel(self) -> None:
        self._coordinator._cancel_batch(self._batch)

    def collect(
        self,
        on_result: Optional[Callable[[int, Any], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        poll: float = 0.2,
    ) -> List[Any]:
        """Block until every task has a result; stream them in order.

        ``on_result(i, result)`` fires in strict task order as soon as
        result ``i`` *and all before it* exist -- out-of-order arrivals
        are buffered, which is what keeps distributed merges
        deterministic.  ``should_stop()`` is polled at least every
        ``poll`` seconds; a true return cancels the batch (pending
        tasks dropped, in-flight results ignored) and raises
        :class:`~repro.verify.parallel.SweepCancelled` with the ordered
        prefix completed so far.  A worker-side failure or coordinator
        shutdown raises ``RuntimeError``.

        However collect ends, the batch is *retired*: its task and
        result storage is freed and only a summary dict survives in
        :meth:`ShardCoordinator.stats`.
        """
        batch = self._batch
        cond = self._coordinator._cond
        out: List[Any] = []
        total = len(batch.tasks)
        try:
            while True:
                fresh: List[Any] = []
                with cond:
                    if batch.error is not None:
                        raise RuntimeError(
                            f"distributed batch {batch.id} failed: "
                            f"{batch.error}"
                        )
                    while len(out) + len(fresh) < total:
                        i = len(out) + len(fresh)
                        if i not in batch.results:
                            break
                        fresh.append(batch.results[i])
                    complete = len(out) + len(fresh) == total
                    if not complete and not fresh:
                        cond.wait(timeout=poll)
                # Hooks run outside the lock: on_result may call back
                # into arbitrary code (the service layer schedules loop
                # work).
                for result in fresh:
                    out.append(result)
                    if on_result is not None:
                        on_result(len(out) - 1, result)
                if should_stop is not None and should_stop():
                    self.cancel()
                    raise SweepCancelled(out)
                if len(out) == total:
                    return out
        finally:
            self._coordinator._retire_batch(batch)


class ShardCoordinator:
    """Serve a shard work queue to remote workers over TCP.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  ``lease_timeout`` is how long a worker may sit on
    a leased shard without any message before it is re-queued; workers
    are told to heartbeat at a third of that.

    Usage::

        coord = ShardCoordinator(port=7422).start()
        handle = coord.submit(worker_fn, tasks, initializer=..., initargs=...)
        results = handle.collect()          # blocks; ordered
        coord.close()

    Callers normally never touch this directly: the ``"distributed"``
    executor (:mod:`repro.distributed.executor`) wraps ``submit`` +
    ``collect`` behind the ordinary
    :func:`~repro.verify.parallel.run_sharded` interface.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_WORK_PORT,
        lease_timeout: float = 30.0,
        wait_delay: float = 0.25,
    ):
        self.host = host
        self.port = port
        self.lease_timeout = lease_timeout
        self.wait_delay = wait_delay
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._batches: "Dict[str, _Batch]" = {}
        #: Summaries of retired batches, bounded (stats continuity).
        self._history: deque = deque(maxlen=HISTORY_KEEP)
        self._workers: Dict[str, _Worker] = {}
        self._batch_seq = itertools.count(1)
        self._worker_seq = itertools.count(1)
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._closing = False
        self.requeued_total = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardCoordinator":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.port = listener.getsockname()[1]
        self._listener = listener
        for target, name in (
            (self._accept_loop, "repro-coord-accept"),
            (self._reaper_loop, "repro-coord-reaper"),
        ):
            t = threading.Thread(target=target, name=name, daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def close(self) -> None:
        """Stop serving: fail unfinished batches, say bye to workers."""
        with self._cond:
            if self._closing:
                return
            self._closing = True
            for batch in self._batches.values():
                if not batch.done and batch.error is None:
                    batch.error = "coordinator closed"
            workers = list(self._workers.values())
            self._cond.notify_all()
        for worker in workers:
            try:
                worker.channel.send({"ok": True, "kind": "bye"})
            except OSError:
                pass
            worker.channel.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    def __enter__(self) -> "ShardCoordinator":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission (any thread)
    # ------------------------------------------------------------------
    def submit(
        self,
        worker: Callable[[Any], Any],
        tasks: List[Any],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple = (),
        epoch: Optional[Dict[str, Any]] = None,
    ) -> BatchHandle:
        """Queue ``tasks`` for remote execution; returns a handle.

        ``worker``/``initializer`` must be picklable by reference
        (module-level functions -- the same constraint local process
        pools impose).  ``epoch`` is the
        :class:`~repro.verify.exhaustive.SweepEpoch` dict describing
        the shared setup; workers use it to reuse compiled circuits
        across batches and to validate circuit identity.
        """
        init_packed = pack((initializer, initargs))
        if epoch is None:
            # Opaque fallback: batches with identical setup payloads
            # still share a worker-side epoch (keyed on the pickle).
            epoch = {"kind": "opaque", "setup_id": _short_hash(init_packed)}
        batch = _Batch(
            batch_id=f"b{next(self._batch_seq):04d}",
            worker_fn=pack(worker),
            init=init_packed,
            epoch=epoch,
            tasks=[pack(t) for t in tasks],
        )
        with self._cond:
            if self._closing:
                raise RuntimeError("coordinator is closed")
            self._batches[batch.id] = batch
            if not tasks:
                self._cond.notify_all()
        return BatchHandle(self, batch)

    def stats(self) -> Dict[str, Any]:
        """Queue/lease/worker counters (also served as a wire op)."""
        with self._lock:
            return {
                "host": self.host,
                "port": self.port,
                "lease_timeout": self.lease_timeout,
                "requeued_total": self.requeued_total,
                "workers": [
                    {
                        "id": w.id,
                        "name": w.name,
                        "slots": w.slots,
                        "results": w.results,
                        "leases": sum(
                            1
                            for b in self._batches.values()
                            for (wid, _) in b.leases.values()
                            if wid == w.id
                        ),
                    }
                    for w in self._workers.values()
                ],
                "batches": list(self._history)
                + [self._batch_summary(b) for b in self._batches.values()],
            }

    @staticmethod
    def _batch_summary(b: _Batch) -> Dict[str, Any]:
        return {
            "id": b.id,
            "epoch": b.epoch,
            "tasks": len(b.tasks),
            "pending": len(b.pending),
            "leased": len(b.leases),
            "done": len(b.results),
            "requeued": b.requeued,
            "late": b.late,
            "duplicates": b.duplicates,
            "cancelled": b.cancelled,
            "error": b.error,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cancel_batch(self, batch: _Batch) -> None:
        with self._cond:
            batch.cancelled = True
            batch.pending.clear()
            batch.leases.clear()
            self._cond.notify_all()

    def _retire_batch(self, batch: _Batch) -> None:
        """Forget a collected batch, keeping only its stats summary.

        Late results for a retired batch are ignored (the submitter is
        gone), so the coordinator's live state is bounded by in-flight
        work, not by every sweep it ever served."""
        with self._cond:
            if self._batches.pop(batch.id, None) is not None:
                self._history.append(self._batch_summary(batch))

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            t = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-coord-conn",
                daemon=True,
            )
            t.start()

    def _reaper_loop(self) -> None:
        """Re-queue leases whose deadline passed (wedged/silent worker)."""
        while True:
            time.sleep(max(0.05, self.lease_timeout / 4))
            with self._cond:
                if self._closing:
                    return
                now = time.monotonic()
                expired = 0
                for batch in self._batches.values():
                    for index, (_wid, deadline) in list(batch.leases.items()):
                        if deadline < now:
                            batch.requeue_lease(index)
                            expired += 1
                if expired:
                    self.requeued_total += expired
                    self._cond.notify_all()

    def _serve_connection(self, conn: socket.socket) -> None:
        channel = LineChannel(conn)
        worker: Optional[_Worker] = None
        try:
            while True:
                msg = channel.recv()
                if msg is None:
                    return
                op = msg.get("op")
                if op == "hello":
                    worker = self._register_worker(msg, channel)
                    channel.send(
                        {
                            "ok": True,
                            "worker_id": worker.id,
                            "lease_timeout": self.lease_timeout,
                            "heartbeat": self.lease_timeout / 3,
                            "wait_delay": self.wait_delay,
                        }
                    )
                elif op == "stats":
                    channel.send({"ok": True, "stats": self.stats()})
                elif op == "batch_info":
                    channel.send(self._batch_info(msg))
                elif worker is None:
                    channel.send(
                        {"ok": False, "error": f"op {op!r} before hello"}
                    )
                elif op == "next":
                    channel.send(self._lease_next(worker))
                elif op == "result":
                    self._record_result(worker, msg)
                elif op == "error":
                    self._record_error(worker, msg)
                elif op == "heartbeat":
                    self._touch(worker)
                elif op == "goodbye":
                    return
                else:
                    channel.send({"ok": False, "error": f"unknown op {op!r}"})
        except (ValueError, KeyError, TypeError, ConnectionError, OSError):
            # Malformed line/fields or dropped transport: the finally
            # clause re-queues this worker's leases either way.
            return
        finally:
            channel.close()
            if worker is not None:
                self._drop_worker(worker)

    def _register_worker(self, msg: Dict[str, Any], channel) -> _Worker:
        with self._lock:
            worker = _Worker(
                worker_id=f"w{next(self._worker_seq):03d}",
                name=str(msg.get("name") or "worker"),
                slots=max(1, int(msg.get("slots") or 1)),
                channel=channel,
            )
            self._workers[worker.id] = worker
            return worker

    def _drop_worker(self, worker: _Worker) -> None:
        """Forget a worker and re-queue everything it still leased."""
        with self._cond:
            self._workers.pop(worker.id, None)
            requeued = 0
            for batch in self._batches.values():
                for index, (wid, _deadline) in list(batch.leases.items()):
                    if wid == worker.id:
                        batch.requeue_lease(index)
                        requeued += 1
            if requeued:
                self.requeued_total += requeued
                self._cond.notify_all()

    def _touch(self, worker: _Worker) -> None:
        """Any sign of life refreshes every lease the worker holds."""
        with self._lock:
            worker.last_seen = time.monotonic()
            deadline = worker.last_seen + self.lease_timeout
            for batch in self._batches.values():
                for index, (wid, _old) in list(batch.leases.items()):
                    if wid == worker.id:
                        batch.leases[index] = (wid, deadline)

    def _lease_next(self, worker: _Worker) -> Dict[str, Any]:
        with self._lock:
            worker.last_seen = time.monotonic()
            if self._closing:
                return {"ok": True, "kind": "bye"}
            for batch in self._batches.values():
                if batch.error is not None or batch.cancelled or not batch.pending:
                    continue
                index = batch.pending.popleft()
                batch.leases[index] = (
                    worker.id,
                    time.monotonic() + self.lease_timeout,
                )
                reply: Dict[str, Any] = {
                    "ok": True,
                    "kind": "task",
                    "batch": batch.id,
                    "index": index,
                    "task": batch.tasks[index],
                    "epoch": batch.epoch,
                }
                if worker.id not in batch.payload_sent:
                    batch.payload_sent.add(worker.id)
                    reply["payload"] = {
                        "worker_fn": batch.worker_fn,
                        "init": batch.init,
                    }
                return reply
            return {"ok": True, "kind": "wait", "delay": self.wait_delay}

    def _batch_info(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        """Re-serve a batch's setup payload (worker pruned or missed it)."""
        with self._lock:
            batch = self._batches.get(str(msg.get("batch")))
            if batch is None:
                return {
                    "ok": False,
                    "error": f"unknown batch {msg.get('batch')!r}",
                }
            return {
                "ok": True,
                "batch": batch.id,
                "epoch": batch.epoch,
                "payload": {"worker_fn": batch.worker_fn, "init": batch.init},
            }

    def _record_result(self, worker: _Worker, msg: Dict[str, Any]) -> None:
        with self._cond:
            worker.last_seen = time.monotonic()
            worker.results += 1
            batch = self._batches.get(str(msg.get("batch")))
            if batch is None or batch.cancelled:
                return
            index = int(msg["index"])
            if not 0 <= index < len(batch.tasks):
                return  # never a shard of this batch; don't unpickle it
            if index in batch.results:
                batch.leases.pop(index, None)
                batch.duplicates += 1  # an expired lease was re-run first
                return
        # Validated against a live batch; unpack outside the lock
        # (results can be sizeable pickles).
        value = unpack(msg["result"])
        with self._cond:
            if batch.cancelled or index in batch.results:
                if index in batch.results:
                    batch.duplicates += 1
                batch.leases.pop(index, None)
                return
            lease = batch.leases.pop(index, None)
            if lease is None:
                batch.late += 1  # expired, but the original got here first
                try:
                    batch.pending.remove(index)
                except ValueError:
                    pass
            batch.results[index] = value
            self._cond.notify_all()

    def _record_error(self, worker: _Worker, msg: Dict[str, Any]) -> None:
        with self._cond:
            worker.last_seen = time.monotonic()
            batch = self._batches.get(str(msg.get("batch")))
            if batch is None:
                return
            if batch.error is None:
                batch.error = (
                    f"worker {worker.id} ({worker.name}) on task "
                    f"{msg.get('index')}: {msg.get('error')}"
                )
            batch.pending.clear()
            self._cond.notify_all()


def _short_hash(text: str) -> str:
    import hashlib

    return hashlib.sha256(text.encode("ascii")).hexdigest()[:16]
