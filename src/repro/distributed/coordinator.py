"""Work-queue coordinator: lease shards to workers, merge in order.

The cross-host half of the ROADMAP's scaling story.  A
:class:`ShardCoordinator` owns a queue of shard tasks (the same
picklable units :func:`repro.verify.parallel.run_sharded` dispatches to
local pools), listens on a TCP port, and *leases* tasks to whatever
:mod:`repro.distributed.worker` agents connect -- so one sweep spans as
many hosts as care to attach, with no configuration beyond the
coordinator's address.

Failure model
-------------
Work is never lost and never double-merged:

* every leased task carries a deadline; a worker refreshes its leases
  with heartbeats (and implicitly with any message it sends).  A lease
  that expires -- worker wedged, network gone -- is re-queued at the
  front of the pending queue;
* a dropped connection (crash, ``kill -9``) re-queues that worker's
  leases immediately;
* results are recorded first-write-wins per task index, so a slow
  worker completing an already re-run shard is counted as ``late`` (or
  ``duplicate``) and ignored rather than merged twice.

Determinism
-----------
Results arrive in whatever order workers finish, but
:meth:`BatchHandle.collect` releases them strictly in task order --
the contract every local executor already obeys -- so the merged
:class:`~repro.verify.exhaustive.VerificationResult` is byte-identical
to a serial run no matter how many workers, how they race, or how
often shards were re-leased.

Threading: the coordinator is plain threads + one lock (no asyncio),
so it can be driven from synchronous callers -- the CLI, the service
layer's job threads -- without loop plumbing.  Connection handlers,
the lease reaper, and submitting threads all synchronize on
``self._lock``; per-batch completion is signalled through a condition
on that same lock.

Security: like ``multiprocessing``, the protocol moves pickles between
machines that trust each other.  Bind to an interface reachable only
by your own cluster.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..verify.parallel import SweepCancelled
from .wire import DEFAULT_WORK_PORT, LineChannel, pack, unpack

__all__ = ["BatchHandle", "ShardCoordinator"]

#: Terminal batches retained (as summary dicts) for stats after their
#: submitter collected them; the batches themselves -- task pickles and
#: results -- are freed at retirement so a long-lived coordinator
#: (``serve --listen``) does not accumulate every sweep it ever ran.
HISTORY_KEEP = 64


class _Worker:
    """Connection-scoped record of one attached worker agent."""

    __slots__ = (
        "id", "name", "slots", "last_seen", "results", "channel",
        "range_size", "lease_rpcs", "tasks_leased", "last_lease_time",
    )

    def __init__(self, worker_id: str, name: str, slots: int, channel):
        self.id = worker_id
        self.name = name
        self.slots = slots
        self.last_seen = time.monotonic()
        self.results = 0
        self.channel = channel
        #: Adaptive shard-range width for this worker: starts at one
        #: task per "next" RPC, doubles when the previous range was
        #: fully completed quickly, halves when one of its leases
        #: expires -- amortizing RPC cost without over-committing work
        #: to a slow or flaky worker.
        self.range_size = 1
        self.lease_rpcs = 0
        self.tasks_leased = 0
        self.last_lease_time: Optional[float] = None


class _Batch:
    """One submitted task list and its progress."""

    __slots__ = (
        "id", "worker_fn", "init", "epoch", "tasks", "pending", "leases",
        "results", "error", "cancelled", "requeued", "late", "duplicates",
        "payload_sent",
    )

    def __init__(self, batch_id, worker_fn, init, epoch, tasks):
        self.id = batch_id
        self.worker_fn = worker_fn  # packed
        self.init = init  # packed (initializer, initargs)
        self.epoch: Dict[str, Any] = epoch
        self.tasks: List[str] = tasks  # packed, one per index
        self.pending: deque = deque(range(len(tasks)))
        #: index -> (worker_id, monotonic deadline)
        self.leases: Dict[int, Tuple[str, float]] = {}
        self.results: Dict[int, Any] = {}
        self.error: Optional[str] = None
        self.cancelled = False
        self.requeued = 0
        self.late = 0
        self.duplicates = 0
        #: workers that already received the worker_fn/init payload
        self.payload_sent: set = set()

    @property
    def done(self) -> bool:
        return len(self.results) == len(self.tasks)

    def requeue_lease(self, index: int) -> None:
        del self.leases[index]
        if index not in self.results and not self.cancelled:
            self.pending.appendleft(index)
            self.requeued += 1


class BatchHandle:
    """The submitting side's view of one batch (returned by ``submit``)."""

    def __init__(self, coordinator: "ShardCoordinator", batch: _Batch):
        self._coordinator = coordinator
        self._batch = batch

    @property
    def id(self) -> str:
        return self._batch.id

    def cancel(self) -> None:
        self._coordinator._cancel_batch(self._batch)

    def collect(
        self,
        on_result: Optional[Callable[[int, Any], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        poll: float = 0.2,
    ) -> List[Any]:
        """Block until every task has a result; stream them in order.

        ``on_result(i, result)`` fires in strict task order as soon as
        result ``i`` *and all before it* exist -- out-of-order arrivals
        are buffered, which is what keeps distributed merges
        deterministic.  ``should_stop()`` is polled at least every
        ``poll`` seconds; a true return cancels the batch (pending
        tasks dropped, in-flight results ignored) and raises
        :class:`~repro.verify.parallel.SweepCancelled` with the ordered
        prefix completed so far.  A worker-side failure or coordinator
        shutdown raises ``RuntimeError``.

        However collect ends, the batch is *retired*: its task and
        result storage is freed and only a summary dict survives in
        :meth:`ShardCoordinator.stats`.
        """
        batch = self._batch
        cond = self._coordinator._cond
        out: List[Any] = []
        total = len(batch.tasks)
        try:
            while True:
                fresh: List[Any] = []
                with cond:
                    if batch.error is not None:
                        raise RuntimeError(
                            f"distributed batch {batch.id} failed: "
                            f"{batch.error}"
                        )
                    while len(out) + len(fresh) < total:
                        i = len(out) + len(fresh)
                        if i not in batch.results:
                            break
                        fresh.append(batch.results[i])
                    complete = len(out) + len(fresh) == total
                    if not complete and not fresh:
                        cond.wait(timeout=poll)
                # Hooks run outside the lock: on_result may call back
                # into arbitrary code (the service layer schedules loop
                # work).
                for result in fresh:
                    out.append(result)
                    if on_result is not None:
                        on_result(len(out) - 1, result)
                if should_stop is not None and should_stop():
                    self.cancel()
                    raise SweepCancelled(out)
                if len(out) == total:
                    return out
        finally:
            self._coordinator._retire_batch(batch)


class ShardCoordinator:
    """Serve a shard work queue to remote workers over TCP.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  ``lease_timeout`` is how long a worker may sit on
    a leased shard without any message before it is re-queued; workers
    are told to heartbeat at a third of that.

    Usage::

        coord = ShardCoordinator(port=7422).start()
        handle = coord.submit(worker_fn, tasks, initializer=..., initargs=...)
        results = handle.collect()          # blocks; ordered
        coord.close()

    Callers normally never touch this directly: the ``"distributed"``
    executor (:mod:`repro.distributed.executor`) wraps ``submit`` +
    ``collect`` behind the ordinary
    :func:`~repro.verify.parallel.run_sharded` interface.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_WORK_PORT,
        lease_timeout: float = 30.0,
        wait_delay: float = 0.25,
        max_range: int = 32,
    ):
        self.host = host
        self.port = port
        self.lease_timeout = lease_timeout
        self.wait_delay = wait_delay
        #: Ceiling on the adaptive per-worker shard-range width
        #: (``max_range=1`` degrades to the one-task-per-RPC protocol).
        self.max_range = max(1, max_range)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._batches: "Dict[str, _Batch]" = {}
        #: Summaries of retired batches, bounded (stats continuity).
        self._history: deque = deque(maxlen=HISTORY_KEEP)
        self._workers: Dict[str, _Worker] = {}
        self._batch_seq = itertools.count(1)
        self._worker_seq = itertools.count(1)
        # Batch IDs carry a per-coordinator nonce so a worker replaying
        # a result from before a coordinator *restart* hits "unknown
        # batch" (safely discarded) instead of colliding with a fresh
        # batch that reused the same sequence number.
        self._nonce = _short_hash(f"{os.getpid()}:{time.time_ns()}")[:6]
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._closing = False
        self.requeued_total = 0
        #: "next" RPCs answered with a task range / tasks handed out --
        #: their ratio is the range-lease amortization factor the bench
        #: tracks.
        self.lease_rpcs_total = 0
        self.tasks_leased_total = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardCoordinator":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.port = listener.getsockname()[1]
        self._listener = listener
        for target, name in (
            (self._accept_loop, "repro-coord-accept"),
            (self._reaper_loop, "repro-coord-reaper"),
        ):
            t = threading.Thread(target=target, name=name, daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def close(self) -> None:
        """Stop serving: fail unfinished batches, say bye to workers."""
        with self._cond:
            if self._closing:
                return
            self._closing = True
            for batch in self._batches.values():
                if not batch.done and batch.error is None:
                    batch.error = "coordinator closed"
            workers = list(self._workers.values())
            self._cond.notify_all()
        for worker in workers:
            try:
                worker.channel.send({"ok": True, "kind": "bye"})
            except OSError:
                pass
            worker.channel.close()
        self._close_listener()

    def kill(self) -> None:
        """Abrupt death -- the SIGKILL equivalent for chaos tests.

        Every socket vanishes with no goodbye: workers see their
        connection drop mid-conversation, exactly what a crashed host
        looks like, and must fall back to their reconnect supervisor.
        Unlike :meth:`close` no batch is failed gracefully -- state is
        simply abandoned, as it would be in a dead process.
        """
        with self._cond:
            self._closing = True
            workers = list(self._workers.values())
            self._cond.notify_all()
        self._close_listener()
        for worker in workers:
            worker.channel.close()

    def _close_listener(self) -> None:
        """Close the listener *and* reap the accept thread.

        ``close()`` alone leaves the accept thread blocked in
        ``accept()`` on the dead fd; if a later socket in this process
        reuses that fd number (say, a restarted coordinator binding the
        same port), the zombie thread steals its connections.  A
        ``shutdown`` wakes the blocked ``accept`` immediately so the
        thread exits before the fd can be recycled.
        """
        if self._listener is None:
            return
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        accept_thread = self._threads[0] if self._threads else None
        if (
            accept_thread is not None
            and accept_thread is not threading.current_thread()
        ):
            accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ShardCoordinator":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission (any thread)
    # ------------------------------------------------------------------
    def submit(
        self,
        worker: Callable[[Any], Any],
        tasks: List[Any],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple = (),
        epoch: Optional[Dict[str, Any]] = None,
    ) -> BatchHandle:
        """Queue ``tasks`` for remote execution; returns a handle.

        ``worker``/``initializer`` must be picklable by reference
        (module-level functions -- the same constraint local process
        pools impose).  ``epoch`` is the
        :class:`~repro.verify.exhaustive.SweepEpoch` dict describing
        the shared setup; workers use it to reuse compiled circuits
        across batches and to validate circuit identity.
        """
        init_packed = pack((initializer, initargs))
        if epoch is None:
            # Opaque fallback: batches with identical setup payloads
            # still share a worker-side epoch (keyed on the pickle).
            epoch = {"kind": "opaque", "setup_id": _short_hash(init_packed)}
        batch = _Batch(
            batch_id=f"b{next(self._batch_seq):04d}-{self._nonce}",
            worker_fn=pack(worker),
            init=init_packed,
            epoch=epoch,
            tasks=[pack(t) for t in tasks],
        )
        with self._cond:
            if self._closing:
                raise RuntimeError("coordinator is closed")
            self._batches[batch.id] = batch
            if not tasks:
                self._cond.notify_all()
        return BatchHandle(self, batch)

    def stats(self) -> Dict[str, Any]:
        """Queue/lease/worker counters (also served as a wire op)."""
        with self._lock:
            return {
                "host": self.host,
                "port": self.port,
                "lease_timeout": self.lease_timeout,
                "max_range": self.max_range,
                "requeued_total": self.requeued_total,
                "lease_rpcs_total": self.lease_rpcs_total,
                "tasks_leased_total": self.tasks_leased_total,
                "workers": [
                    {
                        "id": w.id,
                        "name": w.name,
                        "slots": w.slots,
                        "results": w.results,
                        "range_size": w.range_size,
                        "lease_rpcs": w.lease_rpcs,
                        "tasks_leased": w.tasks_leased,
                        "leases": sum(
                            1
                            for b in self._batches.values()
                            for (wid, _) in b.leases.values()
                            if wid == w.id
                        ),
                    }
                    for w in self._workers.values()
                ],
                "batches": list(self._history)
                + [self._batch_summary(b) for b in self._batches.values()],
            }

    @staticmethod
    def _batch_summary(b: _Batch) -> Dict[str, Any]:
        return {
            "id": b.id,
            "epoch": b.epoch,
            "tasks": len(b.tasks),
            "pending": len(b.pending),
            "leased": len(b.leases),
            "done": len(b.results),
            "requeued": b.requeued,
            "late": b.late,
            "duplicates": b.duplicates,
            "cancelled": b.cancelled,
            "error": b.error,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cancel_batch(self, batch: _Batch) -> None:
        with self._cond:
            batch.cancelled = True
            batch.pending.clear()
            batch.leases.clear()
            self._cond.notify_all()

    def _retire_batch(self, batch: _Batch) -> None:
        """Forget a collected batch, keeping only its stats summary.

        Late results for a retired batch are ignored (the submitter is
        gone), so the coordinator's live state is bounded by in-flight
        work, not by every sweep it ever served."""
        with self._cond:
            if self._batches.pop(batch.id, None) is not None:
                self._history.append(self._batch_summary(batch))

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                if self._closing:
                    conn.close()
                    return
            t = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-coord-conn",
                daemon=True,
            )
            t.start()

    def _reaper_loop(self) -> None:
        """Re-queue leases whose deadline passed (wedged/silent worker)."""
        while True:
            time.sleep(max(0.05, self.lease_timeout / 4))
            with self._cond:
                if self._closing:
                    return
                now = time.monotonic()
                expired = 0
                for batch in self._batches.values():
                    for index, (wid, deadline) in list(batch.leases.items()):
                        if deadline < now:
                            # Expiry is evidence the worker bit off more
                            # than it chews: shrink its range grant.
                            holder = self._workers.get(wid)
                            if holder is not None:
                                holder.range_size = max(
                                    1, holder.range_size // 2
                                )
                            batch.requeue_lease(index)
                            expired += 1
                if expired:
                    self.requeued_total += expired
                    self._cond.notify_all()

    def _serve_connection(self, conn: socket.socket) -> None:
        channel = LineChannel(conn)
        worker: Optional[_Worker] = None
        try:
            while True:
                msg = channel.recv()
                if msg is None:
                    return
                op = msg.get("op")
                if op == "hello":
                    worker = self._register_worker(msg, channel)
                    channel.send(
                        {
                            "ok": True,
                            "worker_id": worker.id,
                            "lease_timeout": self.lease_timeout,
                            "heartbeat": self.lease_timeout / 3,
                            "wait_delay": self.wait_delay,
                        }
                    )
                elif op == "stats":
                    channel.send({"ok": True, "stats": self.stats()})
                elif op == "batch_info":
                    channel.send(self._batch_info(msg))
                elif worker is None:
                    channel.send(
                        {"ok": False, "error": f"op {op!r} before hello"}
                    )
                elif op == "next":
                    channel.send(self._lease_next(worker))
                elif op == "result":
                    self._record_result(worker, msg)
                elif op == "error":
                    self._record_error(worker, msg)
                elif op == "heartbeat":
                    self._touch(worker)
                elif op == "goodbye":
                    return
                else:
                    channel.send({"ok": False, "error": f"unknown op {op!r}"})
        except (ValueError, KeyError, TypeError, ConnectionError, OSError):
            # Malformed line/fields or dropped transport: the finally
            # clause re-queues this worker's leases either way.
            return
        finally:
            channel.close()
            if worker is not None:
                self._drop_worker(worker)

    def _register_worker(self, msg: Dict[str, Any], channel) -> _Worker:
        with self._lock:
            worker = _Worker(
                worker_id=f"w{next(self._worker_seq):03d}",
                name=str(msg.get("name") or "worker"),
                slots=max(1, int(msg.get("slots") or 1)),
                channel=channel,
            )
            self._workers[worker.id] = worker
            return worker

    def _drop_worker(self, worker: _Worker) -> None:
        """Forget a worker and re-queue everything it still leased."""
        with self._cond:
            self._workers.pop(worker.id, None)
            requeued = 0
            for batch in self._batches.values():
                for index, (wid, _deadline) in list(batch.leases.items()):
                    if wid == worker.id:
                        batch.requeue_lease(index)
                        requeued += 1
            if requeued:
                self.requeued_total += requeued
                self._cond.notify_all()

    def _touch(self, worker: _Worker) -> None:
        """Any sign of life refreshes every lease the worker holds."""
        with self._lock:
            worker.last_seen = time.monotonic()
            deadline = worker.last_seen + self.lease_timeout
            for batch in self._batches.values():
                for index, (wid, _old) in list(batch.leases.items()):
                    if wid == worker.id:
                        batch.leases[index] = (wid, deadline)

    def _worker_lease_count_locked(self, worker_id: str) -> int:
        return sum(
            1
            for b in self._batches.values()
            for (wid, _) in b.leases.values()
            if wid == worker_id
        )

    def _lease_next(self, worker: _Worker) -> Dict[str, Any]:
        """Lease a contiguous run of pending tasks to ``worker``.

        One "next" RPC grants up to ``worker.range_size`` tasks from the
        front of the pending queue -- contiguous in queue order, so an
        undisturbed sweep hands each worker ascending shard runs.  The
        grant is capped by a fairness share (ceil(pending / workers)) so
        a grown range cannot starve newly attached workers.  Every task
        in the range gets its *own* lease entry: results stream back per
        index (partial-range reporting), and a mid-range death only
        re-queues the unreported tail.
        """
        with self._lock:
            now = time.monotonic()
            worker.last_seen = now
            worker.lease_rpcs += 1
            self.lease_rpcs_total += 1
            if self._closing:
                return {"ok": True, "kind": "bye"}
            for batch in self._batches.values():
                if batch.error is not None or batch.cancelled or not batch.pending:
                    continue
                # Grow the range when the worker drained its previous
                # grant fast (no lease still open, back within a
                # quarter lease): the per-RPC overhead is then the
                # dominant cost and doubling amortizes it.
                if (
                    worker.last_lease_time is not None
                    and now - worker.last_lease_time < self.lease_timeout / 4
                    and self._worker_lease_count_locked(worker.id) == 0
                ):
                    worker.range_size = min(
                        self.max_range, worker.range_size * 2
                    )
                share = -(-len(batch.pending) // max(1, len(self._workers)))
                count = min(
                    worker.range_size, len(batch.pending), max(1, share)
                )
                deadline = now + self.lease_timeout
                items: List[List[Any]] = []
                for _ in range(count):
                    index = batch.pending.popleft()
                    batch.leases[index] = (worker.id, deadline)
                    items.append([index, batch.tasks[index]])
                worker.last_lease_time = now
                worker.tasks_leased += count
                self.tasks_leased_total += count
                reply: Dict[str, Any] = {
                    "ok": True,
                    "kind": "task",
                    "batch": batch.id,
                    "items": items,
                    "epoch": batch.epoch,
                }
                if worker.id not in batch.payload_sent:
                    batch.payload_sent.add(worker.id)
                    reply["payload"] = {
                        "worker_fn": batch.worker_fn,
                        "init": batch.init,
                    }
                return reply
            return {"ok": True, "kind": "wait", "delay": self.wait_delay}

    def _batch_info(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        """Re-serve a batch's setup payload (worker pruned or missed it)."""
        with self._lock:
            batch = self._batches.get(str(msg.get("batch")))
            if batch is None:
                return {
                    "ok": False,
                    "error": f"unknown batch {msg.get('batch')!r}",
                }
            return {
                "ok": True,
                "batch": batch.id,
                "epoch": batch.epoch,
                "payload": {"worker_fn": batch.worker_fn, "init": batch.init},
            }

    def _record_result(self, worker: _Worker, msg: Dict[str, Any]) -> None:
        with self._cond:
            worker.last_seen = time.monotonic()
            worker.results += 1
            # A result mid-range is as good as a heartbeat: refresh the
            # deadlines of everything else this worker still holds.
            deadline = worker.last_seen + self.lease_timeout
            for b in self._batches.values():
                for index, (wid, _old) in list(b.leases.items()):
                    if wid == worker.id:
                        b.leases[index] = (wid, deadline)
            batch = self._batches.get(str(msg.get("batch")))
            if batch is None or batch.cancelled:
                return
            index = int(msg["index"])
            if not 0 <= index < len(batch.tasks):
                return  # never a shard of this batch; don't unpickle it
            if index in batch.results:
                batch.leases.pop(index, None)
                batch.duplicates += 1  # an expired lease was re-run first
                return
        # Validated against a live batch; unpack outside the lock
        # (results can be sizeable pickles).
        value = unpack(msg["result"])
        with self._cond:
            if batch.cancelled or index in batch.results:
                if index in batch.results:
                    batch.duplicates += 1
                batch.leases.pop(index, None)
                return
            lease = batch.leases.pop(index, None)
            if lease is None:
                batch.late += 1  # expired, but the original got here first
                try:
                    batch.pending.remove(index)
                except ValueError:
                    pass
            batch.results[index] = value
            self._cond.notify_all()

    def _record_error(self, worker: _Worker, msg: Dict[str, Any]) -> None:
        with self._cond:
            worker.last_seen = time.monotonic()
            batch = self._batches.get(str(msg.get("batch")))
            if batch is None:
                return
            if batch.error is None:
                batch.error = (
                    f"worker {worker.id} ({worker.name}) on task "
                    f"{msg.get('index')}: {msg.get('error')}"
                )
            batch.pending.clear()
            self._cond.notify_all()


def _short_hash(text: str) -> str:
    import hashlib

    return hashlib.sha256(text.encode("ascii")).hexdigest()[:16]
