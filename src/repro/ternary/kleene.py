"""Kleene-logic connectives: the gate model of the paper (Table 3).

The paper's computational model specifies the behaviour of basic gates on
metastable inputs via the metastable closure of their Boolean function.
For fan-in-2 AND and OR and for inverters this coincides with strong
Kleene three-valued logic:

* an AND gate with one input at logical 0 outputs 0 even if the other
  input is metastable (``M``);
* an OR gate with one input at logical 1 outputs 1 regardless of the
  other input;
* in all remaining mixed cases the metastable input propagates.

These functions are the *behavioural* ground truth used both by the
three-valued circuit simulator (:mod:`repro.circuits.evaluate`) and by
closure computations (:mod:`repro.ternary.resolution`).
"""

from __future__ import annotations

from typing import Iterable

from .trit import Trit

# Explicit truth tables (Table 3 of the paper).  Keys are (a, b) pairs.
_AND_TABLE = {
    (Trit.ZERO, Trit.ZERO): Trit.ZERO,
    (Trit.ZERO, Trit.ONE): Trit.ZERO,
    (Trit.ZERO, Trit.META): Trit.ZERO,
    (Trit.ONE, Trit.ZERO): Trit.ZERO,
    (Trit.ONE, Trit.ONE): Trit.ONE,
    (Trit.ONE, Trit.META): Trit.META,
    (Trit.META, Trit.ZERO): Trit.ZERO,
    (Trit.META, Trit.ONE): Trit.META,
    (Trit.META, Trit.META): Trit.META,
}

_OR_TABLE = {
    (Trit.ZERO, Trit.ZERO): Trit.ZERO,
    (Trit.ZERO, Trit.ONE): Trit.ONE,
    (Trit.ZERO, Trit.META): Trit.META,
    (Trit.ONE, Trit.ZERO): Trit.ONE,
    (Trit.ONE, Trit.ONE): Trit.ONE,
    (Trit.ONE, Trit.META): Trit.ONE,
    (Trit.META, Trit.ZERO): Trit.META,
    (Trit.META, Trit.ONE): Trit.ONE,
    (Trit.META, Trit.META): Trit.META,
}

_NOT_TABLE = {
    Trit.ZERO: Trit.ONE,
    Trit.ONE: Trit.ZERO,
    Trit.META: Trit.META,
}


def kleene_and(a: Trit, b: Trit) -> Trit:
    """Two-input AND under the metastable closure (Table 3, left)."""
    return _AND_TABLE[(a, b)]


def kleene_or(a: Trit, b: Trit) -> Trit:
    """Two-input OR under the metastable closure (Table 3, center)."""
    return _OR_TABLE[(a, b)]


def kleene_not(a: Trit) -> Trit:
    """Inverter under the metastable closure (Table 3, right)."""
    return _NOT_TABLE[a]


def kleene_and_many(inputs: Iterable[Trit]) -> Trit:
    """AND over an arbitrary number of inputs (fold of :func:`kleene_and`)."""
    result = Trit.ONE
    for value in inputs:
        result = kleene_and(result, value)
    return result


def kleene_or_many(inputs: Iterable[Trit]) -> Trit:
    """OR over an arbitrary number of inputs (fold of :func:`kleene_or`)."""
    result = Trit.ZERO
    for value in inputs:
        result = kleene_or(result, value)
    return result


def kleene_nand(a: Trit, b: Trit) -> Trit:
    """Two-input NAND: closure of NOT(AND(a, b))."""
    return kleene_not(kleene_and(a, b))


def kleene_nor(a: Trit, b: Trit) -> Trit:
    """Two-input NOR: closure of NOT(OR(a, b))."""
    return kleene_not(kleene_or(a, b))


def kleene_xor(a: Trit, b: Trit) -> Trit:
    """Two-input XOR under the metastable closure.

    XOR never masks metastability: if either input is ``M``, the output
    is ``M``.  This is why XOR-based comparators are *not*
    metastability-containing and why the paper's design avoids relying on
    XOR for decision signals.
    """
    if a is Trit.META or b is Trit.META:
        return Trit.META
    return Trit.ONE if a is not b else Trit.ZERO

def kleene_xnor(a: Trit, b: Trit) -> Trit:
    """Two-input XNOR under the metastable closure."""
    return kleene_not(kleene_xor(a, b))


def kleene_mux(sel: Trit, a: Trit, b: Trit) -> Trit:
    """Plain AND/OR 2:1 multiplexer: ``(¬sel & a) | (sel & b)``.

    Returns ``a`` when ``sel`` is 0 and ``b`` when ``sel`` is 1.  This is
    the behaviour of a standard MUX2 cell, and it is *weaker* than the
    metastable closure of the Boolean mux: with ``sel = M`` it masks
    agreeing 0s (``AND`` kills them) but NOT agreeing 1s -- ``mux(M,1,1)``
    yields ``M``.  Achieving the closure needs the consensus term ``a·b``
    (the ``cmux`` of [6], see ``repro.baselines.date17``) or the paper's
    carefully structured selection cells (Fig. 3, footnote 2).
    """
    return kleene_or(
        kleene_and(kleene_not(sel), a),
        kleene_and(sel, b),
    )


def kleene_aoi21(a: Trit, b: Trit, c: Trit) -> Trit:
    """AOI21 cell: ``NOT((a AND b) OR c)`` under the closure.

    Used only by the non-containing ``Bin-comp`` baseline, mirroring the
    paper's synthesis flow in which the binary design may use the full
    standard-cell library including And-Or-Invert cells (Section 6).
    """
    return kleene_not(kleene_or(kleene_and(a, b), c))


def kleene_oai21(a: Trit, b: Trit, c: Trit) -> Trit:
    """OAI21 cell: ``NOT((a OR b) AND c)`` under the closure."""
    return kleene_not(kleene_and(kleene_or(a, b), c))
