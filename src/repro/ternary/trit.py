"""Three-valued logic values for worst-case metastability modelling.

The paper models a potentially metastable signal as a third logic value
``M`` alongside digital ``0`` and ``1`` (Section 2, following
Friedrichs/Fuegger/Lenzen, "Metastability-Containing Circuits").  ``M``
stands for an arbitrary, possibly time-varying voltage between the two
rails; a gate must treat it as a *wild card* that may be read as either
``0`` or ``1`` -- possibly differently by different fan-out branches.

This module defines :class:`Trit`, the atomic signal value, together with
the Kleene-logic connectives that the paper's computational model assigns
to standard cells (Table 3): a gate computes the *metastable closure* of
its Boolean function.  For AND/OR/NOT the closure coincides with strong
Kleene logic, which is why plain standard cells are usable as
metastability-containing building blocks.
"""

from __future__ import annotations

import enum
from typing import Iterable, Union


class Trit(enum.Enum):
    """A single three-valued logic signal: ``0``, ``1``, or metastable ``M``.

    The enum values are chosen so that ``Trit.ZERO.value == 0`` and
    ``Trit.ONE.value == 1`` for cheap conversion from/to Python ints.
    ``M`` uses the sentinel value 2 (never interpreted numerically).
    """

    ZERO = 0
    ONE = 1
    META = 2

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_char(cls, char: str) -> "Trit":
        """Parse a single character ``'0'``, ``'1'``, or ``'M'`` (or ``'m'``)."""
        try:
            return _CHAR_TO_TRIT[char]
        except KeyError:
            raise ValueError(
                f"invalid trit character {char!r}; expected '0', '1' or 'M'"
            ) from None

    @classmethod
    def from_int(cls, value: int) -> "Trit":
        """Convert a Boolean integer (0 or 1) into a stable trit."""
        if value == 0:
            return cls.ZERO
        if value == 1:
            return cls.ONE
        raise ValueError(f"invalid trit integer {value!r}; expected 0 or 1")

    @classmethod
    def coerce(cls, value: "TritLike") -> "Trit":
        """Coerce an int, bool, str, or :class:`Trit` into a :class:`Trit`."""
        if isinstance(value, Trit):
            return value
        if isinstance(value, bool):
            return cls.ONE if value else cls.ZERO
        if isinstance(value, int):
            return cls.from_int(value)
        if isinstance(value, str):
            return cls.from_char(value)
        raise TypeError(f"cannot interpret {value!r} as a Trit")

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_stable(self) -> bool:
        """True iff the value is digital ``0`` or ``1`` (not metastable)."""
        return self is not Trit.META

    @property
    def is_metastable(self) -> bool:
        """True iff the value is ``M``."""
        return self is Trit.META

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_int(self) -> int:
        """Return 0 or 1 for a stable trit; raise for ``M``."""
        if self is Trit.META:
            raise ValueError("cannot convert metastable trit M to int")
        return self.value

    def to_char(self) -> str:
        """Return ``'0'``, ``'1'``, or ``'M'``."""
        return _TRIT_TO_CHAR[self]

    def resolutions(self) -> Iterable["Trit"]:
        """All stable values this trit may resolve to (Definition 2.5).

        A stable trit resolves only to itself; ``M`` acts as a wild card
        and may resolve to either rail.
        """
        if self is Trit.META:
            return (Trit.ZERO, Trit.ONE)
        return (self,)

    # ------------------------------------------------------------------
    # Superposition (Definition 2.1, restricted to one trit)
    # ------------------------------------------------------------------
    def superpose(self, other: "Trit") -> "Trit":
        """The ``*`` operator on single trits: equal values survive, else M."""
        return self if self is other else Trit.META

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Trit.{self.name}"

    def __str__(self) -> str:
        return self.to_char()


TritLike = Union[Trit, int, bool, str]

_CHAR_TO_TRIT = {
    "0": Trit.ZERO,
    "1": Trit.ONE,
    "M": Trit.META,
    "m": Trit.META,
}
_TRIT_TO_CHAR = {
    Trit.ZERO: "0",
    Trit.ONE: "1",
    Trit.META: "M",
}

#: Convenient module-level aliases.
ZERO = Trit.ZERO
ONE = Trit.ONE
META = Trit.META

#: All trit values, in the canonical 0 < M < 1 display order of the paper.
ALL_TRITS = (Trit.ZERO, Trit.ONE, Trit.META)


def trit(value: TritLike) -> Trit:
    """Functional alias for :meth:`Trit.coerce`."""
    return Trit.coerce(value)
