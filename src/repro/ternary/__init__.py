"""Three-valued (Kleene) logic substrate: trits, words, closure machinery.

This subpackage implements the worst-case metastability model of
Section 2 of the paper: signals take values in ``{0, 1, M}``; standard
AND/OR/INV cells compute the metastable closure of their Boolean
function; and Boolean specifications are lifted to metastable inputs via
resolution + superposition (Definitions 2.1, 2.5, 2.7).
"""

from .trit import ALL_TRITS, META, ONE, ZERO, Trit, TritLike, trit
from .word import Word, word
from .kleene import (
    kleene_and,
    kleene_and_many,
    kleene_aoi21,
    kleene_mux,
    kleene_nand,
    kleene_nor,
    kleene_not,
    kleene_oai21,
    kleene_or,
    kleene_or_many,
    kleene_xnor,
    kleene_xor,
)
from .resolution import (
    all_stable_words,
    all_words,
    covers,
    metastable_closure,
    metastable_closure_multi,
    resolution_count,
    resolutions,
    superpose,
)

__all__ = [
    "ALL_TRITS",
    "META",
    "ONE",
    "ZERO",
    "Trit",
    "TritLike",
    "trit",
    "Word",
    "word",
    "kleene_and",
    "kleene_and_many",
    "kleene_aoi21",
    "kleene_mux",
    "kleene_nand",
    "kleene_nor",
    "kleene_not",
    "kleene_oai21",
    "kleene_or",
    "kleene_or_many",
    "kleene_xnor",
    "kleene_xor",
    "all_stable_words",
    "all_words",
    "covers",
    "metastable_closure",
    "metastable_closure_multi",
    "resolution_count",
    "resolutions",
    "superpose",
]
