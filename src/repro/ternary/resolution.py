"""Resolution, superposition, and the metastable closure (Defs 2.1/2.5/2.7).

These three notions form the semantic backbone of metastability
containment:

* ``res(x)`` (Definition 2.5) is the set of stable words obtained by
  resolving every ``M`` in ``x`` to 0 or 1 independently -- the possible
  "futures" of a metastable signal vector.
* ``superpose(S)`` (Definition 2.1 / Observation 2.2) collapses a set of
  stable words into the most precise ``{0,1,M}`` word covering all of
  them (``∗S``).
* ``metastable_closure(f)`` (Definition 2.7) lifts a Boolean operator
  ``f`` to metastable inputs: resolve, apply, superpose.  The closure is
  the *best possible* deterministic behaviour of a circuit for ``f`` in
  the worst-case metastability model.

Observation 2.6 (``∗ res(x) = x`` and ``S ⊆ res(∗S)``) is verified in the
test suite.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, List, Sequence, Tuple

from .trit import Trit
from .word import Word


def resolutions(x: Word) -> List[Word]:
    """``res(x)``: all stable words obtained by resolving each M freely.

    The result has ``2**k`` elements where ``k`` is the number of
    metastable positions in ``x`` (Definition 2.5).
    """
    meta_positions = [i for i, t in enumerate(x) if t.is_metastable]
    if not meta_positions:
        return [x]
    results = []
    base = list(x)
    for assignment in itertools.product((Trit.ZERO, Trit.ONE), repeat=len(meta_positions)):
        for pos, value in zip(meta_positions, assignment):
            base[pos] = value
        results.append(Word(base))
    return results


def resolution_count(x: Word) -> int:
    """``|res(x)|`` without materialising the set."""
    return 1 << x.metastable_count


def superpose(words: Iterable[Word]) -> Word:
    """``∗S``: the superposition of a non-empty collection of words.

    Associative and commutative (Observation 2.2), so the iteration
    order is irrelevant.
    """
    iterator = iter(words)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("superposition of an empty collection is undefined") from None
    for w in iterator:
        result = result.superpose(w)
    return result


def metastable_closure(
    f: Callable[..., Word],
) -> Callable[..., Word]:
    """Lift a Boolean word operator to its metastable closure ``f_M``.

    ``f`` must accept stable :class:`Word` arguments and return a
    :class:`Word`.  The returned function accepts possibly-metastable
    words and computes ``∗ f(res(x1) × ... × res(xn))`` per
    Definition 2.7.  Cost is exponential in the total number of ``M``
    bits -- fine for the single-M valid strings of the paper and for
    exhaustive verification at small widths.
    """

    def closed(*args: Word) -> Word:
        resolved_axes = [resolutions(a) for a in args]
        outputs = (
            f(*combo) for combo in itertools.product(*resolved_axes)
        )
        return superpose(outputs)

    closed.__name__ = f"{getattr(f, '__name__', 'f')}_M"
    closed.__doc__ = f"Metastable closure of {getattr(f, '__name__', 'f')}."
    return closed


def metastable_closure_multi(
    f: Callable[..., Tuple[Word, ...]],
    arity_out: int,
) -> Callable[..., Tuple[Word, ...]]:
    """Closure of an operator returning a *tuple* of words.

    Used for 2-sort-style operators that produce (max, min) pairs: each
    output component is superposed independently, which matches applying
    Definition 2.7 to the concatenated output string and re-splitting.
    """

    def closed(*args: Word) -> Tuple[Word, ...]:
        resolved_axes = [resolutions(a) for a in args]
        collected: List[List[Word]] = [[] for _ in range(arity_out)]
        for combo in itertools.product(*resolved_axes):
            result = f(*combo)
            if len(result) != arity_out:
                raise ValueError(
                    f"operator returned {len(result)} outputs, expected {arity_out}"
                )
            for bucket, value in zip(collected, result):
                bucket.append(value)
        return tuple(superpose(bucket) for bucket in collected)

    closed.__name__ = f"{getattr(f, '__name__', 'f')}_M"
    return closed


def covers(x: Word, stable: Word) -> bool:
    """True iff ``stable ∈ res(x)`` (x's wildcards cover the stable word)."""
    if len(x) != len(stable):
        return False
    return all(
        xt.is_metastable or xt is st for xt, st in zip(x, stable)
    )


def all_words(width: int) -> List[Word]:
    """All ``3**width`` words over {0, 1, M}; exhaustive-test helper."""
    return [
        Word(bits)
        for bits in itertools.product((Trit.ZERO, Trit.ONE, Trit.META), repeat=width)
    ]


def all_stable_words(width: int) -> List[Word]:
    """All ``2**width`` stable words."""
    return [
        Word(bits)
        for bits in itertools.product((Trit.ZERO, Trit.ONE), repeat=width)
    ]
