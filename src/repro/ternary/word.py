"""Fixed-width vectors of trits -- the ``{0, 1, M}^B`` strings of the paper.

A :class:`Word` is an immutable, hashable sequence of :class:`Trit`
values.  Indexing follows the paper's 1-based convention through
:meth:`Word.bit` (``g_1`` is the most significant / first bit) while the
normal Python sequence protocol stays 0-based.  Substrings ``g_{i,j}``
(1-based, inclusive) are available via :meth:`Word.substring`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple, Union

from .trit import Trit, TritLike


class Word(Sequence[Trit]):
    """An immutable string over the alphabet ``{0, 1, M}``.

    Construction accepts a string like ``"0M10"``, an iterable of
    trit-likes, or another :class:`Word`.

    >>> Word("0M10").bit(2)
    Trit.META
    >>> str(Word([0, 1, 'M']))
    '01M'
    """

    __slots__ = ("_trits",)

    def __init__(self, bits: Union[str, Iterable[TritLike], "Word"]):
        if isinstance(bits, Word):
            self._trits: Tuple[Trit, ...] = bits._trits
        elif isinstance(bits, str):
            self._trits = tuple(Trit.from_char(c) for c in bits)
        else:
            self._trits = tuple(Trit.coerce(b) for b in bits)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, width: int) -> "Word":
        """The all-zero word of the given width."""
        return cls([Trit.ZERO] * width)

    @classmethod
    def ones(cls, width: int) -> "Word":
        """The all-one word of the given width."""
        return cls([Trit.ONE] * width)

    @classmethod
    def from_int(cls, value: int, width: int) -> "Word":
        """Standard (non-Gray) binary encoding, MSB first."""
        if value < 0 or value >= (1 << width):
            raise ValueError(f"{value} does not fit in {width} bits")
        return cls((value >> (width - 1 - i)) & 1 for i in range(width))

    # ------------------------------------------------------------------
    # Sequence protocol (0-based)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._trits)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Word(self._trits[index])
        return self._trits[index]

    def __iter__(self) -> Iterator[Trit]:
        return iter(self._trits)

    # ------------------------------------------------------------------
    # Paper-style 1-based accessors
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of trits ``B``."""
        return len(self._trits)

    def bit(self, i: int) -> Trit:
        """1-based bit access: ``w.bit(1)`` is the paper's ``g_1``."""
        if not 1 <= i <= len(self._trits):
            raise IndexError(f"bit index {i} out of range 1..{len(self._trits)}")
        return self._trits[i - 1]

    def substring(self, i: int, j: int) -> "Word":
        """The paper's ``g_{i,j}`` = ``g_i ... g_j`` (1-based, inclusive)."""
        if not 1 <= i <= j <= len(self._trits):
            raise IndexError(
                f"substring bounds ({i}, {j}) out of range for width {len(self)}"
            )
        return Word(self._trits[i - 1 : j])

    # ------------------------------------------------------------------
    # Predicates and measures
    # ------------------------------------------------------------------
    @property
    def is_stable(self) -> bool:
        """True iff no trit is metastable."""
        return all(t.is_stable for t in self._trits)

    @property
    def metastable_count(self) -> int:
        """Number of ``M`` positions."""
        return sum(1 for t in self._trits if t.is_metastable)

    def metastable_positions(self) -> Tuple[int, ...]:
        """1-based positions of metastable trits."""
        return tuple(i + 1 for i, t in enumerate(self._trits) if t.is_metastable)

    def parity(self) -> Trit:
        """``par(g)`` = sum of the bits mod 2, under the closure.

        Metastable bits make the parity metastable (XOR propagates M).
        """
        ones = sum(1 for t in self._trits if t is Trit.ONE)
        if any(t.is_metastable for t in self._trits):
            return Trit.META
        return Trit.ONE if ones % 2 else Trit.ZERO

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_int(self) -> int:
        """Interpret as plain binary (MSB first); raises if metastable."""
        value = 0
        for t in self._trits:
            value = (value << 1) | t.to_int()
        return value

    def __str__(self) -> str:
        return "".join(t.to_char() for t in self._trits)

    def __repr__(self) -> str:
        return f"Word('{self}')"

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def superpose(self, other: "Word") -> "Word":
        """The ``*`` operator of Definition 2.1 (bitwise superposition)."""
        if len(self) != len(other):
            raise ValueError(
                f"superposition of mismatched widths {len(self)} and {len(other)}"
            )
        return Word(a.superpose(b) for a, b in zip(self, other))

    def __mul__(self, other: "Word") -> "Word":
        """``g * h`` is the paper's ``g ∗ h`` superposition."""
        return self.superpose(other)

    def concat(self, other: "Word") -> "Word":
        """Concatenation ``g . h``."""
        return Word(self._trits + Word(other)._trits)

    def invert(self) -> "Word":
        """Bitwise closure inverter (M stays M)."""
        from .kleene import kleene_not

        return Word(kleene_not(t) for t in self._trits)

    def replace_bit(self, i: int, value: TritLike) -> "Word":
        """Return a copy with 1-based bit ``i`` replaced."""
        if not 1 <= i <= len(self._trits):
            raise IndexError(f"bit index {i} out of range 1..{len(self._trits)}")
        trits = list(self._trits)
        trits[i - 1] = Trit.coerce(value)
        return Word(trits)

    # ------------------------------------------------------------------
    # Equality / hashing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Word):
            return self._trits == other._trits
        if isinstance(other, str):
            try:
                return self._trits == Word(other)._trits
            except ValueError:
                return NotImplemented
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._trits)


def word(bits: Union[str, Iterable[TritLike], Word]) -> Word:
    """Functional constructor, convenient in tests and examples."""
    return Word(bits)
