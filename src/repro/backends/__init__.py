"""Pluggable plane backends: how two-plane batches are stored and run.

The compiled engine, the exhaustive verifier, and the batched network
simulator all operate on **planes** (one bit per batch lane, two planes
per net).  This package owns the choice of plane representation behind
the :class:`~repro.backends.base.PlaneBackend` interface and a small
name registry, mirroring the engine registry in
:mod:`repro.networks.simulate` and the executor registry in
:mod:`repro.verify.parallel`:

* ``"bigint"`` -- arbitrary-precision Python ints (the original
  representation, extracted verbatim; the default),
* ``"array"``  -- uint64 lane-word arrays: numpy ufuncs when numpy is
  importable, a stdlib ``array``-of-words fallback otherwise (force the
  fallback with ``REPRO_NO_NUMPY=1``),
* ``"native"`` -- the same lane-word layout executed by a C kernel built
  on first use (one call per shard for the whole compiled program); on
  hosts without a compiler, or under ``REPRO_NO_NATIVE=1``, it degrades
  to bigint planes with a one-time notice
  (:mod:`repro.backends.native`).

``"auto"`` is an *alias*, not a registered backend: it resolves to
``native`` when the kernel is built on this host and ``bigint``
otherwise (:func:`resolve_backend_name`).  The CLI defaults to it;
library callers that persist or forward backend choices should resolve
it to a concrete name first so cache and epoch keys stay stable across
hosts with different toolchains.

Selection is by name everywhere a backend crosses an API boundary
(``compile_circuit(..., backend=...)``, ``verify --backend``, pool
initializers), so backend choices serialize trivially to worker
processes and compile caches can key on ``(circuit.version, name)``.
The process-wide default is ``"bigint"`` unless ``REPRO_PLANE_BACKEND``
says otherwise; :func:`use_backend` scopes an override (used by the
``"array"`` executor in :mod:`repro.verify.parallel`).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

from ._kernel import native_disabled_by_env
from .array_backend import ArrayBackend, numpy_disabled_by_env
from .base import Plane, PlaneBackend
from .bigint import BigIntBackend
from .native import NativeBackend

__all__ = [
    "AUTO_BACKEND",
    "ArrayBackend",
    "BigIntBackend",
    "NativeBackend",
    "Plane",
    "PlaneBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "known_backend_names",
    "native_disabled_by_env",
    "numpy_disabled_by_env",
    "register_backend",
    "resolve_backend_name",
    "set_default_backend",
    "use_backend",
]

#: The auto-selection alias accepted wherever a backend name is.
AUTO_BACKEND = "auto"

_BACKENDS: Dict[str, PlaneBackend] = {}

#: Scoped override of the default backend name (see use_backend); the
#: environment variable is consulted only when this is unset.
_default_override: Optional[str] = None


def register_backend(name: str, backend: PlaneBackend) -> None:
    """Register (or replace) a plane backend under ``name``.

    The instance's ``name`` attribute is aligned with the registry key
    so compile caches keyed on it stay consistent.
    """
    backend.name = name
    _BACKENDS[name] = backend


def available_backends() -> List[str]:
    return sorted(_BACKENDS)


def known_backend_names() -> List[str]:
    """Every name accepted where a backend name is expected.

    ``available_backends()`` plus the ``auto`` alias -- what CLI
    validation and service-request validation check against.
    """
    return sorted([*_BACKENDS, AUTO_BACKEND])


def resolve_backend_name(name: Optional[str]) -> str:
    """Resolve ``auto`` (or ``None``) to a concrete registered name.

    ``auto`` picks ``native`` when its kernel is built on this host and
    ``bigint`` otherwise; resolving may therefore trigger the one-time
    kernel build.  Concrete names pass through unchanged (including
    unknown ones -- :func:`get_backend` owns that error).
    """
    if name is None:
        name = default_backend_name()
    if name == AUTO_BACKEND:
        native = _BACKENDS.get("native")
        if native is not None and getattr(native, "built", False):
            return "native"
        return "bigint"
    return name


def default_backend_name() -> str:
    """The process default: override > ``REPRO_PLANE_BACKEND`` > bigint."""
    if _default_override is not None:
        return _default_override
    return os.environ.get("REPRO_PLANE_BACKEND", "") or "bigint"


def set_default_backend(name: Optional[str]) -> None:
    """Pin (or with ``None`` clear) the process-default backend."""
    global _default_override
    if name is not None and name != AUTO_BACKEND and name not in _BACKENDS:
        raise KeyError(
            f"unknown plane backend {name!r}; available: {available_backends()}"
        )
    _default_override = name


@contextmanager
def use_backend(name: str) -> Iterator[PlaneBackend]:
    """Scope the default backend to ``name`` for a ``with`` block."""
    global _default_override
    previous = _default_override
    set_default_backend(name)
    try:
        yield get_backend(name)
    finally:
        _default_override = previous


def get_backend(
    backend: Union[str, PlaneBackend, None] = None
) -> PlaneBackend:
    """Resolve a backend argument: instance, registry name, or default.

    ``None`` means the process default (:func:`default_backend_name`);
    a :class:`PlaneBackend` instance passes through, so internal layers
    can resolve once and hand the object down.
    """
    if isinstance(backend, PlaneBackend):
        return backend
    name = resolve_backend_name(backend)
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown plane backend {name!r}; available: {available_backends()}"
        ) from None


register_backend("bigint", BigIntBackend())
register_backend("array", ArrayBackend())
register_backend("native", NativeBackend())
