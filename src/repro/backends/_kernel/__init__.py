"""Build-on-first-use loader for the native plane kernel.

The kernel is a single C file (``kernel.c``) compiled to a shared library
with whatever C compiler the host has, then loaded through :mod:`ctypes`
(no third-party build dependency).  Builds are cached per host under
``$REPRO_NATIVE_CACHE`` (default ``~/.cache/repro/native``) in a file
keyed on the SHA-256 of the kernel source, the compiler identity, and the
flags, so upgrading the source or switching compilers rebuilds while
repeat imports just ``dlopen`` the cached artifact.

Everything degrades gracefully: no compiler, a failed build, a bad cached
artifact, or ``REPRO_NO_NATIVE=1`` all make :func:`load_kernel` return
``None``, and the native backend falls back to bigint planes with a
one-time stderr notice.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile

_KERNEL_ABI = 2
_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "kernel.c")
_CFLAGS = ["-O3", "-shared", "-fPIC", "-std=c99"]

_load_attempted = False
_loaded_kernel = None
_load_error: str | None = None
_notice_emitted = False


def native_disabled_by_env() -> bool:
    return os.environ.get("REPRO_NO_NATIVE", "") not in ("", "0")


def _find_compiler() -> str | None:
    # An explicit $CC wins exclusively: if it is set but broken the build
    # fails and the backend falls back, which is how CI's no-compiler job
    # poisons the toolchain without uninstalling gcc.
    cc = os.environ.get("CC")
    if cc is not None:
        return cc if shutil.which(cc) else None
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return candidate
    return None


def _compiler_id(cc: str) -> str:
    try:
        out = subprocess.run(
            [cc, "--version"],
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        ).stdout
        first = out.splitlines()[0] if out else ""
    except (OSError, subprocess.SubprocessError):
        first = ""
    return f"{cc} {first}".strip()


def _cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "native")


def _build(cc: str, source: str, out_path: str) -> None:
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        suffix=".so", dir=os.path.dirname(out_path), prefix=".build-"
    )
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, *_CFLAGS, "-o", tmp, _SOURCE_PATH],
            capture_output=True,
            text=True,
            timeout=120,
            check=False,
        )
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout or "").strip().splitlines()
            raise RuntimeError(
                f"{cc} exited {proc.returncode}"
                + (f": {detail[-1]}" if detail else "")
            )
        os.replace(tmp, out_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    # All pointer parameters are declared c_void_p so callers can pass raw
    # integer addresses (numpy's arr.ctypes.data, array's buffer_info()[0])
    # without building ctypes pointer objects -- that per-call marshalling
    # is measurable on the hot verification path.  c_void_p also accepts
    # ctypes arrays directly, so cached int32 slot/program arrays pass as-is.
    ptr = ctypes.c_void_p
    i64 = ctypes.c_int64
    u64 = ctypes.c_uint64
    lib.repro_kernel_abi.argtypes = []
    lib.repro_kernel_abi.restype = ctypes.c_int32
    lib.repro_run_program.argtypes = [ptr, i64, ptr, ptr, i64, u64]
    lib.repro_run_program.restype = None
    lib.repro_popcount.argtypes = [ptr, i64]
    lib.repro_popcount.restype = i64
    lib.repro_extract_lanes.argtypes = [ptr, i64, ptr, i64]
    lib.repro_extract_lanes.restype = i64
    lib.repro_bitwise.argtypes = [ctypes.c_int32, ptr, ptr, ptr, i64]
    lib.repro_bitwise.restype = None
    lib.repro_not_masked.argtypes = [ptr, ptr, i64, u64]
    lib.repro_not_masked.restype = None
    lib.repro_fill_pattern.argtypes = [ptr, i64, ptr, i64, i64]
    lib.repro_fill_pattern.restype = None
    lib.repro_fill_expand.argtypes = [ptr, i64, ptr, i64, i64]
    lib.repro_fill_expand.restype = None
    lib.repro_fill_prefix.argtypes = [ptr, i64, i64, i64, i64]
    lib.repro_fill_prefix.restype = None
    lib.repro_tile_words.argtypes = []
    lib.repro_tile_words.restype = i64
    lib.repro_run_program_select_diff.argtypes = [
        ptr, i64,            # prog
        ptr, ptr, ptr, i64,  # preset slots + plane row pointer tables
        ptr, i64,            # zeroed slots
        ptr, i64,            # [slot, a_slot, b_slot] compare triples
        ptr,                 # sel row
        ptr, i64,            # scratch, n_slots
        i64, u64,            # words, tail_mask
        ptr,                 # diff
    ]
    lib.repro_run_program_select_diff.restype = i64
    return lib


def _load_uncached() -> tuple[ctypes.CDLL | None, str | None]:
    if native_disabled_by_env():
        return None, "REPRO_NO_NATIVE is set"
    try:
        with open(_SOURCE_PATH, "r", encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        return None, f"kernel source unreadable: {exc}"
    cc = _find_compiler()
    if cc is None:
        return None, "no C compiler found (checked $CC, cc, gcc, clang)"
    key = hashlib.sha256(
        "\x00".join([source, _compiler_id(cc), " ".join(_CFLAGS)]).encode()
    ).hexdigest()[:16]
    try:
        cache_dir = _cache_dir()
        so_path = os.path.join(cache_dir, f"repro_kernel_{key}.so")
        if not os.path.exists(so_path):
            _build(cc, source, so_path)
        lib = _bind(ctypes.CDLL(so_path))
    except (OSError, RuntimeError, subprocess.SubprocessError) as exc:
        # A stale or foreign cache dir shouldn't kill the backend: retry
        # once in a throwaway location before giving up.
        try:
            tmp_dir = tempfile.mkdtemp(prefix="repro-native-")
            so_path = os.path.join(tmp_dir, f"repro_kernel_{key}.so")
            _build(cc, source, so_path)
            lib = _bind(ctypes.CDLL(so_path))
        except (OSError, RuntimeError, subprocess.SubprocessError):
            return None, f"kernel build failed with {cc}: {exc}"
    if lib.repro_kernel_abi() != _KERNEL_ABI:
        return None, (
            f"cached kernel ABI {lib.repro_kernel_abi()} != expected {_KERNEL_ABI}"
        )
    return lib, None


def load_kernel():
    """Return the bound :class:`ctypes.CDLL` for the kernel, or ``None``.

    The result (including failure) is cached for the life of the process;
    the failure reason is available via :func:`load_failure_reason`.
    """
    global _load_attempted, _loaded_kernel, _load_error
    if not _load_attempted:
        _load_attempted = True
        _loaded_kernel, _load_error = _load_uncached()
    return _loaded_kernel


def load_failure_reason() -> str | None:
    load_kernel()
    return _load_error


def emit_fallback_notice() -> None:
    """Print the one-time stderr notice for the bigint fallback path."""
    global _notice_emitted
    if _notice_emitted:
        return
    _notice_emitted = True
    reason = load_failure_reason() or "kernel unavailable"
    print(
        f"repro: native plane kernel unavailable ({reason}); "
        "falling back to bigint planes",
        file=sys.stderr,
    )


def _reset_for_tests() -> None:
    global _load_attempted, _loaded_kernel, _load_error, _notice_emitted
    _load_attempted = False
    _loaded_kernel = None
    _load_error = None
    _notice_emitted = False
