/* One-call executor for compiled two-plane programs over uint64 lane words.
 *
 * The Python side (repro.backends.native) lowers a compiled op list --
 * (opcode, dst, a, b) tuples over plane slots, see repro.circuits.compiled
 * -- to a flat int32 array once per program, packs the slot planes into
 * two contiguous slabs (plane 0 / plane 1, one row of `words` uint64 lane
 * words per slot, lane j at bit j&63 of word j>>6), and calls
 * repro_run_program once per shard.  The whole gate sweep then runs here
 * without re-entering the interpreter between ops.
 *
 * Two-plane Kleene semantics (Table 3 of the paper):
 *   AND: d1 = a1 & b1, d0 = a0 | b0        OR is the plane-dual
 *   INV: swap planes                        BUF: copy
 *   XOR: d0 = (a0&b0)|(a1&b1), d1 = (a0&b1)|(a1&b0)
 *
 * Opcode values mirror repro.backends.base (OP_AND..OP_BUF); the Python
 * loader checks repro_kernel_abi() before trusting a cached build.
 *
 * Tail-mask note: every input row is already masked (bits at lane index
 * >= lanes are zero) and all five ops preserve that invariant, so the
 * sweep needs no re-masking; `tail_mask` is still applied to each written
 * row's last word as a guard, and repro_not_masked is the one primitive
 * that genuinely re-masks.
 */

#include <stdint.h>

#define REPRO_KERNEL_ABI 2

#define OP_AND 0
#define OP_OR 1
#define OP_INV 2
#define OP_XOR 3
#define OP_BUF 4

int32_t repro_kernel_abi(void) { return REPRO_KERNEL_ABI; }

/* Lane-word tile: the program loop runs all ops over one column block
 * of the slot slab before moving on, so the working set per tile is
 * 2 planes * n_slots * REPRO_TILE_WORDS * 8 bytes -- cache-resident for
 * realistic slot counts (a few hundred) -- instead of streaming every
 * slot row through memory once per op.  Ops are independent across
 * words, so tiling the word axis does not change results. */
#define REPRO_TILE_WORDS 256

void repro_run_program(const int32_t *prog, int64_t n_ops, uint64_t *p0,
                       uint64_t *p1, int64_t words, uint64_t tail_mask) {
    for (int64_t t0 = 0; t0 < words; t0 += REPRO_TILE_WORDS) {
        const int64_t t1 =
            t0 + REPRO_TILE_WORDS < words ? t0 + REPRO_TILE_WORDS : words;
        const int64_t span = t1 - t0;
        const int last = t1 == words;
        for (int64_t i = 0; i < n_ops; i++) {
            const int32_t op = prog[4 * i];
            uint64_t *d0 = p0 + (int64_t)prog[4 * i + 1] * words + t0;
            uint64_t *d1 = p1 + (int64_t)prog[4 * i + 1] * words + t0;
            const uint64_t *a0 = p0 + (int64_t)prog[4 * i + 2] * words + t0;
            const uint64_t *a1 = p1 + (int64_t)prog[4 * i + 2] * words + t0;
            const uint64_t *b0 = p0 + (int64_t)prog[4 * i + 3] * words + t0;
            const uint64_t *b1 = p1 + (int64_t)prog[4 * i + 3] * words + t0;
            int64_t w;
            switch (op) {
            case OP_AND:
                for (w = 0; w < span; w++) {
                    d1[w] = a1[w] & b1[w];
                    d0[w] = a0[w] | b0[w];
                }
                break;
            case OP_OR:
                for (w = 0; w < span; w++) {
                    d0[w] = a0[w] & b0[w];
                    d1[w] = a1[w] | b1[w];
                }
                break;
            case OP_INV:
                for (w = 0; w < span; w++) {
                    d0[w] = a1[w];
                    d1[w] = a0[w];
                }
                break;
            case OP_XOR:
                for (w = 0; w < span; w++) {
                    const uint64_t x0 = a0[w], x1 = a1[w];
                    const uint64_t y0 = b0[w], y1 = b1[w];
                    d0[w] = (x0 & y0) | (x1 & y1);
                    d1[w] = (x0 & y1) | (x1 & y0);
                }
                break;
            default: /* OP_BUF */
                for (w = 0; w < span; w++) {
                    d0[w] = a0[w];
                    d1[w] = a1[w];
                }
                break;
            }
            if (last && span) {
                d0[span - 1] &= tail_mask;
                d1[span - 1] &= tail_mask;
            }
        }
    }
}

int64_t repro_tile_words(void) { return REPRO_TILE_WORDS; }

int64_t repro_popcount(const uint64_t *a, int64_t words);

/* Fused program + select-compare: run the ops and reduce the compared
 * slots into one mismatch plane, per tile, entirely inside a
 * caller-provided scratch slab (2 * n_slots * REPRO_TILE_WORDS words)
 * that stays cache-resident.  Each compared slot ``cmp[3j]`` is checked
 * against the lane-wise mux of two other slots:
 *
 *   expected = (sel & slot cmp[3j+1]) | (~sel & slot cmp[3j+2])
 *
 * computed in-tile on both planes -- the expected planes never
 * materialize.  Only the input rows, ``sel``, and ``diff`` touch their
 * full-width buffers, so the whole verification shard streams DRAM
 * once instead of once per op.
 *
 *   prog/n_ops      flat [op,dst,a,b] int32 program
 *   in_slots/in0/in1/n_in    slot index + row pointers per preset slot
 *   zero_slots/n_zero        slots read or compared but never written
 *   cmp/n_out       flat [slot, a_slot, b_slot] int32 triples
 *   sel             `words` select mask row (tail-masked)
 *   scratch         2 * n_slots * REPRO_TILE_WORDS words
 *   diff            `words` words, fully overwritten
 *
 * Returns the popcount of `diff` (mismatching lanes).  Input rows and
 * `sel` must already be tail-masked; `tail_mask` is applied to the
 * final diff word as a guard. */
int64_t repro_run_program_select_diff(
    const int32_t *prog, int64_t n_ops, const int32_t *in_slots,
    const uint64_t **in0, const uint64_t **in1, int64_t n_in,
    const int32_t *zero_slots, int64_t n_zero, const int32_t *cmp,
    int64_t n_out, const uint64_t *sel, uint64_t *scratch, int64_t n_slots,
    int64_t words, uint64_t tail_mask, uint64_t *diff) {
    uint64_t *s0 = scratch;
    uint64_t *s1 = scratch + n_slots * REPRO_TILE_WORDS;
    for (int64_t t0 = 0; t0 < words; t0 += REPRO_TILE_WORDS) {
        const int64_t span =
            words - t0 < REPRO_TILE_WORDS ? words - t0 : REPRO_TILE_WORDS;
        int64_t i, w;
        for (i = 0; i < n_zero; i++) {
            uint64_t *r0 = s0 + (int64_t)zero_slots[i] * REPRO_TILE_WORDS;
            uint64_t *r1 = s1 + (int64_t)zero_slots[i] * REPRO_TILE_WORDS;
            for (w = 0; w < span; w++) {
                r0[w] = 0;
                r1[w] = 0;
            }
        }
        for (i = 0; i < n_in; i++) {
            uint64_t *r0 = s0 + (int64_t)in_slots[i] * REPRO_TILE_WORDS;
            uint64_t *r1 = s1 + (int64_t)in_slots[i] * REPRO_TILE_WORDS;
            const uint64_t *v0 = in0[i] + t0;
            const uint64_t *v1 = in1[i] + t0;
            for (w = 0; w < span; w++) {
                r0[w] = v0[w];
                r1[w] = v1[w];
            }
        }
        for (i = 0; i < n_ops; i++) {
            const int32_t op = prog[4 * i];
            uint64_t *d0 = s0 + (int64_t)prog[4 * i + 1] * REPRO_TILE_WORDS;
            uint64_t *d1 = s1 + (int64_t)prog[4 * i + 1] * REPRO_TILE_WORDS;
            const uint64_t *a0 =
                s0 + (int64_t)prog[4 * i + 2] * REPRO_TILE_WORDS;
            const uint64_t *a1 =
                s1 + (int64_t)prog[4 * i + 2] * REPRO_TILE_WORDS;
            const uint64_t *b0 =
                s0 + (int64_t)prog[4 * i + 3] * REPRO_TILE_WORDS;
            const uint64_t *b1 =
                s1 + (int64_t)prog[4 * i + 3] * REPRO_TILE_WORDS;
            switch (op) {
            case OP_AND:
                for (w = 0; w < span; w++) {
                    d1[w] = a1[w] & b1[w];
                    d0[w] = a0[w] | b0[w];
                }
                break;
            case OP_OR:
                for (w = 0; w < span; w++) {
                    d0[w] = a0[w] & b0[w];
                    d1[w] = a1[w] | b1[w];
                }
                break;
            case OP_INV:
                for (w = 0; w < span; w++) {
                    d0[w] = a1[w];
                    d1[w] = a0[w];
                }
                break;
            case OP_XOR:
                for (w = 0; w < span; w++) {
                    const uint64_t x0 = a0[w], x1 = a1[w];
                    const uint64_t y0 = b0[w], y1 = b1[w];
                    d0[w] = (x0 & y0) | (x1 & y1);
                    d1[w] = (x0 & y1) | (x1 & y0);
                }
                break;
            default: /* OP_BUF */
                for (w = 0; w < span; w++) {
                    d0[w] = a0[w];
                    d1[w] = a1[w];
                }
                break;
            }
        }
        for (w = 0; w < span; w++)
            diff[t0 + w] = 0;
        for (i = 0; i < n_out; i++) {
            const uint64_t *r0 = s0 + (int64_t)cmp[3 * i] * REPRO_TILE_WORDS;
            const uint64_t *r1 = s1 + (int64_t)cmp[3 * i] * REPRO_TILE_WORDS;
            const uint64_t *a0 =
                s0 + (int64_t)cmp[3 * i + 1] * REPRO_TILE_WORDS;
            const uint64_t *a1 =
                s1 + (int64_t)cmp[3 * i + 1] * REPRO_TILE_WORDS;
            const uint64_t *b0 =
                s0 + (int64_t)cmp[3 * i + 2] * REPRO_TILE_WORDS;
            const uint64_t *b1 =
                s1 + (int64_t)cmp[3 * i + 2] * REPRO_TILE_WORDS;
            const uint64_t *sl = sel + t0;
            uint64_t *d = diff + t0;
            for (w = 0; w < span; w++) {
                /* ~sl leaves tail bits set, but the b-plane rows are
                 * tail-masked, so the mux result stays masked. */
                const uint64_t s = sl[w];
                const uint64_t e0 = (s & a0[w]) | (~s & b0[w]);
                const uint64_t e1 = (s & a1[w]) | (~s & b1[w]);
                d[w] |= (r0[w] ^ e0) | (r1[w] ^ e1);
            }
        }
    }
    if (words)
        diff[words - 1] &= tail_mask;
    return repro_popcount(diff, words);
}

static int64_t popcount64(uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
    return (int64_t)__builtin_popcountll(x);
#else
    int64_t n = 0;
    while (x) {
        x &= x - 1;
        n++;
    }
    return n;
#endif
}

int64_t repro_popcount(const uint64_t *a, int64_t words) {
    int64_t total = 0;
    for (int64_t w = 0; w < words; w++)
        total += popcount64(a[w]);
    return total;
}

/* Ascending indices of set lanes (mismatch-lane extraction for failure
 * reports).  Writes at most `cap` indices into `out`; returns the number
 * written.  Callers size `out` with repro_popcount first. */
int64_t repro_extract_lanes(const uint64_t *a, int64_t words, int32_t *out,
                            int64_t cap) {
    int64_t n = 0;
    for (int64_t w = 0; w < words && n < cap; w++) {
        uint64_t word = a[w];
        while (word && n < cap) {
#if defined(__GNUC__) || defined(__clang__)
            const int bit = __builtin_ctzll(word);
#else
            int bit = 0;
            while (!((word >> bit) & 1))
                bit++;
#endif
            out[n++] = (int32_t)(w * 64 + bit);
            word &= word - 1;
        }
    }
    return n;
}

/* Primitive plane ops for the no-numpy built variant: op 0=AND 1=OR
 * 2=XOR, matching repro.backends.native._BITWISE. */
void repro_bitwise(int32_t op, const uint64_t *a, const uint64_t *b,
                   uint64_t *out, int64_t words) {
    int64_t w;
    switch (op) {
    case 0:
        for (w = 0; w < words; w++)
            out[w] = a[w] & b[w];
        break;
    case 1:
        for (w = 0; w < words; w++)
            out[w] = a[w] | b[w];
        break;
    default:
        for (w = 0; w < words; w++)
            out[w] = a[w] ^ b[w];
        break;
    }
}

void repro_not_masked(const uint64_t *a, uint64_t *out, int64_t words,
                      uint64_t tail_mask) {
    for (int64_t w = 0; w < words; w++)
        out[w] = ~a[w];
    if (words)
        out[words - 1] &= tail_mask;
}

/* ------------------------------------------------------------------ */
/* Structured packing: the three bit-layout shapes the exhaustive pair
 * product is built from (PlaneBackend.from_pattern / expand_bits /
 * from_prefix_runs).  All three zero `dst` (length `words`) first and
 * set only bits below `lanes`.                                        */
/* ------------------------------------------------------------------ */

static void zero_words(uint64_t *dst, int64_t words) {
    for (int64_t w = 0; w < words; w++)
        dst[w] = 0;
}

/* OR the low `nbits` of `src` into `dst` starting at bit `off`. */
static void or_bits(uint64_t *dst, int64_t words, int64_t off,
                    const uint64_t *src, int64_t nbits) {
    const int64_t w = off >> 6;
    const int sh = (int)(off & 63);
    const int64_t nw = (nbits + 63) >> 6;
    for (int64_t i = 0; i < nw; i++) {
        uint64_t v = src[i];
        const int64_t rem = nbits - (i << 6);
        if (rem < 64)
            v &= ~(uint64_t)0 >> (64 - rem);
        dst[w + i] |= v << sh;
        if (sh && w + i + 1 < words)
            dst[w + i + 1] |= v >> (64 - sh);
    }
}

/* Set the bit run [start, start + len). */
static void set_ones(uint64_t *dst, int64_t start, int64_t len) {
    if (len <= 0)
        return;
    const int64_t end = start + len;
    const int64_t w0 = start >> 6, w1 = (end - 1) >> 6;
    const uint64_t first = ~(uint64_t)0 << (start & 63);
    const uint64_t last = ~(uint64_t)0 >> (63 - ((end - 1) & 63));
    if (w0 == w1) {
        dst[w0] |= first & last;
        return;
    }
    dst[w0] |= first;
    for (int64_t w = w0 + 1; w < w1; w++)
        dst[w] = ~(uint64_t)0;
    dst[w1] |= last;
}

void repro_fill_pattern(uint64_t *dst, int64_t words, const uint64_t *pat,
                        int64_t period, int64_t lanes) {
    zero_words(dst, words);
    for (int64_t off = 0; off < lanes; off += period) {
        const int64_t n = lanes - off < period ? lanes - off : period;
        or_bits(dst, words, off, pat, n);
    }
}

void repro_fill_expand(uint64_t *dst, int64_t words, const uint64_t *bits,
                       int64_t run, int64_t lanes) {
    zero_words(dst, words);
    int64_t k = 0;
    for (int64_t off = 0; off < lanes; off += run, k++) {
        if ((bits[k >> 6] >> (k & 63)) & 1) {
            const int64_t n = lanes - off < run ? lanes - off : run;
            set_ones(dst, off, n);
        }
    }
}

void repro_fill_prefix(uint64_t *dst, int64_t words, int64_t first,
                       int64_t period, int64_t lanes) {
    zero_words(dst, words);
    int64_t k = 0;
    for (int64_t off = 0; off < lanes; off += period, k++) {
        int64_t n = first + k < period ? first + k : period;
        if (lanes - off < n)
            n = lanes - off;
        set_ones(dst, off, n);
    }
}
