"""The plane-backend interface: pluggable storage for two-plane batches.

Everything hot in this codebase runs on **planes** -- bitmaps with one
bit per *lane* (batch vector), two per net (:mod:`repro.circuits.compiled`).
Until this package existed the plane representation was hardcoded as
arbitrary-precision Python ints; a :class:`PlaneBackend` abstracts that
choice so the same compiled programs, verification sweeps, and batch
simulations can run on fixed-width word arrays (numpy, stdlib
``array``) -- the bit-slicing-over-words layout that trades big-int
carry chains for vectorized word ops.

A backend owns four concerns:

* **allocation / packing** -- :meth:`~PlaneBackend.zeros`,
  :meth:`~PlaneBackend.ones`, :meth:`~PlaneBackend.from_int`,
  :meth:`~PlaneBackend.from_bytes`, and the inverse conversions
  (:meth:`~PlaneBackend.to_int`, :meth:`~PlaneBackend.to_bytes`, both
  little-endian in lane order so every backend round-trips through the
  same canonical byte form);
* **plane ops** -- the bitwise AND/OR/XOR/NOT that the two-plane Kleene
  connectives are built from (``band``/``bor``/``bxor``/``bnot``);
* **lane addressing** -- :meth:`~PlaneBackend.get_lane`,
  :meth:`~PlaneBackend.iter_set_lanes` (mismatch-lane extraction for
  failure reports), :meth:`~PlaneBackend.popcount`;
* **program execution** -- :meth:`~PlaneBackend.run_ops`, the compiled
  op sweep over plane slots.  This is *the* hot loop, so each backend
  specializes it (big-int: inline int operators; numpy: ufuncs into a
  preallocated slab) instead of paying a virtual call per gate.

Invariant: every plane is **tail-masked** -- bits at lane indices
``>= lanes`` are zero.  Constructors enforce it, ``bnot`` re-masks, and
the structural ops (AND/OR/XOR) preserve it, so queries like
``popcount`` and ``iter_set_lanes`` never see garbage lanes.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, List, Sequence, Tuple

__all__ = ["Plane", "PlaneBackend"]

#: A backend-native plane object (int, numpy array, ``array.array`` ...).
Plane = Any

#: Compiled-program opcodes (shared with repro.circuits.compiled; defined
#: here so backends can specialize run_ops without a circular import).
OP_AND = 0
OP_OR = 1
OP_INV = 2
OP_XOR = 3
OP_BUF = 4


class PlaneBackend(abc.ABC):
    """Strategy object for one plane representation.

    Subclasses are stateless (safe to share across threads/processes and
    to key compile caches on ``name``); all methods are pure functions
    of their arguments.  ``word_bits`` is the preferred lane-word
    granularity: shard planners align lane budgets to it so no shard
    ends mid-word (:func:`repro.verify.parallel._default_pair_shard_size`).
    """

    #: Registry name; also the compile-cache key component.
    name: str = "abstract"
    #: Preferred lane-word size in bits (1 bigint byte-walks at 8; word
    #: backends use their machine word).
    word_bits: int = 8
    #: Preferred lanes per verification shard: the batch size at which
    #: this representation's op sweep runs best (big ints like planes
    #: that keep the whole slot file cache-resident; word-array backends
    #: want more lanes per op to amortize per-call overhead).
    preferred_shard_lanes: int = 1 << 14

    # ------------------------------------------------------------------
    # Allocation / packing
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def zeros(self, lanes: int) -> Plane:
        """The all-zero plane over ``lanes`` lanes."""

    @abc.abstractmethod
    def ones(self, lanes: int) -> Plane:
        """The all-ones (full mask) plane over ``lanes`` lanes."""

    @abc.abstractmethod
    def from_int(self, value: int, lanes: int) -> Plane:
        """Pack a non-negative int (bit ``j`` = lane ``j``) into a plane."""

    @abc.abstractmethod
    def from_bytes(self, data: bytes, lanes: int) -> Plane:
        """Pack little-endian lane bytes (``ceil(lanes/8)`` of them)."""

    def coerce(self, plane: Plane, lanes: int) -> Plane:
        """Accept a native plane as-is; convert a plain int.

        The compiled executor takes input planes from both int-space
        constructions (pair products, encoders) and native
        :class:`~repro.circuits.compiled.TritVec` planes; this is the
        single adapter between the two.
        """
        if isinstance(plane, int):
            return self.from_int(plane, lanes)
        return plane

    # ------------------------------------------------------------------
    # Structured packing
    #
    # The exhaustive pair product is built from three bit-layout shapes
    # (repro.verify.exhaustive): a per-string pattern tiled across
    # g-row blocks, single bits smeared into row-wide runs, and a
    # block-triangular prefix mask.  They are representation-level
    # constructions (ints -> planes), so backends may build them
    # natively instead of routing ~lanes-bit ints through from_int --
    # the defaults below are the reference semantics every override
    # must match bit-for-bit.
    # ------------------------------------------------------------------
    def from_pattern(self, value: int, period: int, lanes: int) -> Plane:
        """``value`` (a ``period``-bit pattern) tiled every ``period`` bits.

        Replicated ``ceil(lanes / period)`` times and tail-masked to
        ``lanes``.
        """
        reps = -(-lanes // period) if lanes else 0
        if not reps:
            return self.zeros(lanes)
        # 1 bit at the base of each block: replicates the pattern across
        # the whole plane with one multiply.
        rep = ((1 << (period * reps)) - 1) // ((1 << period) - 1)
        return self.from_int(value * rep, lanes)

    def expand_bits(self, value: int, run: int, lanes: int) -> Plane:
        """Bit ``k`` of ``value`` smeared into a ``run``-wide block.

        Block ``k`` covers bits ``[k * run, (k + 1) * run)``; the result
        is tail-masked to ``lanes``.
        """
        count = -(-lanes // run) if lanes else 0
        block = (1 << run) - 1
        out = 0
        for k in range(count):
            if (value >> k) & 1:
                out |= block << (k * run)
        return self.from_int(out, lanes)

    def from_prefix_runs(self, first: int, period: int, lanes: int) -> Plane:
        """Row ``k`` (one ``period``-bit block) gets ``first + k`` low ones.

        The block-triangular select mask of the pair sweep; rows are
        clipped to ``period`` bits and the plane to ``lanes``.
        """
        count = -(-lanes // period) if lanes else 0
        out = 0
        for k in range(count):
            out |= ((1 << min(first + k, period)) - 1) << (k * period)
        return self.from_int(out, lanes)

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def to_int(self, plane: Plane, lanes: int) -> int:
        """The plane as a Python int (bit ``j`` = lane ``j``)."""

    @abc.abstractmethod
    def to_bytes(self, plane: Plane, lanes: int) -> bytes:
        """Exactly ``ceil(lanes/8)`` little-endian lane bytes.

        The canonical form: equal planes on *any* backend produce equal
        byte strings, which is what cross-backend ``TritVec`` equality
        and hashing compare.
        """

    # ------------------------------------------------------------------
    # Bitwise plane ops
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def band(self, a: Plane, b: Plane) -> Plane:
        """Bitwise AND."""

    @abc.abstractmethod
    def bor(self, a: Plane, b: Plane) -> Plane:
        """Bitwise OR."""

    @abc.abstractmethod
    def bxor(self, a: Plane, b: Plane) -> Plane:
        """Bitwise XOR."""

    @abc.abstractmethod
    def bnot(self, a: Plane, lanes: int) -> Plane:
        """Bitwise complement, re-masked to ``lanes`` lanes."""

    # ------------------------------------------------------------------
    # Queries / lane addressing
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def eq(self, a: Plane, b: Plane) -> bool:
        """True iff the planes are bit-identical."""

    @abc.abstractmethod
    def any(self, a: Plane) -> bool:
        """True iff any lane bit is set."""

    @abc.abstractmethod
    def popcount(self, a: Plane) -> int:
        """Number of set lane bits."""

    @abc.abstractmethod
    def get_lane(self, a: Plane, lane: int) -> int:
        """Bit of one lane (0 or 1)."""

    def detach(self, a: Plane) -> Plane:
        """A self-contained copy of a plane that may alias shared storage.

        ``run_ops`` implementations are free to hand back views into a
        per-run scratch slab; callers that *retain* planes beyond the
        run (e.g. wrapping output slots in TritVecs) detach them so one
        kept output does not pin the whole slab.  Default: planes are
        already self-contained.
        """
        return a

    def iter_set_lanes(self, a: Plane, lanes: int) -> Iterator[int]:
        """Ascending indices of set lanes (mismatch-lane extraction).

        Default: byte-walk over the canonical form -- O(1) per probed
        byte, and only failure reporting ever calls it.
        """
        raw = self.to_bytes(a, lanes)
        for byte_index, byte in enumerate(raw):
            if byte:
                base = byte_index << 3
                for bit in range(8):
                    if byte & (1 << bit):
                        yield base + bit

    # ------------------------------------------------------------------
    # Compiled-program execution
    # ------------------------------------------------------------------
    def run_ops(
        self,
        ops: Sequence[Tuple[int, int, int, int]],
        p0: List[Plane],
        p1: List[Plane],
    ) -> None:
        """Execute a compiled op list over the slot planes, in place.

        ``ops`` entries are ``(opcode, dst, a, b)`` over slot indices
        (two-plane Kleene semantics, :mod:`repro.circuits.compiled`);
        input and constant slots of ``p0``/``p1`` are pre-filled, every
        ``dst`` slot is written exactly once, and planes already stored
        in slots are never mutated (aliasing buffered copies is safe).

        This generic version is built from the primitive ops; concrete
        backends override it with a specialized loop.
        """
        band, bor, bxor = self.band, self.bor, self.bxor
        for op, d, a, b in ops:
            if op == OP_AND:
                p1[d] = band(p1[a], p1[b])
                p0[d] = bor(p0[a], p0[b])
            elif op == OP_OR:
                p0[d] = band(p0[a], p0[b])
                p1[d] = bor(p1[a], p1[b])
            elif op == OP_INV:
                p0[d] = p1[a]
                p1[d] = p0[a]
            elif op == OP_XOR:
                a0, a1, b0, b1 = p0[a], p1[a], p0[b], p1[b]
                p0[d] = bor(band(a0, b0), band(a1, b1))
                p1[d] = bor(band(a0, b1), band(a1, b0))
            else:  # OP_BUF
                p0[d] = p0[a]
                p1[d] = p1[a]

    def run_ops_select_diff(
        self,
        ops: Sequence[Tuple[int, int, int, int]],
        n_slots: int,
        inputs: Sequence[Tuple[int, Plane, Plane]],
        cmp: Sequence[Tuple[int, int, int]],
        sel: Plane,
        nsel: Plane,
        lanes: int,
    ) -> Tuple[Plane, int]:
        """Run a program and reduce it to a mismatch plane in one step.

        ``inputs`` presets slots (``(slot, p0, p1)``, already
        backend-native); every other slot starts all-zero.  Each
        ``cmp`` triple ``(slot, a_slot, b_slot)`` checks ``slot``
        against the lane-wise mux of two other slots,

            ``expected = (sel & a_slot) | (nsel & b_slot)``

        on both planes (``nsel`` is the tail-masked complement of
        ``sel``).  The result is ``(diff, mismatches)`` where ``diff``
        ORs ``(got0 ^ exp0) | (got1 ^ exp1)`` over all triples and
        ``mismatches`` is its popcount -- the whole-shard compare of
        :mod:`repro.verify.exhaustive`, whose expected outputs are
        exactly ``sel``-muxes of the input planes.  Backends that
        execute programs natively can fuse the compare into the sweep
        so neither the intermediate slot planes nor the expected planes
        ever materialize; this generic version just runs
        :meth:`run_ops` and folds with the primitive ops, which is the
        reference semantics every override must match bit-for-bit.
        """
        zero = self.zeros(lanes)
        p0: List[Plane] = [zero] * n_slots
        p1: List[Plane] = [zero] * n_slots
        for slot, a0, a1 in inputs:
            p0[slot] = a0
            p1[slot] = a1
        self.run_ops(ops, p0, p1)
        band, bor, bxor = self.band, self.bor, self.bxor
        diff = self.zeros(lanes)
        for slot, a, b in cmp:
            e0 = bor(band(sel, p0[a]), band(nsel, p0[b]))
            e1 = bor(band(sel, p1[a]), band(nsel, p1[b]))
            diff = bor(diff, bor(bxor(p0[slot], e0), bxor(p1[slot], e1)))
        return diff, self.popcount(diff)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PlaneBackend {self.name!r}>"
