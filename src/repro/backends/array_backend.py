"""Fixed-width word-array planes: numpy when importable, stdlib fallback.

A plane is a sequence of unsigned 64-bit **lane words**; lane ``j``
lives at bit ``j & 63`` of word ``j >> 6`` (little-endian lane order, so
the canonical byte form matches the big-int backend exactly).  This is
the classic bit-slicing-over-words layout: instead of one
carry-normalized big int per plane, ops run over flat machine words --
vectorized by numpy ufuncs when numpy is importable, by a pure-python
word loop over :class:`array.array` otherwise.

* **numpy variant** -- planes are ``uint64`` ndarrays;
  :meth:`ArrayBackend.run_ops` executes the compiled program with
  bitwise ufuncs writing into one preallocated slab (two rows per op),
  so the sweep does no per-op allocation.
* **fallback variant** -- planes are ``array("Q")`` word arrays and the
  ops are ``map``-based word loops.  Slow, but dependency-free and
  bit-identical; it is what CI runs with numpy uninstalled.

Variant selection is automatic at construction: numpy is used when
importable unless the ``REPRO_NO_NUMPY`` environment variable is set to
a non-empty value other than ``0`` (the tested escape hatch for forcing
the fallback).  Pass ``use_numpy=True/False`` to pin a variant
explicitly (``True`` raises if numpy is missing).

Known small-B regression (documented, gated)
--------------------------------------------
Below ~B=8 the numpy variant is *slower* than the big-int backend: a
shard is then only a handful of words wide, so each per-op ufunc call
is ~0.5 us of Python/numpy dispatch wrapped around ~50 ns of actual
word work, while a big-int op on the same lanes is a single ~100 ns
int operation.  Fusing independent same-opcode ops into batched
fancy-indexed calls does NOT fix this: a level-scheduled slab
implementation was measured at 3-4x *slower* than the per-op loop,
because one fancy gather costs ~1.3 us and one fancy scatter ~2.4-3 us
-- a fused group of 8 ANDs breaks even with 8 per-op calls at best and
loses on XOR.  The regression is therefore accepted and gated instead:
the engine benchmark pins ``array`` near parity with ``bigint`` at
B>=10 (where slab width amortizes dispatch) and the ``auto`` backend
never selects ``array``, so small-B sweeps always get ``bigint`` or
the native kernel.
"""

from __future__ import annotations

import os
import sys
from array import array
from operator import and_, or_, xor
from typing import Any, List, Optional, Sequence, Tuple

from .base import OP_AND, OP_BUF, OP_INV, OP_OR, PlaneBackend

__all__ = ["ArrayBackend", "numpy_disabled_by_env"]

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


def numpy_disabled_by_env() -> bool:
    """True when ``REPRO_NO_NUMPY`` forces the stdlib-array fallback."""
    return os.environ.get("REPRO_NO_NUMPY", "") not in ("", "0")


def _import_numpy() -> Optional[Any]:
    try:
        import numpy
    except ImportError:
        return None
    return numpy


class ArrayBackend(PlaneBackend):
    """Planes as uint64 lane-word arrays (numpy or stdlib ``array``)."""

    name = "array"
    word_bits = _WORD_BITS
    #: 2x the bigint budget: measured fastest at B=8 -- numpy's per-call
    #: overhead amortizes over more words per op before cache pressure
    #: takes over (the fallback variant shares it; word loops are
    #: shard-size-insensitive).
    preferred_shard_lanes = 1 << 15

    def __init__(self, use_numpy: Optional[bool] = None):
        if use_numpy is None:
            use_numpy = not numpy_disabled_by_env() and _import_numpy() is not None
        if use_numpy:
            np = _import_numpy()
            if np is None:
                raise ImportError(
                    "ArrayBackend(use_numpy=True) requires numpy; install it "
                    "or use the stdlib fallback (use_numpy=False)"
                )
            self._np = np
        else:
            self._np = None

    @property
    def uses_numpy(self) -> bool:
        return self._np is not None

    # Module objects cannot be pickled, but backends ride along whenever
    # a compiled circuit crosses a process boundary (pool initargs on
    # spawn-start platforms): serialize the variant choice, re-import on
    # the other side.
    def __getstate__(self):
        return {"use_numpy": self._np is not None}

    def __setstate__(self, state):
        self._np = _import_numpy() if state["use_numpy"] else None

    @property
    def variant(self) -> str:
        """``"numpy"`` or ``"fallback"`` -- recorded by the benchmarks."""
        return "numpy" if self._np is not None else "fallback"

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------
    @staticmethod
    def words_for(lanes: int) -> int:
        """Lane words needed for ``lanes`` lanes (explicit addressing)."""
        return (lanes + _WORD_BITS - 1) >> 6

    @staticmethod
    def lane_address(lane: int) -> Tuple[int, int]:
        """``(word_index, bit_index)`` of a lane -- the layout contract."""
        return lane >> 6, lane & 63

    @staticmethod
    def _tail_mask(lanes: int) -> int:
        tail = lanes & 63
        return (1 << tail) - 1 if tail else _WORD_MASK

    # ------------------------------------------------------------------
    # Allocation / packing
    # ------------------------------------------------------------------
    def zeros(self, lanes: int):
        words = self.words_for(lanes)
        if self._np is not None:
            return self._np.zeros(words, dtype=self._np.uint64)
        return array("Q", bytes(8 * words))

    def ones(self, lanes: int):
        words = self.words_for(lanes)
        if self._np is not None:
            plane = self._np.full(words, _WORD_MASK, dtype=self._np.uint64)
            if words:
                plane[-1] = self._tail_mask(lanes)
            return plane
        plane = array("Q", [_WORD_MASK] * words)
        if words:
            plane[-1] = self._tail_mask(lanes)
        return plane

    def from_int(self, value: int, lanes: int):
        words = self.words_for(lanes)
        value &= (1 << lanes) - 1  # enforce the tail-mask invariant
        return self.from_bytes(value.to_bytes(words * 8, "little"), lanes)

    def from_bytes(self, data: bytes, lanes: int):
        words = self.words_for(lanes)
        if len(data) < words * 8:
            data = data + bytes(words * 8 - len(data))
        if self._np is not None:
            np = self._np
            # '<u8' pins the little-endian lane layout; astype normalizes
            # to the native dtype (a byteswap only on big-endian hosts).
            plane = np.frombuffer(data, dtype="<u8", count=words).astype(
                np.uint64, copy=True
            )
            if words:
                plane[-1] &= np.uint64(self._tail_mask(lanes))
            return plane
        plane = array("Q")
        plane.frombytes(data[: words * 8])
        if sys.byteorder == "big":
            plane.byteswap()
        if words:
            plane[-1] &= self._tail_mask(lanes)
        return plane

    def coerce(self, plane, lanes: int):
        if isinstance(plane, int):
            return self.from_int(plane, lanes)
        if self._np is not None:
            if isinstance(plane, self._np.ndarray):
                return plane
        elif isinstance(plane, array):
            return plane
        raise TypeError(
            f"array backend ({self.variant}) got a "
            f"{type(plane).__name__} plane"
        )

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_int(self, plane, lanes: int) -> int:
        return int.from_bytes(self.to_bytes(plane, lanes), "little")

    def to_bytes(self, plane, lanes: int) -> bytes:
        nbytes = (lanes + 7) >> 3
        if self._np is not None:
            return plane.astype("<u8", copy=False).tobytes()[:nbytes]
        if sys.byteorder == "big":
            plane = array("Q", plane)
            plane.byteswap()
        return plane.tobytes()[:nbytes]

    # ------------------------------------------------------------------
    # Bitwise plane ops
    # ------------------------------------------------------------------
    def band(self, a, b):
        if self._np is not None:
            return self._np.bitwise_and(a, b)
        return array("Q", map(and_, a, b))

    def bor(self, a, b):
        if self._np is not None:
            return self._np.bitwise_or(a, b)
        return array("Q", map(or_, a, b))

    def bxor(self, a, b):
        if self._np is not None:
            return self._np.bitwise_xor(a, b)
        return array("Q", map(xor, a, b))

    def bnot(self, a, lanes: int):
        if self._np is not None:
            plane = self._np.bitwise_not(a)
            if len(plane):
                plane[-1] &= self._np.uint64(self._tail_mask(lanes))
            return plane
        plane = array("Q", (w ^ _WORD_MASK for w in a))
        if len(plane):
            plane[-1] &= self._tail_mask(lanes)
        return plane

    # ------------------------------------------------------------------
    # Queries / lane addressing
    # ------------------------------------------------------------------
    def eq(self, a, b) -> bool:
        if self._np is not None:
            return bool(self._np.array_equal(a, b))
        return a == b

    def any(self, a) -> bool:
        if self._np is not None:
            return bool(a.any())
        return any(a)

    def popcount(self, a) -> int:
        if self._np is not None:
            np = self._np
            return int(np.unpackbits(a.view(np.uint8)).sum())
        return sum(bin(w).count("1") for w in a)

    def get_lane(self, a, lane: int) -> int:
        word, bit = self.lane_address(lane)
        return (int(a[word]) >> bit) & 1

    def detach(self, a):
        # Numpy run_ops returns slab rows; copy them so a retained
        # output plane does not keep the whole 2*|ops| x words slab
        # alive through ndarray.base.
        if self._np is not None and a.base is not None:
            return a.copy()
        return a

    # ------------------------------------------------------------------
    # Compiled-program execution
    # ------------------------------------------------------------------
    def run_ops(
        self,
        ops: Sequence[Tuple[int, int, int, int]],
        p0: List[Any],
        p1: List[Any],
    ) -> None:
        if self._np is None:
            # Pure-python word loops: the generic primitive-op sweep.
            super().run_ops(ops, p0, p1)
            return
        if not ops:
            return
        np = self._np
        words = len(p0[0]) if p0 else 0
        # One preallocated slab, two fresh rows per op: ufuncs write
        # straight into it, so the sweep allocates nothing per gate.
        # Rows are written once and never mutated after being stored in
        # a slot, which makes the INV/BUF alias-copies safe.
        buf = np.empty((2 * len(ops), words), dtype=np.uint64)
        t0 = np.empty(words, dtype=np.uint64)
        t1 = np.empty(words, dtype=np.uint64)
        band, bor = np.bitwise_and, np.bitwise_or
        i = 0
        for op, d, a, b in ops:
            if op == OP_AND:
                p1[d] = band(p1[a], p1[b], out=buf[i])
                p0[d] = bor(p0[a], p0[b], out=buf[i + 1])
                i += 2
            elif op == OP_OR:
                p0[d] = band(p0[a], p0[b], out=buf[i])
                p1[d] = bor(p1[a], p1[b], out=buf[i + 1])
                i += 2
            elif op == OP_INV:
                p0[d] = p1[a]
                p1[d] = p0[a]
            elif op == OP_BUF:
                p0[d] = p0[a]
                p1[d] = p1[a]
            else:  # OP_XOR
                a0, a1, b0, b1 = p0[a], p1[a], p0[b], p1[b]
                band(a0, b0, out=t0)
                band(a1, b1, out=t1)
                p0[d] = bor(t0, t1, out=buf[i])
                band(a0, b1, out=t0)
                band(a1, b0, out=t1)
                p1[d] = bor(t0, t1, out=buf[i + 1])
                i += 2
