"""Native plane backend: the whole compiled sweep in one C call.

``NativeBackend`` is a self-resolving proxy registered as ``"native"``.
On first use it tries to build/load the C kernel in
:mod:`repro.backends._kernel`; when that works it becomes a
:class:`_KernelArrayBackend` -- same uint64 lane-word layout and
canonical bytes as :class:`~repro.backends.array_backend.ArrayBackend`,
but :meth:`run_ops` lowers the compiled op list to a flat int32 program
once, packs the slot planes into two contiguous slabs, and executes the
entire program (all gates, both planes, tail masking) in a single
``repro_run_program`` call per shard, never re-entering Python between
ops.  When the kernel is unavailable (no compiler, build failure,
``REPRO_NO_NATIVE=1``) the proxy degrades to the registered ``bigint``
backend with a one-time stderr notice, so hosts without a toolchain see
identical behavior to ``--backend bigint``.

The proxy shape matters for distribution: pool and distributed-worker
initializers forward the backend *name*, so every worker process
resolves ``"native"`` independently -- building the kernel where it can,
falling back where it cannot -- while compile caches and sweep-epoch
keys stay consistent because they key on the name, not the variant.
"""

from __future__ import annotations

import ctypes
import threading
from array import array
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from . import _kernel
from .array_backend import ArrayBackend
from .base import Plane, PlaneBackend

__all__ = ["NativeBackend"]

_FULL_WORD = (1 << 64) - 1
#: Lowered programs cached per op-list identity; cleared wholesale past
#: this many entries (each sweep reuses one program thousands of times,
#: so eviction policy is irrelevant -- this is just a leak bound).
_PROGRAM_CACHE_CAP = 32


def _qptr(plane: array) -> int:
    # Raw buffer address: every kernel pointer parameter is bound as
    # c_void_p, so plain ints cross the FFI without a ctypes cast.
    return plane.buffer_info()[0]


class _KernelArrayBackend(ArrayBackend):
    """The built variant: ArrayBackend planes, C-kernel execution."""

    name = "native"
    #: Much larger than the array budget: the fused one-call sweep tiles
    #: the word axis internally (cache-resident scratch), so the only
    #: per-shard costs left are Python crossings -- fewer, wider shards
    #: win.  1<<18 runs the whole B=8 pair domain as one shard.
    preferred_shard_lanes = 1 << 18

    def __init__(self, lib, use_numpy: Optional[bool] = None):
        super().__init__(use_numpy=use_numpy)
        self._lib = lib
        self._programs: dict = {}
        self._marshal: dict = {}
        self._tile = int(lib.repro_tile_words())
        self._local = threading.local()

    def __getstate__(self):
        return {"use_numpy": self._np is not None}

    def __setstate__(self, state):
        super().__setstate__(state)
        lib = _kernel.load_kernel()
        if lib is None:  # pragma: no cover - host lost its compiler
            raise RuntimeError(
                "native plane kernel unavailable after unpickling; "
                "forward the backend name instead of the instance"
            )
        self._lib = lib
        self._programs = {}
        self._marshal = {}
        self._tile = int(lib.repro_tile_words())
        self._local = threading.local()

    def _scratch_addr(self, n_slots: int) -> int:
        """Address of a reusable per-thread tile slab (one C call at a time).

        The buffer (2 * n_slots * tile words) and its base address are
        cached together so the hot path pays no per-call address
        extraction.
        """
        nwords = 2 * n_slots * self._tile
        cached = getattr(self._local, "scratch", None)
        if cached is None or cached[1] < nwords:
            if self._np is not None:
                buf = self._np.empty(nwords, dtype=self._np.uint64)
                addr = buf.ctypes.data
            else:
                buf = array("Q", bytes(8 * nwords))
                addr = buf.buffer_info()[0]
            cached = (buf, nwords, addr)
            self._local.scratch = cached
        return cached[2]

    # ------------------------------------------------------------------
    # Program lowering
    # ------------------------------------------------------------------
    def _lower(self, ops: Sequence[Tuple[int, int, int, int]]):
        """Flat int32 program + slab preload/copy-out slot lists.

        Keyed on the op list's identity (compiled programs are built once
        per circuit epoch and reused across shards); ``ops`` itself is
        retained in the entry so the id stays valid.
        """
        key = id(ops)
        cached = self._programs.get(key)
        if cached is not None and cached[0] is ops:
            return cached[1], cached[2], cached[3]
        flat = []
        for quad in ops:
            flat.extend(quad)
        prog = (ctypes.c_int32 * len(flat))(*flat)
        # Only slots read before any write (inputs, constants, unwired
        # defaults) need copying into the slab; every dst is written
        # before it is read (topological order), and only dsts need
        # copying back out.
        written: set = set()
        preloaded: set = set()
        preload: List[int] = []
        dsts: List[int] = []
        for _op, d, a, b in ops:
            for s in (a, b):
                if s not in written and s not in preloaded:
                    preloaded.add(s)
                    preload.append(s)
            if d not in written:
                written.add(d)
                dsts.append(d)
        if len(self._programs) >= _PROGRAM_CACHE_CAP:
            self._programs.clear()
        entry = (ops, prog, tuple(preload), tuple(dsts))
        self._programs[key] = entry
        return prog, entry[2], entry[3]

    # ------------------------------------------------------------------
    # Compiled-program execution: one C call for the whole sweep
    # ------------------------------------------------------------------
    def run_ops(
        self,
        ops: Sequence[Tuple[int, int, int, int]],
        p0: List[Any],
        p1: List[Any],
    ) -> None:
        words = len(p0[0]) if p0 else 0
        if not ops or words == 0:
            super().run_ops(ops, p0, p1)
            return
        prog, preload, dsts = self._lower(ops)
        n_slots = len(p0)
        if self._np is not None:
            np = self._np
            slab = np.empty((2, n_slots, words), dtype=np.uint64)
            slab0, slab1 = slab[0], slab[1]
            for s in preload:
                slab0[s] = p0[s]
                slab1[s] = p1[s]
            self._lib.repro_run_program(
                prog,
                len(ops),
                slab0.ctypes.data,
                slab1.ctypes.data,
                words,
                _FULL_WORD,
            )
            # Slab-row views, not copies: detach() copies on retention.
            for d in dsts:
                p0[d] = slab0[d]
                p1[d] = slab1[d]
            return
        slab0 = array("Q", bytes(8 * n_slots * words))
        slab1 = array("Q", bytes(8 * n_slots * words))
        for s in preload:
            slab0[s * words : (s + 1) * words] = p0[s]
            slab1[s * words : (s + 1) * words] = p1[s]
        self._lib.repro_run_program(
            prog, len(ops), _qptr(slab0), _qptr(slab1), words, _FULL_WORD
        )
        for d in dsts:
            p0[d] = slab0[d * words : (d + 1) * words]
            p1[d] = slab1[d * words : (d + 1) * words]

    # ------------------------------------------------------------------
    # Kernel-accelerated primitives
    # ------------------------------------------------------------------
    def _ptr(self, plane) -> int:
        if self._np is not None:
            return plane.ctypes.data
        return _qptr(plane)

    def _contiguous(self, plane):
        if self._np is not None and not plane.flags["C_CONTIGUOUS"]:
            return self._np.ascontiguousarray(plane)
        return plane

    def popcount(self, a) -> int:
        a = self._contiguous(a)
        return int(self._lib.repro_popcount(self._ptr(a), len(a)))

    def iter_set_lanes(self, a, lanes: int) -> Iterator[int]:
        a = self._contiguous(a)
        n = self.popcount(a)
        if not n:
            return iter(())
        out = (ctypes.c_int32 * n)()
        got = self._lib.repro_extract_lanes(self._ptr(a), len(a), out, n)
        return iter(out[:got])

    def _select_diff_marshal(
        self,
        ops: Sequence[Tuple[int, int, int, int]],
        preload: Tuple[int, ...],
        dsts: Tuple[int, ...],
        in_slot_ids: Tuple[int, ...],
        cmp_t: Tuple[Tuple[int, int, int], ...],
    ):
        """Cached per-(program, slot layout) ctypes arrays for the C call.

        One verification sweep makes thousands of calls with identical
        slot structure, so the int32 arrays (preset slots, zero slots,
        compare triples) are built once and revalidated by tuple
        compare; only the plane addresses change per shard.
        """
        key = id(ops)
        cached = self._marshal.get(key)
        if (
            cached is not None
            and cached[0] is ops
            and cached[1] == in_slot_ids
            and cached[2] == cmp_t
        ):
            return cached[3]
        provided = set(in_slot_ids)
        written = set(dsts)
        # Slots the C sweep reads (or compares) without anyone having
        # written them get zero rows, matching the all-zero slot fill of
        # the generic path.
        zero_slots = [s for s in preload if s not in provided]
        seen = set(zero_slots)
        for triple in cmp_t:
            for s in triple:
                if s not in written and s not in provided and s not in seen:
                    seen.add(s)
                    zero_slots.append(s)
        entry = (
            (ctypes.c_int32 * len(in_slot_ids))(*in_slot_ids),
            (ctypes.c_int32 * len(zero_slots))(*zero_slots),
            len(zero_slots),
            (ctypes.c_int32 * (3 * len(cmp_t)))(
                *(s for triple in cmp_t for s in triple)
            ),
        )
        if len(self._marshal) >= _PROGRAM_CACHE_CAP:
            self._marshal.clear()
        self._marshal[key] = (ops, in_slot_ids, cmp_t, entry)
        return entry

    def run_ops_select_diff(
        self,
        ops: Sequence[Tuple[int, int, int, int]],
        n_slots: int,
        inputs: Sequence[Tuple[int, Any, Any]],
        cmp: Sequence[Tuple[int, int, int]],
        sel: Any,
        nsel: Any,
        lanes: int,
    ):
        words = self.words_for(lanes)
        if not ops or words == 0 or n_slots == 0:
            return super().run_ops_select_diff(
                ops, n_slots, inputs, cmp, sel, nsel, lanes
            )
        prog, preload, dsts = self._lower(ops)
        n_in = len(inputs)
        in_slot_ids = tuple(s for s, _, _ in inputs)
        cmp_t = tuple(cmp)
        in_arr, zero_arr, n_zero, cmp_arr = self._select_diff_marshal(
            ops, preload, dsts, in_slot_ids, cmp_t
        )
        # Plane-row pointer tables as one raw address buffer: [all p0
        # rows][all p1 rows].  keep pins the (possibly copied) rows for
        # the duration of the call; nsel is unused -- the kernel
        # complements sel in-register.
        keep: List[Any] = []
        if self._np is not None:
            np = self._np
            addr = np.empty(2 * n_in, dtype=np.uintp)
            for i, (_, a0, a1) in enumerate(inputs):
                a0 = self._contiguous(a0)
                a1 = self._contiguous(a1)
                keep.append(a0)
                keep.append(a1)
                addr[i] = a0.ctypes.data
                addr[n_in + i] = a1.ctypes.data
            base = addr.ctypes.data
            sel = self._contiguous(sel)
            diff = np.empty(words, dtype=np.uint64)
        else:
            addr = array("Q", bytes(16 * n_in)) if n_in else array("Q")
            for i, (_, a0, a1) in enumerate(inputs):
                addr[i] = _qptr(a0)
                addr[n_in + i] = _qptr(a1)
            base = _qptr(addr) if n_in else 0
            diff = array("Q", bytes(8 * words))
        mismatches = self._lib.repro_run_program_select_diff(
            prog,
            len(ops),
            in_arr,
            base,
            base + 8 * n_in,
            n_in,
            zero_arr,
            n_zero,
            cmp_arr,
            len(cmp_t),
            self._ptr(sel),
            self._scratch_addr(n_slots),
            n_slots,
            words,
            self._tail_mask(lanes),
            self._ptr(diff),
        )
        return diff, int(mismatches)

    # ------------------------------------------------------------------
    # Structured packing in C: the pair-product planes are built without
    # routing ~lanes-bit ints through Python (semantics: base.py).
    # ------------------------------------------------------------------
    def _int_plane(self, value: int, words: int):
        """`value` as a `words`-long lane-word buffer (little-endian)."""
        return self.from_bytes(value.to_bytes(words * 8, "little"), words * 64)

    def _empty_plane(self, words: int):
        """Uninitialized destination for the C fills (they zero first)."""
        if self._np is not None:
            return self._np.empty(words, dtype=self._np.uint64)
        return array("Q", bytes(8 * words))

    def from_pattern(self, value: int, period: int, lanes: int):
        words = self.words_for(lanes)
        if not words:
            return self.zeros(lanes)
        dst = self._empty_plane(words)
        pat = self._int_plane(value, self.words_for(period))
        self._lib.repro_fill_pattern(
            self._ptr(dst), words, self._ptr(pat), period, lanes
        )
        return dst

    def expand_bits(self, value: int, run: int, lanes: int):
        words = self.words_for(lanes)
        if not words:
            return self.zeros(lanes)
        dst = self._empty_plane(words)
        count = -(-lanes // run)
        bits = self._int_plane(value & ((1 << count) - 1), self.words_for(count))
        self._lib.repro_fill_expand(
            self._ptr(dst), words, self._ptr(bits), run, lanes
        )
        return dst

    def from_prefix_runs(self, first: int, period: int, lanes: int):
        words = self.words_for(lanes)
        if not words:
            return self.zeros(lanes)
        dst = self._empty_plane(words)
        self._lib.repro_fill_prefix(self._ptr(dst), words, first, period, lanes)
        return dst

    # The stdlib-array variant's word loops are the slowest path in the
    # tree; route its primitive ops through the kernel too (the numpy
    # variant keeps its ufuncs -- already native speed).
    def band(self, a, b):
        if self._np is not None:
            return super().band(a, b)
        out = array("Q", bytes(8 * len(a)))
        self._lib.repro_bitwise(0, _qptr(a), _qptr(b), _qptr(out), len(a))
        return out

    def bor(self, a, b):
        if self._np is not None:
            return super().bor(a, b)
        out = array("Q", bytes(8 * len(a)))
        self._lib.repro_bitwise(1, _qptr(a), _qptr(b), _qptr(out), len(a))
        return out

    def bxor(self, a, b):
        if self._np is not None:
            return super().bxor(a, b)
        out = array("Q", bytes(8 * len(a)))
        self._lib.repro_bitwise(2, _qptr(a), _qptr(b), _qptr(out), len(a))
        return out

    def bnot(self, a, lanes: int):
        if self._np is not None:
            return super().bnot(a, lanes)
        out = array("Q", bytes(8 * len(a)))
        self._lib.repro_not_masked(
            _qptr(a), _qptr(out), len(a), self._tail_mask(lanes)
        )
        return out


class NativeBackend(PlaneBackend):
    """Registry proxy: kernel-built planes when possible, bigint otherwise.

    Resolution is lazy (first plane operation or attribute that needs the
    implementation), so importing the package never forks a compiler; it
    is also sticky for the life of the instance.
    """

    name = "native"

    def __init__(self):
        self._impl: Optional[PlaneBackend] = None

    def _resolve(self) -> PlaneBackend:
        impl = self._impl
        if impl is None:
            lib = _kernel.load_kernel()
            if lib is not None:
                impl = _KernelArrayBackend(lib)
                impl.name = self.name
            else:
                _kernel.emit_fallback_notice()
                from . import get_backend

                impl = get_backend("bigint")
            self._impl = impl
        return impl

    # Proxies cross process boundaries stripped to their name, the same
    # way initializers forward backends: the receiving side re-resolves
    # (and builds or falls back) locally.
    def __getstate__(self):
        return {"name": self.name}

    def __setstate__(self, state):
        self.name = state["name"]
        self._impl = None

    @property
    def built(self) -> bool:
        """True when the C kernel is loaded (not the bigint fallback)."""
        return isinstance(self._resolve(), _KernelArrayBackend)

    @property
    def variant(self) -> str:
        """``"built"`` or ``"fallback"`` -- recorded by bench/CLI."""
        return "built" if self.built else "fallback"

    @property
    def word_bits(self) -> int:  # type: ignore[override]
        return self._resolve().word_bits

    @property
    def preferred_shard_lanes(self) -> int:  # type: ignore[override]
        return self._resolve().preferred_shard_lanes

    # ------------------------------------------------------------------
    # PlaneBackend surface: pure forwarders
    # ------------------------------------------------------------------
    def zeros(self, lanes: int) -> Plane:
        return self._resolve().zeros(lanes)

    def ones(self, lanes: int) -> Plane:
        return self._resolve().ones(lanes)

    def from_int(self, value: int, lanes: int) -> Plane:
        return self._resolve().from_int(value, lanes)

    def from_bytes(self, data: bytes, lanes: int) -> Plane:
        return self._resolve().from_bytes(data, lanes)

    def from_pattern(self, value: int, period: int, lanes: int) -> Plane:
        return self._resolve().from_pattern(value, period, lanes)

    def expand_bits(self, value: int, run: int, lanes: int) -> Plane:
        return self._resolve().expand_bits(value, run, lanes)

    def from_prefix_runs(self, first: int, period: int, lanes: int) -> Plane:
        return self._resolve().from_prefix_runs(first, period, lanes)

    def coerce(self, plane: Plane, lanes: int) -> Plane:
        return self._resolve().coerce(plane, lanes)

    def to_int(self, plane: Plane, lanes: int) -> int:
        return self._resolve().to_int(plane, lanes)

    def to_bytes(self, plane: Plane, lanes: int) -> bytes:
        return self._resolve().to_bytes(plane, lanes)

    def band(self, a: Plane, b: Plane) -> Plane:
        return self._resolve().band(a, b)

    def bor(self, a: Plane, b: Plane) -> Plane:
        return self._resolve().bor(a, b)

    def bxor(self, a: Plane, b: Plane) -> Plane:
        return self._resolve().bxor(a, b)

    def bnot(self, a: Plane, lanes: int) -> Plane:
        return self._resolve().bnot(a, lanes)

    def eq(self, a: Plane, b: Plane) -> bool:
        return self._resolve().eq(a, b)

    def any(self, a: Plane) -> bool:
        return self._resolve().any(a)

    def popcount(self, a: Plane) -> int:
        return self._resolve().popcount(a)

    def get_lane(self, a: Plane, lane: int) -> int:
        return self._resolve().get_lane(a, lane)

    def detach(self, a: Plane) -> Plane:
        return self._resolve().detach(a)

    def iter_set_lanes(self, a: Plane, lanes: int) -> Iterator[int]:
        return self._resolve().iter_set_lanes(a, lanes)

    def run_ops(
        self,
        ops: Sequence[Tuple[int, int, int, int]],
        p0: List[Plane],
        p1: List[Plane],
    ) -> None:
        self._resolve().run_ops(ops, p0, p1)

    def run_ops_select_diff(
        self,
        ops: Sequence[Tuple[int, int, int, int]],
        n_slots: int,
        inputs: Sequence[Tuple[int, Plane, Plane]],
        cmp: Sequence[Tuple[int, int, int]],
        sel: Plane,
        nsel: Plane,
        lanes: int,
    ) -> Tuple[Plane, int]:
        return self._resolve().run_ops_select_diff(
            ops, n_slots, inputs, cmp, sel, nsel, lanes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "unresolved" if self._impl is None else self.variant
        return f"<NativeBackend {self.name!r} ({state})>"
