"""Arbitrary-precision-int planes: the original (and default) backend.

A plane is one Python int; bit ``j`` is lane ``j``.  CPython big-int
bitwise ops run at C speed over 30-bit limbs, which is what gave the
compiled engine its first three orders of magnitude -- this module is
that representation extracted verbatim from ``repro.circuits.compiled``
so other layouts can be swapped in beside it.

Strengths: zero packing cost from the int-space plane constructions
(pair products are built with shifts and one big multiply), no per-op
call overhead in :meth:`BigIntBackend.run_ops` (inline operators, the
pre-refactor loop).  Weakness: every op walks the carry-normalized limb
array sequentially; fixed-width word backends (``"array"``) can
vectorize instead.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .base import OP_AND, OP_INV, OP_OR, OP_XOR, PlaneBackend

__all__ = ["BigIntBackend"]


class BigIntBackend(PlaneBackend):
    """Planes as Python ints (bit ``j`` = lane ``j``)."""

    name = "bigint"
    #: Big ints have no lane-word structure; decode byte-walks at 8.
    word_bits = 8

    # ------------------------------------------------------------------
    # Allocation / packing
    # ------------------------------------------------------------------
    def zeros(self, lanes: int) -> int:
        return 0

    def ones(self, lanes: int) -> int:
        return (1 << lanes) - 1

    def from_int(self, value: int, lanes: int) -> int:
        return value & ((1 << lanes) - 1)

    def from_bytes(self, data: bytes, lanes: int) -> int:
        # Tail-masked like every constructor (base.py invariant).
        return int.from_bytes(data, "little") & ((1 << lanes) - 1)

    def coerce(self, plane: int, lanes: int) -> int:
        if not isinstance(plane, int):
            raise TypeError(
                f"bigint backend got a {type(plane).__name__} plane"
            )
        return plane

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_int(self, plane: int, lanes: int) -> int:
        return plane

    def to_bytes(self, plane: int, lanes: int) -> bytes:
        return plane.to_bytes((lanes + 7) >> 3, "little")

    # ------------------------------------------------------------------
    # Bitwise plane ops
    # ------------------------------------------------------------------
    def band(self, a: int, b: int) -> int:
        return a & b

    def bor(self, a: int, b: int) -> int:
        return a | b

    def bxor(self, a: int, b: int) -> int:
        return a ^ b

    def bnot(self, a: int, lanes: int) -> int:
        return a ^ ((1 << lanes) - 1)

    # ------------------------------------------------------------------
    # Queries / lane addressing
    # ------------------------------------------------------------------
    def eq(self, a: int, b: int) -> bool:
        return a == b

    def any(self, a: int) -> bool:
        return a != 0

    def popcount(self, a: int) -> int:
        return bin(a).count("1")

    def get_lane(self, a: int, lane: int) -> int:
        return (a >> lane) & 1

    # ------------------------------------------------------------------
    # Compiled-program execution
    # ------------------------------------------------------------------
    def run_ops(
        self,
        ops: Sequence[Tuple[int, int, int, int]],
        p0: List[int],
        p1: List[int],
    ) -> None:
        # The pre-backend inline loop, kept free of per-op call overhead:
        # this is the hot path behind the headline benchmark numbers.
        for op, d, a, b in ops:
            if op == OP_AND:
                p1[d] = p1[a] & p1[b]
                p0[d] = p0[a] | p0[b]
            elif op == OP_OR:
                p0[d] = p0[a] & p0[b]
                p1[d] = p1[a] | p1[b]
            elif op == OP_INV:
                p0[d] = p1[a]
                p1[d] = p0[a]
            elif op == OP_XOR:
                a0, a1, b0, b1 = p0[a], p1[a], p0[b], p1[b]
                p1[d] = (a0 & b1) | (a1 & b0)
                p0[d] = (a0 & b0) | (a1 & b1)
            else:  # OP_BUF
                p0[d] = p0[a]
                p1[d] = p1[a]
