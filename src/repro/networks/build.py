"""Composing a sorting-network topology with a 2-sort circuit.

Produces the flat netlists whose costs Table 8 reports: an ``n``-channel
network over ``B``-bit words instantiates one 2-sort(B) subcircuit per
comparator.  The composition is agnostic to which 2-sort implementation
is plugged in -- the paper's (``"this-paper"``), the DATE 2017
reconstruction (``"date17"``), or the non-containing binary baseline
(``"bincomp"``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..baselines.bincomp import build_bincomp_two_sort
from ..baselines.date17 import build_date17_two_sort
from ..circuits.netlist import Circuit, NetId
from ..core.two_sort import build_two_sort
from .comparator import SortingNetwork

#: Registry of 2-sort builders by the labels used in benches/tables.
TWO_SORT_BUILDERS: Dict[str, Callable[[int], Circuit]] = {
    "this-paper": build_two_sort,
    "date17": build_date17_two_sort,
    "bincomp": build_bincomp_two_sort,
}


def build_sorting_circuit(
    network: SortingNetwork,
    width: int,
    two_sort: str = "this-paper",
) -> Circuit:
    """Flatten ``network`` with ``2-sort(width)`` comparator circuits.

    Primary inputs: channel 0's bits, then channel 1's, ...; primary
    outputs likewise (channel 0 carries the minimum for a correct
    network).  Gate count is ``network.size × gates(2-sort(width))``,
    which is how Table 8's "# gates" column arises (e.g. 10-sort# at
    B=16: 29 × 407 = 11803).
    """
    try:
        builder = TWO_SORT_BUILDERS[two_sort]
    except KeyError:
        raise KeyError(
            f"unknown 2-sort implementation {two_sort!r}; "
            f"available: {sorted(TWO_SORT_BUILDERS)}"
        ) from None

    template = builder(width)
    circuit = Circuit(f"{network.name}_{width}b_{two_sort}")

    channels: List[List[NetId]] = [
        [circuit.add_input(f"ch{ch}_b{i}") for i in range(1, width + 1)]
        for ch in range(network.channels)
    ]

    for comp in network.comparators():
        # 2-sort inputs: g bits then h bits; outputs: max bits then min.
        outs = circuit.instantiate(
            template,
            channels[comp.lo] + channels[comp.hi],
            instance_base="cmp",
        )
        channels[comp.lo] = outs[width:]  # min goes to the low channel
        channels[comp.hi] = outs[:width]  # max goes to the high channel

    for ch in range(network.channels):
        circuit.add_outputs(channels[ch])
    return circuit
