"""Correctness properties of sorting networks on valid strings.

The MC sorting guarantee composes: if every comparator computes
``(max_rg_M, min_rg_M)`` then the network output is the multiset of
inputs *up to superposition uncertainty*, sorted by the Table 2 order.
This module provides the checkable forms of that statement plus the
classic 0-1 principle used to validate topologies.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from ..graycode.valid import is_valid, rank
from ..ternary.word import Word
from .comparator import SortingNetwork


def zero_one_counterexample(
    network: SortingNetwork,
) -> Optional[Tuple[Tuple[int, ...], List[int]]]:
    """0-1 principle: exhaustively test all Boolean inputs.

    Returns ``None`` if the network sorts, else ``(input, output)`` for
    the first failing vector.  A comparator network sorts all inputs iff
    it sorts all 0-1 inputs (Knuth 5.3.4).
    """
    n = network.channels
    for bits in itertools.product((0, 1), repeat=n):
        out = network.apply(list(bits))
        if out != sorted(bits):
            return (bits, out)
    return None


def sorts_binary(network: SortingNetwork) -> bool:
    """Convenience wrapper around :func:`zero_one_counterexample`."""
    return zero_one_counterexample(network) is None


def is_sorted_by_rank(words: Sequence[Word]) -> bool:
    """True iff the word sequence ascends in the valid-string order."""
    ranks = [rank(w) for w in words]
    return all(a <= b for a, b in zip(ranks, ranks[1:]))


def outputs_all_valid(words: Sequence[Word]) -> bool:
    """True iff every output is a member of ``S^B_rg`` (containment)."""
    return all(is_valid(w) for w in words)


def check_mc_sort(
    inputs: Sequence[Word], outputs: Sequence[Word]
) -> List[str]:
    """All violations of the MC sorting contract, as human-readable strings.

    Checks: output count, validity of every output, sortedness in the
    Table 2 order, and rank-multiset preservation.  (Superposed inputs
    make *identity* multiset equality too strong in general; rank
    preservation is the faithful invariant because comparators only
    permute values of stable inputs and may only keep-or-collapse
    superpositions consistently.)
    """
    problems: List[str] = []
    if len(inputs) != len(outputs):
        problems.append(
            f"channel count changed: {len(inputs)} in, {len(outputs)} out"
        )
        return problems
    for i, w in enumerate(outputs):
        if not is_valid(w):
            problems.append(f"output channel {i} is not a valid string: {w}")
    if problems:
        return problems
    if not is_sorted_by_rank(outputs):
        problems.append(
            "outputs not ascending: " + ", ".join(str(w) for w in outputs)
        )
    in_ranks = sorted(rank(w) for w in inputs)
    out_ranks = sorted(rank(w) for w in outputs)
    if in_ranks != out_ranks:
        problems.append(
            f"rank multiset changed: {in_ranks} -> {out_ranks}"
        )
    return problems
