"""Word-level simulation of MC sorting networks.

For system-level experiments (sorting many measurement vectors) the
gate-level simulator is needlessly slow; this module runs a network
directly on :class:`~repro.ternary.word.Word` values using a pluggable
2-sort function.

**Engine registry.**  All engines implement the same
``(g, h) -> (max, min)`` contract and are selected by name:

* ``"closure"``  -- the Definition 2.8 specification,
* ``"fsm"``      -- the paper's ⋄_M/out_M decomposition,
* ``"rank"``     -- the Table 2 total order (valid strings only;
  fastest per-pair, used for workload generation),
* ``"circuit"``  -- three-valued gate-level simulation through the
  scalar reference interpreter (one netlist per width, cached; the
  honest one-trit-per-net baseline),
* ``"compiled"`` -- the same netlist lowered to a two-plane bitwise
  program (:mod:`repro.circuits.compiled`); identical outputs to
  ``"circuit"``, much faster, and the only engine with a *batched*
  path.

**Batching.**  :func:`sort_words` runs one vector; :func:`sort_words_batch`
runs many measurement vectors through the network *simultaneously*:
every channel holds a :class:`~repro.circuits.compiled.TritVec` per bit,
and each comparator visit executes the compiled 2-sort program once for
all vectors (layer by layer, exactly the hardware dataflow).  This is
the high-throughput path for system-level workloads.
"""

from __future__ import annotations

import threading
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..backends import PlaneBackend, get_backend
from ..circuits.compiled import BackendLike, TritVec, compile_circuit
from ..circuits.evaluate import evaluate_interpreted
from ..core.functional import two_sort_via_fsm
from ..core.two_sort import build_two_sort
from ..graycode.ops import two_sort_closure, two_sort_order
from ..ternary.word import Word
from .comparator import SortingNetwork

TwoSortFn = Callable[[Word, Word], Tuple[Word, Word]]


@lru_cache(maxsize=None)
def _cached_circuit(width: int):
    return build_two_sort(width)


def _circuit_two_sort(g: Word, h: Word) -> Tuple[Word, Word]:
    # Deliberately the scalar interpreter: evaluate_words() is
    # compiled-backed now, so routing through it would make "circuit"
    # a slower alias of "compiled" instead of the scalar baseline.
    width = len(g)
    circuit = _cached_circuit(width)
    values = evaluate_interpreted(
        circuit, dict(zip(circuit.inputs, list(g) + list(h)))
    )
    out = Word([values[n] for n in circuit.outputs])
    return (out[:width], out[width:])


def _compiled_two_sort(g: Word, h: Word) -> Tuple[Word, Word]:
    width = len(g)
    program = compile_circuit(_cached_circuit(width))
    out = program.evaluate_batch([tuple(g) + tuple(h)])[0]
    return (out[:width], out[width:])


def _fsm_two_sort(g: Word, h: Word) -> Tuple[Word, Word]:
    return two_sort_via_fsm(g, h, check_valid=False)


ENGINES: Dict[str, TwoSortFn] = {
    "closure": two_sort_closure,
    "fsm": _fsm_two_sort,
    "rank": two_sort_order,
    "circuit": _circuit_two_sort,
    "compiled": _compiled_two_sort,
}


def _engine_fn(engine: str) -> TwoSortFn:
    """Look up an engine; one uniform KeyError for every entry point."""
    try:
        return ENGINES[engine]
    except KeyError:
        raise KeyError(
            f"unknown simulation engine {engine!r}; available: {sorted(ENGINES)}"
        ) from None


def sort_words(
    network: SortingNetwork,
    values: Sequence[Word],
    engine: str = "rank",
) -> List[Word]:
    """Run ``network`` on Gray-coded words; channel 0 gets the minimum."""
    return network.apply(list(values), two_sort=_engine_fn(engine))


def sort_words_batch(
    network: SortingNetwork,
    vectors: Sequence[Sequence[Word]],
    engine: str = "compiled",
    jobs: Optional[int] = None,
    shard_size: Optional[int] = None,
    executor: Optional[str] = None,
    backend: BackendLike = None,
    on_shard: Optional[Callable[[int, int, Any], None]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> List[List[Word]]:
    """Sort many measurement vectors through ``network`` at once.

    ``vectors[j]`` is one measurement vector (``network.channels`` words
    of equal width); the result's ``j``-th element is that vector after
    sorting, ascending on channel 0.  Equivalent to calling
    :func:`sort_words` per vector with the same engine.

    With the default ``"compiled"`` engine all vectors advance through
    the network together: per comparator, one two-plane program run
    sorts lane ``j`` of every channel simultaneously.  Other engine
    names fall back to the per-vector loop (same results, provided for
    API uniformity).

    Passing any of ``jobs``/``shard_size``/``executor`` shards the
    vector batch across the executor registry of
    :mod:`repro.verify.parallel` (lane-block shards, results
    concatenated in order -- identical to the serial output).
    ``jobs=0`` (or ``None`` with another sharding argument) means one
    worker per core; ``jobs=1`` alone keeps the single-process path.
    This is the million-vector path: each worker runs the compiled
    batch on its own shard.

    ``backend`` selects the plane representation for the ``"compiled"``
    engine (:mod:`repro.backends`; other engines have no planes and
    ignore it).  It is forwarded to shard workers by name.

    ``on_shard(done, total, rows)`` and ``should_stop()`` are the same
    progress/cancellation hooks as
    :func:`repro.verify.parallel.verify_two_sort_sharded` (``rows`` is
    the shard's sorted vectors); passing either routes the batch
    through the sharded path, and a true ``should_stop`` raises
    :class:`~repro.verify.parallel.SweepCancelled` between shards.
    """
    _engine_fn(engine)  # uniform validation, even for the empty batch
    vectors = [list(v) for v in vectors]
    _check_batch_shapes(network, vectors)
    # Width uniformity is validated before any dispatch so the sharded
    # path rejects exactly the batches the serial compiled path rejects
    # (a per-shard check would depend on where shard boundaries fall).
    if engine == "compiled" and vectors:
        width = len(vectors[0][0])
        for v in vectors:
            for w in v:
                if len(w) != width:
                    raise ValueError(
                        "all words in a batch must share one width"
                    )
    # Any sharding argument routes through the executor registry, so
    # e.g. an unknown executor name raises regardless of batch size.
    if (
        jobs not in (None, 1)
        or shard_size is not None
        or executor is not None
        or on_shard is not None
        or should_stop is not None
    ):
        return _sort_words_batch_sharded(
            network, vectors, engine, jobs, shard_size, executor, backend,
            on_shard, should_stop,
        )
    if engine != "compiled":
        return [sort_words(network, v, engine=engine) for v in vectors]
    if not vectors:
        return []
    width = len(vectors[0][0])

    be = get_backend(backend)
    program = compile_circuit(_cached_circuit(width), be)
    n = len(vectors)
    # state[c][b]: bit b of channel c across all n lanes.
    state: List[List[TritVec]] = [
        [
            TritVec.from_trits([vec[c][b] for vec in vectors], backend=be)
            for b in range(width)
        ]
        for c in range(network.channels)
    ]
    for layer in network.layers:
        for comp in layer:
            outs = program.run_tritvecs(state[comp.lo] + state[comp.hi])
            state[comp.hi] = outs[:width]  # max
            state[comp.lo] = outs[width:]  # min
    decoded = [[tv.to_trits() for tv in bits] for bits in state]
    return [
        [
            Word([decoded[c][b][j] for b in range(width)])
            for c in range(network.channels)
        ]
        for j in range(n)
    ]


# ----------------------------------------------------------------------
# Sharded batch path (reuses the verify-layer sharding helpers)
# ----------------------------------------------------------------------
def _check_batch_shapes(
    network: SortingNetwork, vectors: Sequence[Sequence[Word]]
) -> None:
    for v in vectors:
        if len(v) != network.channels:
            raise ValueError(
                f"{network.name} expects {network.channels} values, "
                f"got {len(v)}"
            )


#: Per-worker state installed by the pool initializer: only the small,
#: shard-invariant context (network + engine name).  The vector batch is
#: NOT broadcast -- each task carries just its own slice, so the whole
#: batch crosses the process boundary exactly once in total.
#: Thread-local, like ``repro.verify.parallel._VERIFY_STATE``: the
#: service layer runs concurrent in-process batches on a thread pool,
#: and multiprocessing pool workers init + run on one thread.
_BATCH_STATE = threading.local()


def _init_batch_worker(
    network: SortingNetwork, engine: str, backend: BackendLike = None
) -> None:
    _BATCH_STATE.network = network
    _BATCH_STATE.engine = engine
    _BATCH_STATE.backend = backend


def _batch_shard_worker(shard: List[List[Word]]) -> List[List[Word]]:
    return sort_words_batch(
        _BATCH_STATE.network,
        shard,
        engine=_BATCH_STATE.engine,
        backend=getattr(_BATCH_STATE, "backend", None),
    )


def _sort_words_batch_sharded(
    network: SortingNetwork,
    vectors: List[List[Word]],
    engine: str,
    jobs: int,
    shard_size: Optional[int],
    executor: Optional[str],
    backend: BackendLike = None,
    on_shard: Optional[Callable[[int, int, Any], None]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> List[List[Word]]:
    """Dispatch vector shards over the executor registry and concatenate."""
    from ..verify.parallel import default_jobs, plan_shards, run_sharded

    # None and 0 both mean "one worker per core", matching run_sharded.
    jobs = default_jobs() if not jobs else max(1, jobs)
    if isinstance(backend, PlaneBackend):
        backend = backend.name  # keep pool initargs picklable
    if shard_size is None:
        shard_size = -(-len(vectors) // (4 * jobs))  # ~4 shards per worker
    tasks = [vectors[lo:hi] for lo, hi in plan_shards(len(vectors), shard_size)]
    on_result = None
    if on_shard is not None:
        total = len(tasks)

        def on_result(i: int, rows: List[List[Word]]) -> None:
            # run_sharded fires on_result in task order, so i+1 is the
            # number of shards done -- same contract as the verify path.
            on_shard(i + 1, total, rows)

    try:
        results = run_sharded(
            _batch_shard_worker,
            tasks,
            jobs=jobs,
            executor=executor,
            initializer=_init_batch_worker,
            initargs=(network, engine, backend),
            on_result=on_result,
            should_stop=should_stop,
        )
    finally:
        # Serial executors ran in this thread: drop the refs so a big
        # network/batch isn't pinned past the call.
        _BATCH_STATE.__dict__.clear()
    return [row for chunk in results for row in chunk]
