"""Word-level simulation of MC sorting networks.

For system-level experiments (sorting many measurement vectors) the
gate-level simulator is needlessly slow; this module runs a network
directly on :class:`~repro.ternary.word.Word` values using a pluggable
2-sort function.  All engines implement the same
``(g, h) -> (max, min)`` contract:

* ``"closure"``  -- the Definition 2.8 specification,
* ``"fsm"``      -- the paper's ⋄_M/out_M decomposition,
* ``"rank"``     -- the Table 2 total order (valid strings only;
  fastest, used for workload generation),
* ``"circuit"``  -- three-valued simulation of the gate-level 2-sort
  (closest to hardware; one netlist per width, cached).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Sequence, Tuple

from ..circuits.evaluate import evaluate_words
from ..core.functional import two_sort_via_fsm
from ..core.two_sort import build_two_sort
from ..graycode.ops import two_sort_closure, two_sort_order
from ..ternary.word import Word
from .comparator import SortingNetwork

TwoSortFn = Callable[[Word, Word], Tuple[Word, Word]]


@lru_cache(maxsize=None)
def _cached_circuit(width: int):
    return build_two_sort(width)


def _circuit_two_sort(g: Word, h: Word) -> Tuple[Word, Word]:
    width = len(g)
    out = evaluate_words(_cached_circuit(width), g, h)
    return (out[:width], out[width:])


def _fsm_two_sort(g: Word, h: Word) -> Tuple[Word, Word]:
    return two_sort_via_fsm(g, h, check_valid=False)


ENGINES: Dict[str, TwoSortFn] = {
    "closure": two_sort_closure,
    "fsm": _fsm_two_sort,
    "rank": two_sort_order,
    "circuit": _circuit_two_sort,
}


def sort_words(
    network: SortingNetwork,
    values: Sequence[Word],
    engine: str = "rank",
) -> List[Word]:
    """Run ``network`` on Gray-coded words; channel 0 gets the minimum."""
    try:
        two_sort = ENGINES[engine]
    except KeyError:
        raise KeyError(
            f"unknown simulation engine {engine!r}; available: {sorted(ENGINES)}"
        ) from None
    return network.apply(list(values), two_sort=two_sort)
