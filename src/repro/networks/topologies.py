"""Known sorting-network topologies, including the paper's Table 8 set.

The paper evaluates n ∈ {4, 7, 10} channel networks:

* ``4-sort`` and ``7-sort`` -- optimal in *both* size and depth
  (5 comparators / depth 3, and 16 comparators / depth 6),
* ``10-sort#`` -- size-optimal: 29 comparators (Codish, Cruz-Filipe,
  Frank, Schneider-Kamp, ICTAI 2014 [4]),
* ``10-sortd`` -- depth-optimal: depth 7 with 31 comparators
  (Bundala & Závodný, LATA 2014 [3]).

Generic constructions (Batcher odd-even mergesort, bitonic sort,
insertion sort) are included for scaling experiments beyond the paper's
n; every topology is validated by the 0-1 principle in the tests.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .comparator import SortingNetwork, from_comparator_list

# ----------------------------------------------------------------------
# Fixed optimal networks (paper Table 8)
# ----------------------------------------------------------------------

#: n=4: 5 comparators, depth 3 (optimal in size and depth).
SORT4 = SortingNetwork(
    4,
    [
        [(0, 1), (2, 3)],
        [(0, 2), (1, 3)],
        [(1, 2)],
    ],
    name="4-sort",
)

#: n=7: 16 comparators, depth 6 (optimal in size and depth).
SORT7 = SortingNetwork(
    7,
    [
        [(0, 6), (2, 3), (4, 5)],
        [(0, 2), (1, 4), (3, 6)],
        [(0, 1), (2, 5), (3, 4)],
        [(1, 2), (4, 6)],
        [(2, 3), (4, 5)],
        [(1, 2), (3, 4), (5, 6)],
    ],
    name="7-sort",
)

#: n=10, size-optimal: 29 comparators [4] (depth 8 in this layering).
SORT10_SIZE = SortingNetwork(
    10,
    [
        [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)],
        [(0, 3), (1, 4), (5, 8), (6, 9)],
        [(0, 2), (3, 6), (7, 9)],
        [(0, 1), (2, 4), (5, 7), (8, 9)],
        [(1, 2), (3, 5), (4, 6), (7, 8)],
        [(1, 3), (2, 5), (4, 7), (6, 8)],
        [(2, 3), (4, 5), (6, 7)],
        [(3, 4), (5, 6)],
    ],
    name="10-sort#",
)

#: n=10, depth-optimal: depth 7, 31 comparators -- the parameters proved
#: optimal by Bundala & Závodný [3].  The exact comparator placement of
#: [3] is not printed in the 2018 paper; this network (same size, same
#: depth, verified sorting by the 0-1 principle in the tests) was found
#: by simulated annealing over depth-7 matching sequences followed by
#: greedy pruning, landing exactly on the known optimum of 31
#: comparators.  Table 8 costs depend only on (size, depth), so the
#: reproduction is unaffected by the placement difference.
SORT10_DEPTH = SortingNetwork(
    10,
    [
        [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)],
        [(0, 9), (1, 4), (2, 6), (3, 7), (5, 8)],
        [(0, 2), (1, 5), (3, 9), (4, 6), (7, 8)],
        [(1, 3), (2, 7), (4, 5), (6, 9)],
        [(0, 1), (2, 4), (3, 5), (6, 7), (8, 9)],
        [(1, 2), (3, 4), (5, 6), (7, 8)],
        [(2, 3), (4, 5), (6, 7)],
    ],
    name="10-sortd",
)

#: The four networks evaluated in Table 8, keyed by the paper's labels.
TABLE8_NETWORKS: Dict[str, SortingNetwork] = {
    "4-sort": SORT4,
    "7-sort": SORT7,
    "10-sort#": SORT10_SIZE,
    "10-sortd": SORT10_DEPTH,
}


# ----------------------------------------------------------------------
# Generic constructions
# ----------------------------------------------------------------------
def batcher_odd_even(channels: int) -> SortingNetwork:
    """Batcher's odd-even mergesort: ``O(n log² n)`` comparators.

    The classic practical construction; asymptotically dominated by AKS
    [1] but with tiny constants, hence the paper's remark that plugging
    2-sort into *any* ``O(n log n)``-comparator network yields
    asymptotically optimal MC sorting.
    """
    if channels < 1:
        raise ValueError("need at least one channel")
    comparators: List[Tuple[int, int]] = []

    def merge(lo: int, n: int, step: int) -> None:
        double = step * 2
        if double < n:
            merge(lo, n, double)
            merge(lo + step, n, double)
            for i in range(lo + step, lo + n - step, double):
                comparators.append((i, i + step))
        else:
            comparators.append((lo, lo + step))

    def sort(lo: int, n: int) -> None:
        if n > 1:
            mid = n // 2
            sort(lo, mid)
            sort(lo + mid, n - mid)
            merge(lo, n, 1)

    # Batcher's construction wants a power of two; pad virtually and
    # drop comparators touching padded channels (standard pruning).
    padded = 1
    while padded < channels:
        padded *= 2
    sort(0, padded)
    pruned = [(a, b) for a, b in comparators if a < channels and b < channels]
    return from_comparator_list(channels, pruned, name=f"batcher-{channels}")


def bitonic(channels: int) -> SortingNetwork:
    """Bitonic sorting network, normalized form (power-of-two channels).

    Uses the triangle-merge variant: merging two *ascending* halves by
    first comparing ``(i, n-1-i)`` (the "triangle"), then cleaning each
    half with butterfly stages.  This keeps every comparator ascending
    (min on the lower channel), which our :class:`Comparator` requires.
    """
    if channels < 1 or channels & (channels - 1):
        raise ValueError("bitonic network needs a power-of-two channel count")
    comparators: List[Tuple[int, int]] = []

    def half_clean(lo: int, n: int) -> None:
        if n <= 1:
            return
        mid = n // 2
        for i in range(lo, lo + mid):
            comparators.append((i, i + mid))
        half_clean(lo, mid)
        half_clean(lo + mid, n - mid)

    def merge(lo: int, n: int) -> None:
        if n <= 1:
            return
        mid = n // 2
        for i in range(mid):
            comparators.append((lo + i, lo + n - 1 - i))
        half_clean(lo, mid)
        half_clean(lo + mid, n - mid)

    def sort(lo: int, n: int) -> None:
        if n <= 1:
            return
        mid = n // 2
        sort(lo, mid)
        sort(lo + mid, n - mid)
        merge(lo, n)

    sort(0, channels)
    return from_comparator_list(channels, comparators, name=f"bitonic-{channels}")


def insertion(channels: int) -> SortingNetwork:
    """Insertion-sort network: Θ(n²) comparators, depth ``2n - 3``.

    The textbook non-optimal baseline; used in scaling ablations.
    """
    if channels < 1:
        raise ValueError("need at least one channel")
    comparators = [
        (j, j + 1)
        for i in range(1, channels)
        for j in range(i - 1, -1, -1)
    ]
    return from_comparator_list(channels, comparators, name=f"insertion-{channels}")


def best_known(channels: int) -> SortingNetwork:
    """The best network this library knows for ``channels``.

    Fixed optimal networks where recorded, Batcher otherwise.
    """
    fixed = {4: SORT4, 7: SORT7, 10: SORT10_SIZE}
    if channels in fixed:
        return fixed[channels]
    return batcher_odd_even(channels)
