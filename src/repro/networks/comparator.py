"""Sorting networks as data: comparators, layers, structural checks.

A sorting network is an oblivious sequence of compare-exchange
operations.  The paper's headline application (Section 1, Table 8)
plugs its MC 2-sort(B) into optimal n-channel networks; here the
network topology is a pure combinatorial object, independent of which
2-sort circuit implements the comparators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Comparator:
    """Compare-exchange between channels ``lo < hi`` (0-based).

    By convention the *smaller* value ends up on channel ``lo``.
    (Ascending order top-to-bottom; the 2-sort's max output feeds ``hi``.)
    """

    lo: int
    hi: int

    def __post_init__(self):
        if self.lo < 0:
            # A negative index passes the ordering checks but makes
            # apply()/sort_words_batch silently wrap to the wrong channel.
            raise ValueError(
                f"comparator channels must be non-negative: "
                f"got ({self.lo}, {self.hi})"
            )
        if self.lo == self.hi:
            raise ValueError("comparator must connect two distinct channels")
        if self.lo > self.hi:
            raise ValueError(
                f"comparator channels must be ordered: got ({self.lo}, {self.hi})"
            )

    def touches(self, other: "Comparator") -> bool:
        """True if the two comparators share a channel."""
        return bool({self.lo, self.hi} & {other.lo, other.hi})


class SortingNetwork:
    """An n-channel comparator network arranged in parallel layers.

    ``layers`` is a list of lists of :class:`Comparator`; comparators in
    one layer must be channel-disjoint (they operate concurrently).
    """

    def __init__(
        self,
        channels: int,
        layers: Iterable[Iterable[Tuple[int, int]]],
        name: str = "network",
    ):
        self.channels = channels
        self.name = name
        self.layers: List[List[Comparator]] = []
        for layer_spec in layers:
            layer = [Comparator(lo, hi) for lo, hi in layer_spec]
            used: set = set()
            for comp in layer:
                # lo < 0 is already rejected by Comparator itself; the
                # network re-checks so its channel-bounds contract does
                # not depend on the element type's validation.
                if comp.lo < 0 or comp.hi >= channels:
                    raise ValueError(
                        f"{name}: comparator {comp} exceeds {channels} channels"
                    )
                if {comp.lo, comp.hi} & used:
                    raise ValueError(
                        f"{name}: overlapping comparators in one layer ({comp})"
                    )
                used.update((comp.lo, comp.hi))
            self.layers.append(layer)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of comparators (the paper's cost driver)."""
        return sum(len(layer) for layer in self.layers)

    @property
    def depth(self) -> int:
        """Number of layers (drives the sorting-network delay)."""
        return len(self.layers)

    def comparators(self) -> List[Comparator]:
        """All comparators in execution order (layer by layer)."""
        return [comp for layer in self.layers for comp in layer]

    # ------------------------------------------------------------------
    def apply(self, values: Sequence, two_sort=None) -> List:
        """Run the network on a Python sequence.

        ``two_sort(a, b) -> (larger, smaller)`` defaults to the builtin
        ordering.  Returns the channel values after all layers,
        ascending on channel 0..n-1 for a correct network.
        """
        if len(values) != self.channels:
            raise ValueError(
                f"{self.name} expects {self.channels} values, got {len(values)}"
            )
        if two_sort is None:
            two_sort = lambda a, b: (a, b) if a >= b else (b, a)
        state = list(values)
        for layer in self.layers:
            for comp in layer:
                larger, smaller = two_sort(state[comp.lo], state[comp.hi])
                state[comp.lo] = smaller
                state[comp.hi] = larger
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SortingNetwork({self.name!r}, n={self.channels}, "
            f"size={self.size}, depth={self.depth})"
        )


def from_comparator_list(
    channels: int, comparators: Sequence[Tuple[int, int]], name: str = "network"
) -> SortingNetwork:
    """Greedily pack a flat comparator sequence into parallel layers.

    Preserves execution order: a comparator goes into the earliest layer
    after the last one touching either of its channels (standard ASAP
    layering, as used when reporting network depth).
    """
    layers: List[List[Tuple[int, int]]] = []
    last_layer_of_channel = {}
    for lo, hi in comparators:
        earliest = max(
            last_layer_of_channel.get(lo, -1), last_layer_of_channel.get(hi, -1)
        ) + 1
        while len(layers) <= earliest:
            layers.append([])
        layers[earliest].append((lo, hi))
        last_layer_of_channel[lo] = earliest
        last_layer_of_channel[hi] = earliest
    return SortingNetwork(channels, layers, name=name)
