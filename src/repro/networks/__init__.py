"""Sorting networks: topologies, composition with 2-sort circuits, simulation.

Covers the system level of the paper (Section 1 and Table 8): optimal
n-channel networks instantiated with metastability-containing 2-sort
elements, plus generic constructions and correctness properties.
"""

from .comparator import Comparator, SortingNetwork, from_comparator_list
from .topologies import (
    SORT4,
    SORT7,
    SORT10_DEPTH,
    SORT10_SIZE,
    TABLE8_NETWORKS,
    batcher_odd_even,
    best_known,
    bitonic,
    insertion,
)
from .build import TWO_SORT_BUILDERS, build_sorting_circuit
from .simulate import ENGINES, sort_words, sort_words_batch
from .properties import (
    check_mc_sort,
    is_sorted_by_rank,
    outputs_all_valid,
    sorts_binary,
    zero_one_counterexample,
)

__all__ = [
    "Comparator",
    "SortingNetwork",
    "from_comparator_list",
    "SORT4",
    "SORT7",
    "SORT10_DEPTH",
    "SORT10_SIZE",
    "TABLE8_NETWORKS",
    "batcher_odd_even",
    "best_known",
    "bitonic",
    "insertion",
    "TWO_SORT_BUILDERS",
    "build_sorting_circuit",
    "ENGINES",
    "sort_words",
    "sort_words_batch",
    "check_mc_sort",
    "is_sorted_by_rank",
    "outputs_all_valid",
    "sorts_binary",
    "zero_one_counterexample",
]
