"""Exhaustive verification of MC properties over the valid-string domain.

The paper validates by proof + spot simulation; these routines check
every claim *exhaustively* at small widths (|S^B_rg|² pairs -- e.g.
261k pairs at B = 8 for the containment lint, 3.8k at B = 5 for full
closure equality), giving the reproduction its ground truth.

Since the bit-parallel engine landed, both circuit-level sweeps run the
whole pair domain as a handful of two-plane batches
(:mod:`repro.circuits.compiled`):

* the *pair product* ``S x S`` is materialised directly in plane space
  -- the h-side planes are one per-string bit pattern replicated ``S``
  times by a single big-int multiply, the g-side planes spread each
  string's bit across an ``S``-wide lane block -- so no per-pair Python
  loop ever runs on the happy path;
* the expected ``(max, min)`` planes come from the total order of
  Table 2 (strings are enumerated in ascending rank, so "max = g iff
  h-index <= g-index" is one block-triangular select mask).  On valid
  strings the order max/min *is* the closure ``max_rg_M``/``min_rg_M``
  (Lemma 2.9; checked exhaustively in ``tests/test_graycode_ops.py``),
  so comparing planes against it verifies Definition 2.8 exactly;
* only mismatching lanes -- none, for a correct circuit -- are decoded
  back to words for the failure report.

Throughput on the full B = 8 domain improves by three orders of
magnitude over the scalar interpreter (``benchmarks/bench_engines.py``
tracks the exact ratio).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..backends import PlaneBackend, get_backend
from ..circuits.compiled import BackendLike, compile_circuit
from ..circuits.netlist import Circuit
from ..graycode.ops import two_sort_closure
from ..graycode.valid import all_valid_strings, is_valid
from ..ternary.trit import Trit
from ..ternary.word import Word

#: Default lanes per batch.  2^14 lanes keep each plane integer ~2 KB,
#: so the whole slot file of a 2-sort program stays cache-resident
#: during the op sweep -- measured 2-10x faster at B >= 8 than the old
#: 2^22 budget, whose 0.5 MB planes thrashed cache across ~200 slots.
_MAX_LANES = 1 << 14

#: Hard ceiling on lanes per shard, whatever the caller requests
#: (0.5 MB plane integers -- the pre-sharding memory bound).  Without it
#: a huge --shard-size would materialise every program slot as a
#: multi-GB integer at B = 13.
_MAX_SHARD_LANES = 1 << 22


@dataclass(frozen=True)
class SweepEpoch:
    """Self-describing setup phase of one sharded sweep.

    Every shard of a sweep shares one expensive preparation step --
    compile ``circuit`` for ``backend`` at ``width`` -- and a worker
    (local pool worker or remote :mod:`repro.distributed` agent) must
    perform it exactly once before executing any of that sweep's
    shards.  The epoch names that unit of setup: workers key their
    compile caches on it, and ``circuit_hash``
    (:meth:`~repro.circuits.netlist.Circuit.content_hash`) lets a
    remote worker verify the netlist it deserialized is the one the
    coordinator is sweeping before results ever merge.
    """

    kind: str
    circuit_name: str
    circuit_hash: str
    width: int
    backend: Optional[str] = None

    def key(self) -> Tuple[str, str, int, Optional[str]]:
        """Compile-cache key: two epochs with equal keys share setup."""
        return (self.kind, self.circuit_hash, self.width, self.backend)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "circuit_name": self.circuit_name,
            "circuit_hash": self.circuit_hash,
            "width": self.width,
            "backend": self.backend,
        }

    def fingerprint(self) -> str:
        """Stable short digest of the whole descriptor.

        Content-addressed identity for an epoch *as serialized* -- the
        checkpoint journal (:mod:`repro.distributed.checkpoint`) dedups
        its epoch records on it, and audits can match a journal to a
        sweep without comparing field by field.
        """
        blob = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepEpoch":
        return cls(
            kind=data["kind"],
            circuit_name=data["circuit_name"],
            circuit_hash=data["circuit_hash"],
            width=data["width"],
            backend=data.get("backend"),
        )


@dataclass
class VerificationResult:
    """Outcome of one exhaustive sweep (or one shard of it).

    ``failures`` holds at most the first ``limit`` counterexample
    messages; ``truncated`` is set whenever at least one message was
    dropped, so no consumer can mistake the capped list for the full
    report (``failure_count`` always has the true total).  ``elapsed``
    is optional wall-clock seconds, set by timing-aware callers (the
    CLI ``--json`` path); it is *not* merged across shards, since
    summing parallel wall times would be meaningless.
    """

    checked: int = 0
    failure_count: int = 0
    failures: List[str] = field(default_factory=list)
    truncated: bool = False
    elapsed: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.failure_count == 0

    def record(self, message: str, limit: int = 20) -> None:
        self.failure_count += 1
        if len(self.failures) < limit:
            self.failures.append(message)
        else:
            self.truncated = True

    def summary(self) -> str:
        if self.ok:
            return f"{self.checked} cases checked: OK"
        status = f"{self.failure_count} FAILURES"
        if self.truncated:
            status += f" (first {len(self.failures)} shown)"
        return f"{self.checked} cases checked: {status}"

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (the CLI ``--json`` / service payload)."""
        out: Dict[str, Any] = {
            "checked": self.checked,
            "ok": self.ok,
            "failure_count": self.failure_count,
            "failures": list(self.failures),
            "truncated": self.truncated,
        }
        if self.elapsed is not None:
            out["elapsed_s"] = round(self.elapsed, 6)
        return out

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def merge(
        cls, results: Iterable["VerificationResult"], limit: int = 20
    ) -> "VerificationResult":
        """Combine per-shard results deterministically.

        Counts are summed; failure messages are concatenated in shard
        order and capped at ``limit``, so a sharded sweep reports exactly
        what the equivalent single sweep over the same shard order would.
        ``truncated`` is propagated from any input and also set when the
        cap drops messages here.
        """
        merged = cls()
        for r in results:
            merged.checked += r.checked
            merged.failure_count += r.failure_count
            merged.truncated = merged.truncated or r.truncated
            for message in r.failures:
                if len(merged.failures) < limit:
                    merged.failures.append(message)
                else:
                    merged.truncated = True
        return merged


def valid_pairs(width: int) -> Iterable[Tuple[Word, Word]]:
    """All ordered pairs of valid strings of the given width."""
    strings = all_valid_strings(width)
    return itertools.product(strings, strings)


# ----------------------------------------------------------------------
# Plane-space construction of the pair product
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _string_bit_masks(width: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Per-bit-position masks over the valid strings of ``width``.

    ``m0[b]`` (resp. ``m1[b]``) has bit ``i`` set iff bit ``b`` of
    ``all_valid_strings(width)[i]`` can resolve to 0 (resp. 1).
    """
    strings = all_valid_strings(width)
    m0 = [0] * width
    m1 = [0] * width
    for i, w in enumerate(strings):
        for b, t in enumerate(w):
            if t is not Trit.ONE:
                m0[b] |= 1 << i
            if t is not Trit.ZERO:
                m1[b] |= 1 << i
    return tuple(m0), tuple(m1)


@lru_cache(maxsize=8)
def _shard_input_planes(be: PlaneBackend, width: int, g_lo: int, g_hi: int):
    """Backend-native input planes for one g-row shard.

    Covers ``gi`` in ``[g_lo, g_hi)`` against *all* ``hi``; lane index
    is ``(gi - g_lo) * S + hi`` (h fastest).  Returns the 2*width input
    planes (g bits then h bits) and the lane count, built through the
    backend's structured-packing primitives
    (:meth:`PlaneBackend.from_pattern` and friends) so word-array
    backends construct lane words directly instead of routing
    ``lanes``-bit ints through ``from_int``.  The base-class defaults
    reproduce the original big-int construction exactly, so every
    backend yields bit-identical planes.

    Memoized: the planes depend only on the shard, not the circuit, and
    every sweep treats input planes as immutable (``run_ops`` never
    writes a preset slot's plane).  Region sweeps verify many cones over
    the *same* shard and re-verification revisits shards wholesale, so
    a small LRU turns the pack stage into a lookup; backends hash by
    identity and registry entries are process-long, so the keys are
    stable.
    """
    m0, m1 = _string_bit_masks(width)
    S = (1 << (width + 1)) - 1  # |S^B_rg|
    K = g_hi - g_lo
    lanes = K * S
    g_mask = (1 << K) - 1
    planes = []
    for b in range(width):  # g-side: spread bit gi into an S-wide block
        planes.append(
            (
                be.expand_bits((m0[b] >> g_lo) & g_mask, S, lanes),
                be.expand_bits((m1[b] >> g_lo) & g_mask, S, lanes),
            )
        )
    for b in range(width):  # h-side: per-string pattern, replicated
        planes.append(
            (be.from_pattern(m0[b], S, lanes), be.from_pattern(m1[b], S, lanes))
        )
    return tuple(planes), lanes


def _shard_select_mask(be: PlaneBackend, width: int, g_lo: int, lanes: int):
    """``(sel, nsel)`` for one g-row shard.

    ``sel`` is set on lanes where ``rank(g) >= rank(h)`` (strings are
    enumerated in ascending rank, so within the block of ``gi`` these
    are the lanes ``hi <= gi`` -- a block-triangular prefix mask).  The
    expected Table 2 order max takes each bit from ``g`` on those lanes
    and from ``h`` elsewhere; the min is the complementary selection.
    Both the mux and the compare run fused inside
    :meth:`CompiledCircuit.run_select_diff`.
    """
    S = (1 << (width + 1)) - 1
    sel = be.from_prefix_runs(g_lo + 1, S, lanes)
    return sel, be.bnot(sel, lanes)


def _two_sort_select_pairs(width: int):
    """``(out, a, b)`` mux triples for every 2-sort output.

    Output ``b < width`` (bit ``b`` of the order max) expects g-input
    ``b`` where ``sel``, h-input ``width + b`` elsewhere; output
    ``width + b`` (order min) is the complementary selection.
    """
    return [(b, b, width + b) for b in range(width)] + [
        (width + b, width + b, b) for b in range(width)
    ]


def check_two_sort_shape(circuit: Circuit, width: int) -> None:
    if len(circuit.inputs) != 2 * width or len(circuit.outputs) != 2 * width:
        raise ValueError(
            f"{circuit.name}: a 2-sort({width}) circuit needs {2 * width} "
            f"inputs and outputs, got {len(circuit.inputs)}/"
            f"{len(circuit.outputs)}"
        )


def pair_shards(
    width: int, shard_size: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Split the pair domain into independent g-row blocks.

    Each shard ``(g_lo, g_hi)`` covers the pairs ``(strings[gi], *)``
    for ``gi`` in ``[g_lo, g_hi)`` -- ``(g_hi - g_lo) * S`` lanes of the
    plane-space pair product.  ``shard_size`` is the approximate lane
    budget per shard (default :data:`_MAX_LANES`, clamped to
    :data:`_MAX_SHARD_LANES` so a huge request cannot blow the memory
    bound); shards are disjoint, cover the domain exactly, and can be
    verified in any order -- the unit of work for
    :mod:`repro.verify.parallel`.
    """
    S = (1 << (width + 1)) - 1  # |S^B_rg|
    if shard_size is None:
        size = _MAX_LANES
    else:
        size = min(max(1, shard_size), _MAX_SHARD_LANES)
    step = max(1, size // S)
    return [(g_lo, min(S, g_lo + step)) for g_lo in range(0, S, step)]


def verify_two_sort_shard(
    program, width: int, g_lo: int, g_hi: int
) -> VerificationResult:
    """Verify one g-row shard of the pair domain against the closure.

    ``program`` is the :class:`~repro.circuits.compiled.CompiledCircuit`
    of a shape-checked 2-sort(``width``) netlist; the sweep runs on the
    program's plane backend, so results are bit-identical for any
    backend choice.  Pure function of its arguments, so shards can run
    in any process and their results merge deterministically
    (:meth:`VerificationResult.merge`).
    """
    strings = all_valid_strings(width)
    S = len(strings)
    result = VerificationResult()

    be: PlaneBackend = program.backend
    # The pair product is packed into backend planes exactly once per
    # shard; run_select_diff accepts the native planes as-is and fuses
    # the sweep with the expected-output mux and comparison.
    native, lanes = _shard_input_planes(be, width, g_lo, g_hi)
    sel, nsel = _shard_select_mask(be, width, g_lo, lanes)
    diff, mismatches = program.run_select_diff(
        native, lanes, sel, nsel, _two_sort_select_pairs(width)
    )

    result.checked += lanes
    if mismatches:
        # Failures are rare: only then re-run the program for the full
        # slot planes the per-lane decode needs.
        p0, p1 = program.run_planes(native, lanes)
        for lane in be.iter_set_lanes(diff, lanes):
            g = strings[g_lo + lane // S]
            h = strings[lane % S]
            out = program.decode_lane(p0, p1, lane)
            got = (out[:width], out[width:])
            want = two_sort_closure(g, h)
            result.record(
                f"({g}, {h}): got {got[0]}/{got[1]}, "
                f"want {want[0]}/{want[1]}"
            )
    return result


def verify_two_sort_region_shard(
    program, width: int, output_index: int, g_lo: int, g_hi: int
) -> Dict[str, int]:
    """Verify one output cone over one g-row shard.

    ``program`` is the compiled *cone extraction* of output
    ``output_index`` (see :meth:`Circuit.extract_cone`): all ``2*width``
    primary inputs in their original order, a single output.  The
    expected planes are the one bit of the Table 2 order max
    (``output_index < width``, bit ``output_index``) or order min
    (bit ``output_index - width``) this cone computes.  Returns a plain
    JSON value -- ``{"lanes": L, "mismatches": N}`` -- because a region
    shard is a store entry, not a user-facing report: the region sweep
    aggregates these and, only when a cone actually mismatches, re-runs
    the canonical full-circuit shard to produce the usual
    :class:`VerificationResult` failure messages byte-for-byte.
    """
    be: PlaneBackend = program.backend
    native, lanes = _shard_input_planes(be, width, g_lo, g_hi)
    sel, nsel = _shard_select_mask(be, width, g_lo, lanes)

    if output_index < width:  # a max bit: g where sel, else h
        b = output_index
        pair = (0, b, width + b)
    else:  # a min bit: the complementary selection
        b = output_index - width
        pair = (0, width + b, b)
    _diff, mismatches = program.run_select_diff(
        native, lanes, sel, nsel, [pair]
    )
    return {"lanes": lanes, "mismatches": mismatches}


def verify_two_sort_circuit(
    circuit: Circuit, width: int, backend: BackendLike = None
) -> VerificationResult:
    """Circuit output == ``(max_rg_M, min_rg_M)`` on *all* valid pairs.

    Fully batched: the whole ``|S^B_rg|^2`` pair domain is evaluated as
    a few bit-parallel sweeps and compared against the Table 2 order
    max/min in plane space (equal to the Definition 2.8 closure on valid
    strings).  Failure messages still quote the closure spec per pair.
    ``backend`` picks the plane representation
    (:mod:`repro.backends`; default: the process default) -- the result
    is bit-identical for every backend.

    Single-process; :func:`repro.verify.parallel.verify_two_sort_sharded`
    runs the same shards across a worker pool.
    """
    check_two_sort_shape(circuit, width)
    program = compile_circuit(circuit, get_backend(backend))
    return VerificationResult.merge(
        verify_two_sort_shard(program, width, g_lo, g_hi)
        for g_lo, g_hi in pair_shards(
            width, program.backend.preferred_shard_lanes
        )
    )


def verify_containment(
    circuit: Circuit, width: int, backend: BackendLike = None
) -> VerificationResult:
    """Weaker property: outputs are valid strings for all valid inputs.

    This is the "containment" contract on its own, checkable even for
    designs that are not closure-exact.  Circuit evaluation is batched
    (on the selected plane backend); validity is then checked per
    decoded output pair.
    """
    check_two_sort_shape(circuit, width)
    strings = all_valid_strings(width)
    S = len(strings)
    program = compile_circuit(circuit, get_backend(backend))
    result = VerificationResult()

    for g_lo, g_hi in pair_shards(
        width, program.backend.preferred_shard_lanes
    ):
        planes, lanes = _shard_input_planes(
            program.backend, width, g_lo, g_hi
        )
        p0, p1 = program.run_planes(planes, lanes)
        outputs = program.decode_outputs(p0, p1, lanes)
        for lane, out in enumerate(outputs):
            result.checked += 1
            parts = ((out[:width], "max"), (out[width:], "min"))
            for part, name in parts:
                if not is_valid(part):
                    g = strings[g_lo + lane // S]
                    h = strings[lane % S]
                    result.record(
                        f"({g}, {h}): {name} output {part} invalid"
                    )
    return result


def verify_function_agreement(
    f: Callable[[Word, Word], Tuple[Word, Word]],
    g_fn: Callable[[Word, Word], Tuple[Word, Word]],
    width: int,
) -> VerificationResult:
    """Two value-level 2-sort implementations agree on all valid pairs."""
    result = VerificationResult()
    for g, h in valid_pairs(width):
        a = f(g, h)
        b = g_fn(g, h)
        result.checked += 1
        if a != b:
            result.record(f"({g}, {h}): {a} vs {b}")
    return result
