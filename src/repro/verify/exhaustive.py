"""Exhaustive verification of MC properties over the valid-string domain.

The paper validates by proof + spot simulation; these routines check
every claim *exhaustively* at small widths (|S^B_rg|² pairs -- e.g.
261k pairs at B = 8 for the containment lint, 3.8k at B = 5 for full
closure equality), giving the reproduction its ground truth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from ..circuits.evaluate import evaluate_words
from ..circuits.netlist import Circuit
from ..graycode.ops import two_sort_closure
from ..graycode.valid import all_valid_strings, is_valid
from ..ternary.word import Word


@dataclass
class VerificationResult:
    """Outcome of one exhaustive sweep."""

    checked: int = 0
    failure_count: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failure_count == 0

    def record(self, message: str, limit: int = 20) -> None:
        self.failure_count += 1
        if len(self.failures) < limit:
            self.failures.append(message)

    def summary(self) -> str:
        status = "OK" if self.ok else f"{self.failure_count} FAILURES"
        return f"{self.checked} cases checked: {status}"


def valid_pairs(width: int) -> Iterable[Tuple[Word, Word]]:
    """All ordered pairs of valid strings of the given width."""
    strings = all_valid_strings(width)
    return itertools.product(strings, strings)


def verify_two_sort_circuit(
    circuit: Circuit, width: int
) -> VerificationResult:
    """Circuit output == ``(max_rg_M, min_rg_M)`` on *all* valid pairs."""
    result = VerificationResult()
    for g, h in valid_pairs(width):
        out = evaluate_words(circuit, g, h)
        got = (out[:width], out[width:])
        want = two_sort_closure(g, h)
        result.checked += 1
        if got != want:
            result.record(
                f"({g}, {h}): got {got[0]}/{got[1]}, want {want[0]}/{want[1]}"
            )
    return result


def verify_containment(circuit: Circuit, width: int) -> VerificationResult:
    """Weaker property: outputs are valid strings for all valid inputs.

    This is the "containment" contract on its own, checkable even for
    designs that are not closure-exact.
    """
    result = VerificationResult()
    for g, h in valid_pairs(width):
        out = evaluate_words(circuit, g, h)
        result.checked += 1
        for part, name in ((out[:width], "max"), (out[width:], "min")):
            if not is_valid(part):
                result.record(f"({g}, {h}): {name} output {part} invalid")
    return result


def verify_function_agreement(
    f: Callable[[Word, Word], Tuple[Word, Word]],
    g_fn: Callable[[Word, Word], Tuple[Word, Word]],
    width: int,
) -> VerificationResult:
    """Two value-level 2-sort implementations agree on all valid pairs."""
    result = VerificationResult()
    for g, h in valid_pairs(width):
        a = f(g, h)
        b = g_fn(g, h)
        result.checked += 1
        if a != b:
            result.record(f"({g}, {h}): {a} vs {b}")
    return result
