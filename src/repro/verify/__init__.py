"""Verification utilities: exhaustive sweeps, sharded parallel runs,
and random workloads."""

from .exhaustive import (
    SweepEpoch,
    VerificationResult,
    pair_shards,
    valid_pairs,
    verify_containment,
    verify_function_agreement,
    verify_two_sort_circuit,
    verify_two_sort_shard,
)
from .parallel import (
    available_executors,
    default_jobs,
    plan_shards,
    register_executor,
    run_sharded,
    verify_two_sort_sharded,
)
from .random_valid import (
    ValidStringSource,
    measurement_sweep,
    verify_random_pairs,
)

__all__ = [
    "SweepEpoch",
    "VerificationResult",
    "pair_shards",
    "valid_pairs",
    "verify_containment",
    "verify_function_agreement",
    "verify_two_sort_circuit",
    "verify_two_sort_shard",
    "available_executors",
    "default_jobs",
    "plan_shards",
    "register_executor",
    "run_sharded",
    "verify_two_sort_sharded",
    "ValidStringSource",
    "measurement_sweep",
    "verify_random_pairs",
]
