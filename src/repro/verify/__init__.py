"""Verification utilities: exhaustive sweeps and random workloads."""

from .exhaustive import (
    VerificationResult,
    valid_pairs,
    verify_containment,
    verify_function_agreement,
    verify_two_sort_circuit,
)
from .random_valid import (
    ValidStringSource,
    measurement_sweep,
    verify_random_pairs,
)

__all__ = [
    "VerificationResult",
    "valid_pairs",
    "verify_containment",
    "verify_function_agreement",
    "verify_two_sort_circuit",
    "ValidStringSource",
    "measurement_sweep",
    "verify_random_pairs",
]
