"""Sharded parallel verification across a pluggable executor registry.

The bit-parallel engine (:mod:`repro.circuits.compiled`) made a single
process sweep the ``|S^B_rg|^2`` pair domain ~3000x faster, but one
core is still the ceiling: at B = 13 the domain is 268M pairs.  The
plane-space construction is embarrassingly parallel, though -- each
g-row block of the pair product (:func:`repro.verify.exhaustive.pair_shards`)
is an independent unit of work whose
:class:`~repro.verify.exhaustive.VerificationResult` merges
deterministically with the others.  This module dispatches those shards
across worker processes.

**Executor registry.**  An executor is a strategy for running a worker
function over a task list::

    executor(worker, tasks, jobs=..., initializer=..., initargs=...)
        -> [worker(t) for t in tasks]      # results in task order

Two executors ship by default:

* ``"serial"``  -- in-process loop; the semantic reference and the
  zero-overhead path for one job,
* ``"process"`` -- a ``multiprocessing`` pool; the initializer runs once
  per worker (compiling the circuit there, so the netlist is pickled
  once and the program is reused across that worker's shards).

:func:`register_executor` is the backend hook, exactly like the engine
registry in :mod:`repro.networks.simulate`.  Two more executors ride
on it: ``"distributed"`` leases tasks to socket-connected worker
agents on other hosts (:mod:`repro.distributed` -- imported lazily by
its registration stub), and the ``"array"`` executor
uses it: an in-process executor that pins the ``array`` plane backend
(:mod:`repro.backends`) for its tasks, so ``--jobs 1 --backend array``
semantics are reachable purely by executor name, with no caller
changes.  Orthogonally, every sharded entry point takes a ``backend``
argument that the pool initializers forward to workers **by name**, so
any executor can run any plane representation (process pools pickle
the name, never the backend object).

**Determinism.**  Executors must return results in task order; callers
merge with :meth:`VerificationResult.merge` (or plain concatenation for
batch workloads), so the outcome is bit-identical for any job count --
``--jobs N`` changes wall-clock time, never the report.
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..backends import (
    AUTO_BACKEND,
    PlaneBackend,
    get_backend,
    resolve_backend_name,
    use_backend,
)
from ..circuits.compiled import BackendLike, compile_circuit
from ..circuits.netlist import Circuit
from ..store import shared_store
from ..store.base import RunRecord, result_digest, wait_for
from .exhaustive import (
    _MAX_SHARD_LANES,
    SweepEpoch,
    VerificationResult,
    check_two_sort_shape,
    pair_shards,
    verify_two_sort_region_shard,
    verify_two_sort_shard,
)

__all__ = [
    "SweepCancelled",
    "available_executors",
    "default_jobs",
    "plan_shards",
    "register_executor",
    "run_sharded",
    "verify_two_sort_sharded",
]

#: Worker signature: one picklable task in, one picklable result out.
Worker = Callable[[Any], Any]
#: Executor signature (see module docstring).
Executor = Callable[..., List[Any]]
#: Per-result hook: ``on_result(task_index, result)``, called in task
#: order from the *calling* process as each task completes.
OnResult = Callable[[int, Any], None]
#: Cooperative stop probe, polled between tasks.
ShouldStop = Callable[[], bool]


class SweepCancelled(RuntimeError):
    """A sharded run was stopped by ``should_stop()`` between tasks.

    ``results`` holds the tasks completed before the stop, in task
    order -- enough for a caller to report partial progress.  Raised
    (never returned) so a cancelled sweep can't be mistaken for a
    complete one.
    """

    def __init__(self, results: List[Any]):
        super().__init__(f"cancelled after {len(results)} completed task(s)")
        self.results = results


_EXECUTORS: Dict[str, Executor] = {}
#: Executors whose signature accepts ``on_result``/``should_stop``
#: (detected at registration); others get the replay fallback.
_STREAMING: Dict[str, bool] = {}
#: Executors whose signature accepts ``epoch`` -- the sweep-setup
#: descriptor remote workers key their compile caches on.  Local
#: executors don't need it (the initializer already carries the
#: circuit), so it is forwarded only where declared.
_EPOCH_AWARE: Dict[str, bool] = {}


def _signature_params(executor: Executor):
    try:
        params = inspect.signature(executor).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        return None
    return params


def _supports_streaming(executor: Executor) -> bool:
    params = _signature_params(executor)
    if params is None:
        return False
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    ):
        return True
    return {"on_result", "should_stop"} <= set(params)


def _supports_epoch(executor: Executor) -> bool:
    params = _signature_params(executor)
    if params is None:
        return False
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    ):
        return True  # same **kwargs rule as the streaming detection
    return "epoch" in params


def register_executor(name: str, executor: Executor) -> None:
    """Register (or replace) an execution backend under ``name``.

    Executors that accept ``on_result``/``should_stop`` keyword
    arguments (detected by signature) get them forwarded natively for
    per-task streaming and cooperative cancellation; legacy executors
    without them still work -- :func:`run_sharded` replays their
    completed results through ``on_result`` afterwards and only checks
    ``should_stop`` up front.  Executors declaring an ``epoch``
    keyword additionally receive the sweep's
    :class:`~repro.verify.exhaustive.SweepEpoch` (the ``"distributed"``
    executor ships it to remote workers).
    """
    _EXECUTORS[name] = executor
    _STREAMING[name] = _supports_streaming(executor)
    _EPOCH_AWARE[name] = _supports_epoch(executor)


def available_executors() -> List[str]:
    return sorted(_EXECUTORS)


def default_jobs() -> int:
    """Worker count when the caller does not pin one (all cores)."""
    return os.cpu_count() or 1


def plan_shards(total: int, shard_size: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``[lo, hi)`` blocks of ``shard_size``.

    The generic index-space twin of
    :func:`repro.verify.exhaustive.pair_shards`: disjoint, exactly
    covering, in ascending order -- so concatenating per-shard results
    reproduces the unsharded output.
    """
    if total <= 0:
        return []
    size = max(1, shard_size)
    return [(lo, min(total, lo + size)) for lo in range(0, total, size)]


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
def _pool_context():
    """Multiprocessing context for worker pools.

    From the main thread (the CLI path) the platform default is kept --
    fork on Linux, with its cheap startup.  From any other thread the
    caller is a multithreaded process (the service layer runs sweeps on
    a thread pool), where forking can deadlock the child on locks held
    by sibling threads at fork time (and is a DeprecationWarning on
    3.12+), so ``spawn`` is used instead.  All pool initializers and
    workers in this codebase are module-level with picklable initargs,
    so both contexts run them identically.
    """
    if threading.current_thread() is threading.main_thread():
        return multiprocessing.get_context()
    return multiprocessing.get_context("spawn")


def _serial_executor(
    worker: Worker,
    tasks: Sequence[Any],
    jobs: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    on_result: Optional[OnResult] = None,
    should_stop: Optional[ShouldStop] = None,
) -> List[Any]:
    """Run every task in this process (reference implementation)."""
    if initializer is not None:
        initializer(*initargs)
    out: List[Any] = []
    for i, task in enumerate(tasks):
        if should_stop is not None and should_stop():
            raise SweepCancelled(out)
        result = worker(task)
        out.append(result)
        if on_result is not None:
            on_result(i, result)
    return out


def _process_executor(
    worker: Worker,
    tasks: Sequence[Any],
    jobs: int,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    on_result: Optional[OnResult] = None,
    should_stop: Optional[ShouldStop] = None,
) -> List[Any]:
    """Fan tasks out over a ``multiprocessing`` pool, order-preserving.

    A pool is spawned even for ``jobs=1`` -- callers asked for process
    isolation by name, and benchmarks need the honest single-worker
    pool overhead, not a silent serial fallback.  With streaming hooks
    the pool switches from ``map`` to ordered ``imap`` so each result
    surfaces (and ``should_stop`` is polled) as it completes; a stop
    terminates the pool, abandoning in-flight shards.
    """
    if not tasks:
        return []
    jobs = min(max(1, jobs), len(tasks))
    ctx = _pool_context()
    with ctx.Pool(
        processes=jobs, initializer=initializer, initargs=initargs
    ) as pool:
        # chunksize=1: shards are coarse already; keep scheduling greedy.
        if on_result is None and should_stop is None:
            return pool.map(worker, tasks, chunksize=1)
        out: List[Any] = []
        results = pool.imap(worker, tasks, chunksize=1)
        for i in range(len(tasks)):
            if should_stop is not None and should_stop():
                pool.terminate()
                raise SweepCancelled(out)
            result = next(results)
            out.append(result)
            if on_result is not None:
                on_result(i, result)
        return out


def _array_executor(
    worker: Worker,
    tasks: Sequence[Any],
    jobs: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    on_result: Optional[OnResult] = None,
    should_stop: Optional[ShouldStop] = None,
) -> List[Any]:
    """In-process executor pinned to the ``array`` plane backend.

    The ROADMAP's registry hook made concrete: selecting
    ``executor="array"`` runs the serial loop with the process-default
    plane backend scoped to ``"array"``, so initializers that compile
    with the default backend pick up numpy/word-array planes without
    any caller passing a backend around.  An explicit ``backend=``
    argument on the caller still wins (it reaches the initializer as a
    name and overrides the scoped default).
    """
    with use_backend("array"):
        return _serial_executor(
            worker, tasks, jobs, initializer, initargs, on_result, should_stop
        )


def _distributed_executor(
    worker: Worker,
    tasks: Sequence[Any],
    jobs: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    on_result: Optional[OnResult] = None,
    should_stop: Optional[ShouldStop] = None,
    epoch: Optional[SweepEpoch] = None,
) -> List[Any]:
    """Cross-host executor: lease tasks to socket-connected workers.

    A thin registration stub -- the machinery (work-queue coordinator,
    lease/heartbeat/re-queue run loop, in-order merge) lives in
    :mod:`repro.distributed`, imported lazily so the registry can
    always list the name without the CLI paying the import.  ``jobs``
    is ignored: parallelism is each *worker's* ``--jobs``.  Requires a
    running coordinator (``--listen`` on the CLI, or
    :func:`repro.distributed.ensure_coordinator`).
    """
    from ..distributed.executor import run_distributed

    return run_distributed(
        worker,
        tasks,
        jobs=jobs,
        initializer=initializer,
        initargs=initargs,
        on_result=on_result,
        should_stop=should_stop,
        epoch=epoch,
    )


register_executor("serial", _serial_executor)
register_executor("process", _process_executor)
register_executor("array", _array_executor)
register_executor("distributed", _distributed_executor)


def run_sharded(
    worker: Worker,
    tasks: Sequence[Any],
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    on_result: Optional[OnResult] = None,
    should_stop: Optional[ShouldStop] = None,
    epoch: Optional[SweepEpoch] = None,
) -> List[Any]:
    """Run ``worker`` over ``tasks`` on a registered executor.

    ``jobs=None`` or ``0`` means every core; ``executor=None`` picks
    ``"process"`` for more than one job and ``"serial"`` otherwise.
    Results come back in task order regardless of backend, which is
    what makes sharded sweeps deterministic.

    ``on_result(i, result)`` fires in task order as task ``i``
    completes -- the single progress seam shared by the CLI, the async
    service layer, and tests.  ``should_stop()`` is polled between
    tasks; returning true raises :class:`SweepCancelled` carrying the
    results completed so far.  Executors registered without these
    keywords still work: their whole-batch result is replayed through
    ``on_result`` after the fact, and ``should_stop`` is only honoured
    before dispatch.

    ``epoch`` optionally describes the sweep's shared setup
    (:class:`~repro.verify.exhaustive.SweepEpoch`); it is forwarded
    only to executors that declare the keyword (``"distributed"``
    workers key their compile caches on it and validate circuit
    identity against it).
    """
    tasks = list(tasks)
    jobs = default_jobs() if not jobs else max(1, jobs)
    name = executor or ("process" if jobs > 1 else "serial")
    try:
        run = _EXECUTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown executor {name!r}; available: {available_executors()}"
        ) from None
    extra: Dict[str, Any] = {}
    if epoch is not None and _EPOCH_AWARE.get(name, False):
        extra["epoch"] = epoch
    if on_result is None and should_stop is None:
        return run(
            worker, tasks, jobs=jobs, initializer=initializer,
            initargs=initargs, **extra
        )
    if _STREAMING.get(name, False):
        return run(
            worker,
            tasks,
            jobs=jobs,
            initializer=initializer,
            initargs=initargs,
            on_result=on_result,
            should_stop=should_stop,
            **extra,
        )
    # Legacy executor: no mid-run streaming, but the contract holds.
    if should_stop is not None and should_stop():
        raise SweepCancelled([])
    out = run(
        worker, tasks, jobs=jobs, initializer=initializer,
        initargs=initargs, **extra
    )
    if on_result is not None:
        for i, result in enumerate(out):
            on_result(i, result)
    return out


# ----------------------------------------------------------------------
# Sharded exhaustive two-sort verification
# ----------------------------------------------------------------------
#: Per-worker state installed by the pool initializer (the compiled
#: program is built once per worker, not once per shard).  Thread-local
#: because the service layer runs concurrent in-process sweeps on a
#: thread pool; multiprocessing pool workers run the initializer and
#: their tasks on one thread, so per-process semantics are unchanged.
_VERIFY_STATE = threading.local()


def _init_verify_worker(
    circuit: Circuit, backend: BackendLike = None,
    store_spec: Optional[str] = None,
) -> None:
    # `backend` arrives as a registry name (or None for the executor /
    # process default) and `store_spec` as a store spec string (or None
    # when the sweep's store is not shareable) so the initargs stay
    # picklable for pool *and remote* workers.
    _VERIFY_STATE.program = compile_circuit(circuit, get_backend(backend))
    _VERIFY_STATE.circuit = circuit
    _VERIFY_STATE.backend = backend
    _VERIFY_STATE.backend_name = get_backend(backend).name
    _VERIFY_STATE.region_programs = {}
    _VERIFY_STATE.store = shared_store(store_spec) if store_spec else None


def _verify_shard_worker(task: Tuple[int, int, int]) -> VerificationResult:
    width, g_lo, g_hi = task
    return verify_two_sort_shard(_VERIFY_STATE.program, width, g_lo, g_hi)


def _region_key(
    circuit_name: str, region_hash: str, backend_name: str,
    width: int, output_index: int, g_lo: int, g_hi: int,
) -> Tuple:
    """Store key for one output cone over one g-row range.

    Keyed on the *region* digest, not the whole-circuit content hash:
    an edit invalidates exactly the keys of the cones it touches, which
    is what makes re-verification after an edit incremental.  The
    ``"r"`` marker keeps region keys disjoint from the historical
    circuit-granularity shard keys in shared stores.
    """
    return (
        circuit_name, region_hash, backend_name, width, "r",
        output_index, g_lo, g_hi,
    )


def _execute_region_shard(task: Tuple[int, int, int, int]) -> Dict[str, int]:
    """Compute one region shard from per-worker state (no store consult).

    Module-level (not a closure) so tests can monkeypatch it to count
    actual executions -- the seam that pins "a warm store re-executes
    nothing" and "an edit re-executes only the affected cones".
    """
    width, output_index, g_lo, g_hi = task
    state = _VERIFY_STATE
    program = state.region_programs.get(output_index)
    if program is None:
        program = state.region_programs[output_index] = compile_circuit(
            state.circuit.extract_cone(output_index),
            get_backend(state.backend),
        )
    return verify_two_sort_region_shard(
        program, width, output_index, g_lo, g_hi
    )


def _verify_region_worker(task: Tuple[int, int, int, int]) -> Dict[str, int]:
    """Worker for region tasks: consult the shared store, then compute.

    When the sweep's store is shareable its spec rides the pool
    initargs, and each worker holds its own handle: a get-hit skips the
    execution entirely, and :func:`repro.store.base.wait_for` claims
    the key first so two processes sweeping the same circuit against
    one store never double-execute a region shard.
    """
    state = _VERIFY_STATE
    store = getattr(state, "store", None)
    if store is None:
        return _execute_region_shard(task)
    width, output_index, g_lo, g_hi = task
    key = _region_key(
        state.circuit.name,
        state.circuit.region_hashes()[output_index],
        state.backend_name, width, output_index, g_lo, g_hi,
    )
    return wait_for(store, key, lambda: _execute_region_shard(task))


def _default_pair_shard_size(
    width: int, jobs: int, backend: BackendLike = None
) -> int:
    """Lane budget per shard, balanced for the width and plane backend.

    Three forces, in order:

    * **load balance** -- ~4 shards per worker, but never above the
      backend's preferred per-shard lane count (big-int planes want the
      slot file cache-resident; word-array planes want enough words per
      op to amortize call overhead);
    * **plane-construction/run split at B = 10..13** -- a g-row of the
      pair product is ``S = 2^(B+1)-1`` lanes, and building its planes
      costs O(width * S) big-int block work *per row* while the program
      run costs O(ops * lanes).  Once ``S`` is a sizable fraction of
      the lane budget (B >= 10), fractional-row remainders would leave
      shards whose construction/run ratio differs wildly, so the budget
      is spent on a whole number of g-rows per shard;
    * **word alignment** -- the result is rounded up to the backend's
      preferred lane-word size so no shard ends mid-word.

    Deterministic (pinned by ``tests/test_backends.py``) and capped at
    the hard :data:`~repro.verify.exhaustive._MAX_SHARD_LANES` bound.
    """
    be = get_backend(backend)
    S = (1 << (width + 1)) - 1
    budget = be.preferred_shard_lanes
    per_worker = -(-S * S // max(1, 4 * jobs))  # ceil
    size = min(budget, max(S, per_worker))
    if width >= 10:
        size = max(1, budget // S) * S  # whole g-rows per shard
    word = max(1, be.word_bits)
    return min(_MAX_SHARD_LANES, -(-size // word) * word)


#: Per-shard progress hook: ``on_shard(done, total, result)`` where
#: ``done`` is the number of shards finished so far (cached hits
#: included) and ``result`` is that shard's VerificationResult.
OnShard = Callable[[int, int, VerificationResult], None]


def verify_two_sort_sharded(
    circuit: Circuit,
    width: int,
    jobs: Optional[int] = None,
    shard_size: Optional[int] = None,
    executor: Optional[str] = None,
    backend: BackendLike = None,
    on_shard: Optional[OnShard] = None,
    should_stop: Optional[ShouldStop] = None,
    cache: Optional[Any] = None,
    store: Optional[Any] = None,
    regions: Optional[bool] = None,
) -> VerificationResult:
    """Exhaustively verify a 2-sort circuit with sharded execution.

    Splits the ``|S^B_rg|^2`` pair domain into lane-block shards
    (:func:`~repro.verify.exhaustive.pair_shards`), dispatches them on
    the chosen executor, and merges the per-shard results in shard
    order.  For any ``jobs``/``shard_size``/``executor``/``backend``
    the returned :class:`VerificationResult` counts are identical to the
    single-process :func:`~repro.verify.exhaustive.verify_two_sort_circuit`.
    ``jobs=None`` or ``0`` means one worker per core; ``backend`` names
    a plane backend (:mod:`repro.backends`) and is forwarded to every
    worker through the pool initializer (by name, so it pickles).

    This is the one code path behind the CLI, the async service layer
    (:mod:`repro.service`), and the sharded tests:

    * ``on_shard(done, total, result)`` fires per finished shard, in
      shard order, from the calling process -- the progress stream;
    * ``should_stop()`` is polled between shards; a true return raises
      :class:`SweepCancelled` (cooperative cancellation -- in-flight
      shards on a process pool are abandoned);
    * ``cache`` is an optional mapping-like object with
      ``get(key)``/``put(key, value)`` (see
      :class:`repro.service.cache.ShardCache`).  Shards are keyed on
      ``(circuit.name, circuit.content_hash(), backend.name, width,
      g_lo, g_hi)`` -- the content hash identifies the netlist
      *structure*, so a rebuilt-but-identical circuit hits while any
      structural edit (which also bumps ``version``) misses, and two
      different circuits can never collide the way an in-process
      mutation counter could.  Hits skip the worker entirely but still
      count toward progress, and fresh results are inserted as they
      complete (so even a cancelled run warms the cache);
    * ``store`` is a :class:`repro.store.base.ResultStore`: same role
      as ``cache`` (either name works; ``store`` wins when both are
      given) but it flips the sweep into **region granularity** --
      every primary-output cone is verified independently per g-row
      range, keyed on the cone's *region* digest
      (:meth:`Circuit.region_hashes`) instead of the whole-circuit
      hash.  A one-gate edit then re-executes only the shards of the
      cones it touched; untouched cones hit the store.  ``regions``
      overrides the granularity explicitly (``store`` alone implies
      ``True``).  Shareable stores (sqlite) additionally ship their
      spec to workers, which consult the store *before executing* --
      the no-double-execute mechanism across processes and hosts.
      Clean ranges merge into the report as synthetic all-clear counts;
      a range whose cone mismatches is re-verified at circuit
      granularity through the canonical
      :func:`~repro.verify.exhaustive.verify_two_sort_shard`, so the
      merged report is byte-identical to an uncached sweep.  Every
      completed (non-plain) sweep appends a
      :class:`~repro.store.base.RunRecord` audit row to the store.
    """
    check_two_sort_shape(circuit, width)
    jobs = default_jobs() if not jobs else max(1, jobs)
    if isinstance(backend, PlaneBackend):
        backend = backend.name
    if backend == AUTO_BACKEND:
        # Resolve the alias once, up front, so shard sizing, cache and
        # epoch keys, and the name forwarded to every worker all agree
        # on one concrete backend (workers on compiler-less hosts still
        # degrade via the native proxy's bigint fallback).
        backend = resolve_backend_name(backend)
    # The executor may scope a different default backend ("array"), in
    # which case the explicit-backend resolution here still matches
    # what workers compile: None resolves identically in both places
    # only for in-process executors, so size (and key the cache) by
    # the effective backend name.
    effective_backend = backend if backend is not None else (
        "array" if executor == "array" else None
    )
    if shard_size is None:
        shard_size = _default_pair_shard_size(width, jobs, effective_backend)
    shards = pair_shards(width, shard_size)
    total = len(shards)
    # The sweep's shared-setup descriptor: remote workers compile once
    # per epoch and verify the circuit they deserialized against the
    # content hash before any result merges.  `backend` stays the
    # caller's *name* (None = worker default), matching the initargs.
    epoch = SweepEpoch(
        kind="verify-two-sort",
        circuit_name=circuit.name,
        circuit_hash=circuit.content_hash(),
        width=width,
        backend=backend,
    )
    plain = (
        on_shard is None and should_stop is None
        and cache is None and store is None and not regions
    )
    if plain:
        # The zero-overhead path: bit-for-bit the pre-service behaviour.
        tasks = [(width, g_lo, g_hi) for g_lo, g_hi in shards]
        results = run_sharded(
            _verify_shard_worker,
            tasks,
            jobs=jobs,
            executor=executor,
            initializer=_init_verify_worker,
            initargs=(circuit, backend),
            epoch=epoch,
        )
        return VerificationResult.merge(results)

    backend_name = get_backend(effective_backend).name
    circuit_hash = epoch.circuit_hash
    # `store` and `cache` are one seam with two granularities: `store`
    # wins when both are given, and by default switches the sweep to
    # per-region keys.
    handle = store if store is not None else cache
    region_mode = regions if regions is not None else store is not None
    # Stores that journal sweeps (the journal backend) take the epoch
    # descriptor up front, so the journal is self-describing even if
    # the run dies before any shard completes.
    if handle is not None and hasattr(handle, "record_epoch"):
        handle.record_epoch(epoch, shards=total, shard_size=shard_size)

    if region_mode:
        merged = _run_region_sweep(
            circuit, width, shards, jobs, executor, backend, backend_name,
            circuit_hash, effective_backend, handle, on_shard, should_stop,
            epoch,
        )
    else:
        merged = _run_circuit_sweep(
            circuit, width, shards, jobs, executor, backend, backend_name,
            circuit_hash, handle, on_shard, should_stop, epoch,
        )

    if handle is not None and hasattr(handle, "record_run"):
        handle.record_run(RunRecord(
            circuit=circuit.name,
            circuit_hash=circuit_hash,
            backend=backend_name,
            executor=executor or ("process" if jobs > 1 else "serial"),
            width=width,
            shards=total,
            checked=merged.checked,
            failure_count=merged.failure_count,
            ok=merged.failure_count == 0,
            result_digest=result_digest(merged),
            mode="regions" if region_mode else "shards",
            host=socket.gethostname(),
            pid=os.getpid(),
            timestamp=time.time(),
        ))
    return merged


def _run_circuit_sweep(
    circuit: Circuit,
    width: int,
    shards: List[Tuple[int, int]],
    jobs: int,
    executor: Optional[str],
    backend: BackendLike,
    backend_name: str,
    circuit_hash: str,
    cache: Optional[Any],
    on_shard: Optional[OnShard],
    should_stop: Optional[ShouldStop],
    epoch: SweepEpoch,
) -> VerificationResult:
    """Circuit-granularity sweep: one key per whole-circuit shard."""
    total = len(shards)

    def shard_key(index: int) -> Tuple:
        g_lo, g_hi = shards[index]
        return (
            circuit.name, circuit_hash, backend_name, width, g_lo, g_hi
        )

    results: List[Optional[VerificationResult]] = [None] * total
    pending: List[int] = []
    for i in range(total):
        hit = cache.get(shard_key(i)) if cache is not None else None
        if hit is not None:
            results[i] = hit
        else:
            pending.append(i)

    done = 0
    # Cached shards report first (ascending shard order), then fresh
    # ones as the executor completes them -- `done` stays strictly
    # increasing either way.
    for i in range(total):
        if results[i] is None:
            continue
        if should_stop is not None and should_stop():
            raise SweepCancelled([r for r in results[:i] if r is not None])
        done += 1
        if on_shard is not None:
            on_shard(done, total, results[i])

    def _record(k: int, result: VerificationResult) -> None:
        nonlocal done
        i = pending[k]
        results[i] = result
        if cache is not None:
            cache.put(shard_key(i), result)
        done += 1
        if on_shard is not None:
            on_shard(done, total, result)

    if pending:
        tasks = [(width,) + shards[i] for i in pending]
        run_sharded(
            _verify_shard_worker,
            tasks,
            jobs=jobs,
            executor=executor,
            initializer=_init_verify_worker,
            initargs=(circuit, backend),
            on_result=_record,
            should_stop=should_stop,
            epoch=epoch,
        )
    return VerificationResult.merge(results)


def _run_region_sweep(
    circuit: Circuit,
    width: int,
    shards: List[Tuple[int, int]],
    jobs: int,
    executor: Optional[str],
    backend: BackendLike,
    backend_name: str,
    circuit_hash: str,
    effective_backend: BackendLike,
    store: Optional[Any],
    on_shard: Optional[OnShard],
    should_stop: Optional[ShouldStop],
    epoch: SweepEpoch,
) -> VerificationResult:
    """Region-granularity sweep: one key per output cone per g-range.

    Every primary-output cone is verified independently over every
    g-row range; the store is consulted per ``(cone, range)`` so an
    edit only misses on the cones whose region digest changed.  Clean
    ranges (every cone matches everywhere) merge as synthetic all-clear
    counts; a range with any cone mismatch is re-verified through the
    canonical full-circuit shard (cached at circuit granularity), so
    failure messages -- and therefore the merged report -- stay
    byte-identical to an uncached sweep.
    """
    total = len(shards)
    region_hashes = circuit.region_hashes()
    n_out = len(region_hashes)
    S = (1 << (width + 1)) - 1

    region_results: List[List[Optional[Dict[str, int]]]] = [
        [None] * n_out for _ in range(total)
    ]
    pending: List[Tuple[int, int]] = []
    for i in range(total):
        g_lo, g_hi = shards[i]
        for o in range(n_out):
            key = _region_key(
                circuit.name, region_hashes[o], backend_name, width,
                o, g_lo, g_hi,
            )
            hit = store.get(key) if store is not None else None
            if hit is not None:
                region_results[i][o] = hit
            else:
                pending.append((i, o))

    full_program = None

    def _resolve(i: int) -> VerificationResult:
        """Collapse one range's per-cone outcomes into a shard result."""
        nonlocal full_program
        g_lo, g_hi = shards[i]
        if all(v["mismatches"] == 0 for v in region_results[i]):
            return VerificationResult(checked=(g_hi - g_lo) * S)
        # A cone mismatched somewhere in this range: produce the
        # canonical per-pair failure messages via the full-circuit
        # shard (stored under the historical circuit-granularity key).
        ckey = (circuit.name, circuit_hash, backend_name, width, g_lo, g_hi)
        hit = store.get(ckey) if store is not None else None
        if hit is not None:
            return hit
        if full_program is None:
            full_program = compile_circuit(
                circuit, get_backend(effective_backend)
            )
        result = verify_two_sort_shard(full_program, width, g_lo, g_hi)
        if store is not None:
            store.put(ckey, result)
        return result

    results: List[Optional[VerificationResult]] = [None] * total
    done = 0
    for i in range(total):
        if any(v is None for v in region_results[i]):
            continue
        if should_stop is not None and should_stop():
            raise SweepCancelled([r for r in results[:i] if r is not None])
        results[i] = _resolve(i)
        done += 1
        if on_shard is not None:
            on_shard(done, total, results[i])

    if pending:
        remaining: Dict[int, int] = {}
        for i, _o in pending:
            remaining[i] = remaining.get(i, 0) + 1
        share = (
            store.share_spec()
            if store is not None and hasattr(store, "share_spec")
            else None
        )
        tasks = [(width, o) + shards[i] for i, o in pending]

        def _record(k: int, value: Dict[str, int]) -> None:
            nonlocal done
            i, o = pending[k]
            region_results[i][o] = value
            if store is not None:
                g_lo, g_hi = shards[i]
                # Idempotent for workers that already wrote through a
                # shared handle (first write wins everywhere); local
                # (non-shareable) stores learn the value here.
                store.put(
                    _region_key(
                        circuit.name, region_hashes[o], backend_name,
                        width, o, g_lo, g_hi,
                    ),
                    value,
                )
            remaining[i] -= 1
            if remaining[i] == 0:
                # Tasks are range-major and executors are ordered, so
                # ranges complete ascending -- `done` stays monotonic.
                results[i] = _resolve(i)
                done += 1
                if on_shard is not None:
                    on_shard(done, total, results[i])

        run_sharded(
            _verify_region_worker,
            tasks,
            jobs=jobs,
            executor=executor,
            initializer=_init_verify_worker,
            initargs=(circuit, backend, share),
            on_result=_record,
            should_stop=should_stop,
            epoch=epoch,
        )
    return VerificationResult.merge(results)
