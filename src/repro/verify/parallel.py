"""Sharded parallel verification across a pluggable executor registry.

The bit-parallel engine (:mod:`repro.circuits.compiled`) made a single
process sweep the ``|S^B_rg|^2`` pair domain ~3000x faster, but one
core is still the ceiling: at B = 13 the domain is 268M pairs.  The
plane-space construction is embarrassingly parallel, though -- each
g-row block of the pair product (:func:`repro.verify.exhaustive.pair_shards`)
is an independent unit of work whose
:class:`~repro.verify.exhaustive.VerificationResult` merges
deterministically with the others.  This module dispatches those shards
across worker processes.

**Executor registry.**  An executor is a strategy for running a worker
function over a task list::

    executor(worker, tasks, jobs=..., initializer=..., initargs=...)
        -> [worker(t) for t in tasks]      # results in task order

Two executors ship by default:

* ``"serial"``  -- in-process loop; the semantic reference and the
  zero-overhead path for one job,
* ``"process"`` -- a ``multiprocessing`` pool; the initializer runs once
  per worker (compiling the circuit there, so the netlist is pickled
  once and the program is reused across that worker's shards).

:func:`register_executor` is the backend hook, exactly like the engine
registry in :mod:`repro.networks.simulate`.  The ``"array"`` executor
uses it: an in-process executor that pins the ``array`` plane backend
(:mod:`repro.backends`) for its tasks, so ``--jobs 1 --backend array``
semantics are reachable purely by executor name, with no caller
changes.  Orthogonally, every sharded entry point takes a ``backend``
argument that the pool initializers forward to workers **by name**, so
any executor can run any plane representation (process pools pickle
the name, never the backend object).

**Determinism.**  Executors must return results in task order; callers
merge with :meth:`VerificationResult.merge` (or plain concatenation for
batch workloads), so the outcome is bit-identical for any job count --
``--jobs N`` changes wall-clock time, never the report.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..backends import PlaneBackend, get_backend, use_backend
from ..circuits.compiled import BackendLike, compile_circuit
from ..circuits.netlist import Circuit
from .exhaustive import (
    _MAX_SHARD_LANES,
    VerificationResult,
    check_two_sort_shape,
    pair_shards,
    verify_two_sort_shard,
)

__all__ = [
    "available_executors",
    "default_jobs",
    "plan_shards",
    "register_executor",
    "run_sharded",
    "verify_two_sort_sharded",
]

#: Worker signature: one picklable task in, one picklable result out.
Worker = Callable[[Any], Any]
#: Executor signature (see module docstring).
Executor = Callable[..., List[Any]]

_EXECUTORS: Dict[str, Executor] = {}


def register_executor(name: str, executor: Executor) -> None:
    """Register (or replace) an execution backend under ``name``."""
    _EXECUTORS[name] = executor


def available_executors() -> List[str]:
    return sorted(_EXECUTORS)


def default_jobs() -> int:
    """Worker count when the caller does not pin one (all cores)."""
    return os.cpu_count() or 1


def plan_shards(total: int, shard_size: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``[lo, hi)`` blocks of ``shard_size``.

    The generic index-space twin of
    :func:`repro.verify.exhaustive.pair_shards`: disjoint, exactly
    covering, in ascending order -- so concatenating per-shard results
    reproduces the unsharded output.
    """
    if total <= 0:
        return []
    size = max(1, shard_size)
    return [(lo, min(total, lo + size)) for lo in range(0, total, size)]


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
def _serial_executor(
    worker: Worker,
    tasks: Sequence[Any],
    jobs: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> List[Any]:
    """Run every task in this process (reference implementation)."""
    if initializer is not None:
        initializer(*initargs)
    return [worker(task) for task in tasks]


def _process_executor(
    worker: Worker,
    tasks: Sequence[Any],
    jobs: int,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> List[Any]:
    """Fan tasks out over a ``multiprocessing`` pool, order-preserving.

    A pool is spawned even for ``jobs=1`` -- callers asked for process
    isolation by name, and benchmarks need the honest single-worker
    pool overhead, not a silent serial fallback.
    """
    if not tasks:
        return []
    jobs = min(max(1, jobs), len(tasks))
    ctx = multiprocessing.get_context()
    with ctx.Pool(
        processes=jobs, initializer=initializer, initargs=initargs
    ) as pool:
        # chunksize=1: shards are coarse already; keep scheduling greedy.
        return pool.map(worker, tasks, chunksize=1)


def _array_executor(
    worker: Worker,
    tasks: Sequence[Any],
    jobs: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> List[Any]:
    """In-process executor pinned to the ``array`` plane backend.

    The ROADMAP's registry hook made concrete: selecting
    ``executor="array"`` runs the serial loop with the process-default
    plane backend scoped to ``"array"``, so initializers that compile
    with the default backend pick up numpy/word-array planes without
    any caller passing a backend around.  An explicit ``backend=``
    argument on the caller still wins (it reaches the initializer as a
    name and overrides the scoped default).
    """
    with use_backend("array"):
        return _serial_executor(worker, tasks, jobs, initializer, initargs)


register_executor("serial", _serial_executor)
register_executor("process", _process_executor)
register_executor("array", _array_executor)


def run_sharded(
    worker: Worker,
    tasks: Sequence[Any],
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> List[Any]:
    """Run ``worker`` over ``tasks`` on a registered executor.

    ``jobs=None`` or ``0`` means every core; ``executor=None`` picks
    ``"process"`` for more than one job and ``"serial"`` otherwise.
    Results come back in task order regardless of backend, which is
    what makes sharded sweeps deterministic.
    """
    tasks = list(tasks)
    jobs = default_jobs() if not jobs else max(1, jobs)
    name = executor or ("process" if jobs > 1 else "serial")
    try:
        run = _EXECUTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown executor {name!r}; available: {available_executors()}"
        ) from None
    return run(worker, tasks, jobs=jobs, initializer=initializer, initargs=initargs)


# ----------------------------------------------------------------------
# Sharded exhaustive two-sort verification
# ----------------------------------------------------------------------
#: Per-process state installed by the pool initializer (the compiled
#: program is built once per worker, not once per shard).
_VERIFY_STATE: Dict[str, Any] = {}


def _init_verify_worker(
    circuit: Circuit, backend: BackendLike = None
) -> None:
    # `backend` arrives as a registry name (or None for the executor /
    # process default) so the initargs stay picklable for pool workers.
    _VERIFY_STATE["program"] = compile_circuit(circuit, get_backend(backend))


def _verify_shard_worker(task: Tuple[int, int, int]) -> VerificationResult:
    width, g_lo, g_hi = task
    return verify_two_sort_shard(_VERIFY_STATE["program"], width, g_lo, g_hi)


def _default_pair_shard_size(
    width: int, jobs: int, backend: BackendLike = None
) -> int:
    """Lane budget per shard, balanced for the width and plane backend.

    Three forces, in order:

    * **load balance** -- ~4 shards per worker, but never above the
      backend's preferred per-shard lane count (big-int planes want the
      slot file cache-resident; word-array planes want enough words per
      op to amortize call overhead);
    * **plane-construction/run split at B = 10..13** -- a g-row of the
      pair product is ``S = 2^(B+1)-1`` lanes, and building its planes
      costs O(width * S) big-int block work *per row* while the program
      run costs O(ops * lanes).  Once ``S`` is a sizable fraction of
      the lane budget (B >= 10), fractional-row remainders would leave
      shards whose construction/run ratio differs wildly, so the budget
      is spent on a whole number of g-rows per shard;
    * **word alignment** -- the result is rounded up to the backend's
      preferred lane-word size so no shard ends mid-word.

    Deterministic (pinned by ``tests/test_backends.py``) and capped at
    the hard :data:`~repro.verify.exhaustive._MAX_SHARD_LANES` bound.
    """
    be = get_backend(backend)
    S = (1 << (width + 1)) - 1
    budget = be.preferred_shard_lanes
    per_worker = -(-S * S // max(1, 4 * jobs))  # ceil
    size = min(budget, max(S, per_worker))
    if width >= 10:
        size = max(1, budget // S) * S  # whole g-rows per shard
    word = max(1, be.word_bits)
    return min(_MAX_SHARD_LANES, -(-size // word) * word)


def verify_two_sort_sharded(
    circuit: Circuit,
    width: int,
    jobs: Optional[int] = None,
    shard_size: Optional[int] = None,
    executor: Optional[str] = None,
    backend: BackendLike = None,
) -> VerificationResult:
    """Exhaustively verify a 2-sort circuit with sharded execution.

    Splits the ``|S^B_rg|^2`` pair domain into lane-block shards
    (:func:`~repro.verify.exhaustive.pair_shards`), dispatches them on
    the chosen executor, and merges the per-shard results in shard
    order.  For any ``jobs``/``shard_size``/``executor``/``backend``
    the returned :class:`VerificationResult` counts are identical to the
    single-process :func:`~repro.verify.exhaustive.verify_two_sort_circuit`.
    ``jobs=None`` or ``0`` means one worker per core; ``backend`` names
    a plane backend (:mod:`repro.backends`) and is forwarded to every
    worker through the pool initializer (by name, so it pickles).
    """
    check_two_sort_shape(circuit, width)
    jobs = default_jobs() if not jobs else max(1, jobs)
    if isinstance(backend, PlaneBackend):
        backend = backend.name
    if shard_size is None:
        # The executor may scope a different default backend ("array"),
        # in which case the explicit-backend resolution here still
        # matches what workers compile: None resolves identically in
        # both places only for in-process executors, so size by the
        # effective backend name.
        size_backend = backend if backend is not None else (
            "array" if executor == "array" else None
        )
        shard_size = _default_pair_shard_size(width, jobs, size_backend)
    tasks = [
        (width, g_lo, g_hi) for g_lo, g_hi in pair_shards(width, shard_size)
    ]
    results = run_sharded(
        _verify_shard_worker,
        tasks,
        jobs=jobs,
        executor=executor,
        initializer=_init_verify_worker,
        initargs=(circuit, backend),
    )
    return VerificationResult.merge(results)
