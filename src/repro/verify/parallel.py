"""Sharded parallel verification across a pluggable executor registry.

The bit-parallel engine (:mod:`repro.circuits.compiled`) made a single
process sweep the ``|S^B_rg|^2`` pair domain ~3000x faster, but one
core is still the ceiling: at B = 13 the domain is 268M pairs.  The
plane-space construction is embarrassingly parallel, though -- each
g-row block of the pair product (:func:`repro.verify.exhaustive.pair_shards`)
is an independent unit of work whose
:class:`~repro.verify.exhaustive.VerificationResult` merges
deterministically with the others.  This module dispatches those shards
across worker processes.

**Executor registry.**  An executor is a strategy for running a worker
function over a task list::

    executor(worker, tasks, jobs=..., initializer=..., initargs=...)
        -> [worker(t) for t in tasks]      # results in task order

Two executors ship by default:

* ``"serial"``  -- in-process loop; the semantic reference and the
  zero-overhead path for one job,
* ``"process"`` -- a ``multiprocessing`` pool; the initializer runs once
  per worker (compiling the circuit there, so the netlist is pickled
  once and the program is reused across that worker's shards).

:func:`register_executor` is the backend hook: future plane backends
(numpy/array planes, an async service fan-out) plug in under a new name
without touching the callers, exactly like the engine registry in
:mod:`repro.networks.simulate`.

**Determinism.**  Executors must return results in task order; callers
merge with :meth:`VerificationResult.merge` (or plain concatenation for
batch workloads), so the outcome is bit-identical for any job count --
``--jobs N`` changes wall-clock time, never the report.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..circuits.compiled import compile_circuit
from ..circuits.netlist import Circuit
from .exhaustive import (
    _MAX_LANES,
    VerificationResult,
    check_two_sort_shape,
    pair_shards,
    verify_two_sort_shard,
)

__all__ = [
    "available_executors",
    "default_jobs",
    "plan_shards",
    "register_executor",
    "run_sharded",
    "verify_two_sort_sharded",
]

#: Worker signature: one picklable task in, one picklable result out.
Worker = Callable[[Any], Any]
#: Executor signature (see module docstring).
Executor = Callable[..., List[Any]]

_EXECUTORS: Dict[str, Executor] = {}


def register_executor(name: str, executor: Executor) -> None:
    """Register (or replace) an execution backend under ``name``."""
    _EXECUTORS[name] = executor


def available_executors() -> List[str]:
    return sorted(_EXECUTORS)


def default_jobs() -> int:
    """Worker count when the caller does not pin one (all cores)."""
    return os.cpu_count() or 1


def plan_shards(total: int, shard_size: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``[lo, hi)`` blocks of ``shard_size``.

    The generic index-space twin of
    :func:`repro.verify.exhaustive.pair_shards`: disjoint, exactly
    covering, in ascending order -- so concatenating per-shard results
    reproduces the unsharded output.
    """
    if total <= 0:
        return []
    size = max(1, shard_size)
    return [(lo, min(total, lo + size)) for lo in range(0, total, size)]


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
def _serial_executor(
    worker: Worker,
    tasks: Sequence[Any],
    jobs: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> List[Any]:
    """Run every task in this process (reference implementation)."""
    if initializer is not None:
        initializer(*initargs)
    return [worker(task) for task in tasks]


def _process_executor(
    worker: Worker,
    tasks: Sequence[Any],
    jobs: int,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> List[Any]:
    """Fan tasks out over a ``multiprocessing`` pool, order-preserving.

    A pool is spawned even for ``jobs=1`` -- callers asked for process
    isolation by name, and benchmarks need the honest single-worker
    pool overhead, not a silent serial fallback.
    """
    if not tasks:
        return []
    jobs = min(max(1, jobs), len(tasks))
    ctx = multiprocessing.get_context()
    with ctx.Pool(
        processes=jobs, initializer=initializer, initargs=initargs
    ) as pool:
        # chunksize=1: shards are coarse already; keep scheduling greedy.
        return pool.map(worker, tasks, chunksize=1)


register_executor("serial", _serial_executor)
register_executor("process", _process_executor)


def run_sharded(
    worker: Worker,
    tasks: Sequence[Any],
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> List[Any]:
    """Run ``worker`` over ``tasks`` on a registered executor.

    ``jobs=None`` or ``0`` means every core; ``executor=None`` picks
    ``"process"`` for more than one job and ``"serial"`` otherwise.
    Results come back in task order regardless of backend, which is
    what makes sharded sweeps deterministic.
    """
    tasks = list(tasks)
    jobs = default_jobs() if not jobs else max(1, jobs)
    name = executor or ("process" if jobs > 1 else "serial")
    try:
        run = _EXECUTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown executor {name!r}; available: {available_executors()}"
        ) from None
    return run(worker, tasks, jobs=jobs, initializer=initializer, initargs=initargs)


# ----------------------------------------------------------------------
# Sharded exhaustive two-sort verification
# ----------------------------------------------------------------------
#: Per-process state installed by the pool initializer (the compiled
#: program is built once per worker, not once per shard).
_VERIFY_STATE: Dict[str, Any] = {}


def _init_verify_worker(circuit: Circuit) -> None:
    _VERIFY_STATE["program"] = compile_circuit(circuit)


def _verify_shard_worker(task: Tuple[int, int, int]) -> VerificationResult:
    width, g_lo, g_hi = task
    return verify_two_sort_shard(_VERIFY_STATE["program"], width, g_lo, g_hi)


def _default_pair_shard_size(width: int, jobs: int) -> int:
    """Lane budget per shard: ~4 shards per worker for load balance,
    but never above the single-process chunk cap (plane-integer size)."""
    S = (1 << (width + 1)) - 1
    per_worker = -(-S * S // max(1, 4 * jobs))  # ceil
    return min(_MAX_LANES, max(S, per_worker))


def verify_two_sort_sharded(
    circuit: Circuit,
    width: int,
    jobs: Optional[int] = None,
    shard_size: Optional[int] = None,
    executor: Optional[str] = None,
) -> VerificationResult:
    """Exhaustively verify a 2-sort circuit with sharded execution.

    Splits the ``|S^B_rg|^2`` pair domain into lane-block shards
    (:func:`~repro.verify.exhaustive.pair_shards`), dispatches them on
    the chosen executor, and merges the per-shard results in shard
    order.  For any ``jobs``/``shard_size``/``executor`` the returned
    :class:`VerificationResult` counts are identical to the
    single-process :func:`~repro.verify.exhaustive.verify_two_sort_circuit`.
    ``jobs=None`` or ``0`` means one worker per core.
    """
    check_two_sort_shape(circuit, width)
    jobs = default_jobs() if not jobs else max(1, jobs)
    if shard_size is None:
        shard_size = _default_pair_shard_size(width, jobs)
    tasks = [
        (width, g_lo, g_hi) for g_lo, g_hi in pair_shards(width, shard_size)
    ]
    results = run_sharded(
        _verify_shard_worker,
        tasks,
        jobs=jobs,
        executor=executor,
        initializer=_init_verify_worker,
        initargs=(circuit,),
    )
    return VerificationResult.merge(results)
