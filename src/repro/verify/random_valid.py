"""Random generation of valid strings and measurement workloads.

Valid strings model time-to-digital-converter readings (paper Section 2,
citing [7]): a measurement of an analog quantity that may be "caught
mid-transition", leaving the transition bit metastable.  The generators
here produce single strings, pairs, and whole measurement vectors with a
configurable metastability rate, seeded for reproducibility -- the
workload source for simulation benches and the examples.

:func:`verify_random_pairs` complements the exhaustive sweeps of
:mod:`repro.verify.exhaustive` at widths where ``|S^B_rg|^2`` is out of
reach: it samples valid pairs and checks a gate-level 2-sort against
the Table 2 order spec, evaluating the whole sample as **one**
bit-parallel batch (:mod:`repro.circuits.compiled`).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..circuits.compiled import compile_circuit
from ..circuits.netlist import Circuit
from ..graycode.ops import two_sort_order
from ..graycode.valid import count_valid_strings, from_rank, make_valid
from ..ternary.word import Word
from .exhaustive import VerificationResult, check_two_sort_shape


class ValidStringSource:
    """Seeded generator of valid strings of a fixed width."""

    def __init__(self, width: int, meta_rate: float = 0.5, seed: int = 0):
        if not 0.0 <= meta_rate <= 1.0:
            raise ValueError("meta_rate must be in [0, 1]")
        self.width = width
        self.meta_rate = meta_rate
        self._rng = random.Random(seed)

    def sample(self) -> Word:
        """One valid string; metastable with probability ``meta_rate``."""
        n_values = 1 << self.width
        if self._rng.random() < self.meta_rate and n_values > 1:
            x = self._rng.randrange(n_values - 1)
            return make_valid(x, self.width, metastable=True)
        return make_valid(self._rng.randrange(n_values), self.width)

    def sample_pair(self) -> Tuple[Word, Word]:
        """An independent pair (the 2-sort input distribution)."""
        return (self.sample(), self.sample())

    def sample_vector(self, channels: int) -> List[Word]:
        """A measurement vector for an n-channel sorting network."""
        return [self.sample() for _ in range(channels)]

    def sample_uniform_rank(self) -> Word:
        """Uniform over *all* valid strings (stable and superposed alike)."""
        return from_rank(
            self._rng.randrange(count_valid_strings(self.width)), self.width
        )


def verify_random_pairs(
    circuit: Circuit,
    width: int,
    pairs: int,
    meta_rate: float = 0.5,
    seed: int = 0,
) -> VerificationResult:
    """Spot-check a 2-sort circuit on ``pairs`` random valid pairs.

    All sampled pairs are evaluated as a single compiled batch; each
    output is compared against the total-order ``(max, min)`` (equal to
    the ``max_rg_M``/``min_rg_M`` closure on valid strings).  Seeded for
    reproducibility.
    """
    check_two_sort_shape(circuit, width)
    source = ValidStringSource(width, meta_rate=meta_rate, seed=seed)
    sample = [source.sample_pair() for _ in range(pairs)]
    program = compile_circuit(circuit)
    outputs = program.evaluate_batch([list(g) + list(h) for g, h in sample])
    result = VerificationResult()
    for (g, h), out in zip(sample, outputs):
        result.checked += 1
        got = (out[:width], out[width:])
        want = two_sort_order(g, h)
        if got != want:
            result.record(
                f"({g}, {h}): got {got[0]}/{got[1]}, "
                f"want {want[0]}/{want[1]}"
            )
    return result


def measurement_sweep(
    width: int,
    channels: int,
    vectors: int,
    meta_rate: float = 0.5,
    seed: int = 0,
) -> List[List[Word]]:
    """A reproducible batch of measurement vectors (bench workloads)."""
    source = ValidStringSource(width, meta_rate=meta_rate, seed=seed)
    return [source.sample_vector(channels) for _ in range(vectors)]
