"""Behavioural ``max_rg_M`` / ``min_rg_M`` on valid strings (Definition 2.8).

Two equivalent characterisations are implemented:

* :func:`max_rg_closure` / :func:`min_rg_closure` -- the metastable
  closure per Definition 2.7: resolve all Ms, apply the stable max/min,
  superpose the results.  This is the *specification*.
* :func:`max_rg_order` / :func:`min_rg_order` -- lattice max/min with
  respect to the total order on valid strings (Table 2), via
  :func:`repro.graycode.valid.rank`.

The paper (and [2]) proves these agree on valid strings; the test suite
checks the agreement exhaustively.  The closure version additionally
works on *arbitrary* ``{0,1,M}`` words, which the verifier uses to show
what non-containing designs do wrong.
"""

from __future__ import annotations

from typing import Tuple

from ..ternary.resolution import metastable_closure_multi
from ..ternary.word import Word
from .rgc import two_sort_stable
from .valid import rank, from_rank, validate

_two_sort_closed = metastable_closure_multi(two_sort_stable, arity_out=2)


def two_sort_closure(g: Word, h: Word) -> Tuple[Word, Word]:
    """``(max_rg_M{g,h}, min_rg_M{g,h})`` via Definition 2.7 (specification).

    Accepts arbitrary ``{0,1,M}`` words whose resolutions are codewords;
    for valid strings this is the 2-sort(B) functionality of
    Definition 2.8.
    """
    if len(g) != len(h):
        raise ValueError("width mismatch")
    return _two_sort_closed(g, h)


def max_rg_closure(g: Word, h: Word) -> Word:
    """``max_rg_M{g, h}`` -- closure form."""
    return two_sort_closure(g, h)[0]


def min_rg_closure(g: Word, h: Word) -> Word:
    """``min_rg_M{g, h}`` -- closure form."""
    return two_sort_closure(g, h)[1]


def max_rg_order(g: Word, h: Word) -> Word:
    """Order-theoretic max over the total order on valid strings."""
    return g if rank(validate(g)) >= rank(validate(h)) else h


def min_rg_order(g: Word, h: Word) -> Word:
    """Order-theoretic min over the total order on valid strings."""
    return g if rank(validate(g)) <= rank(validate(h)) else h


def two_sort_order(g: Word, h: Word) -> Tuple[Word, Word]:
    """(max, min) of two valid strings using the Table 2 order."""
    if rank(validate(g)) >= rank(validate(h)):
        return (g, h)
    return (h, g)


def compare_valid(g: Word, h: Word) -> int:
    """Three-way comparison of valid strings: -1, 0, or +1."""
    rg, rh = rank(validate(g)), rank(validate(h))
    return (rg > rh) - (rg < rh)
