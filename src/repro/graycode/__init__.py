"""Binary reflected Gray code, valid strings, and ordered max/min.

Implements Section 2 and Section 3 preliminaries of the paper: the code
``rg_B`` itself (Table 1), the valid-string input domain ``S^B_rg`` with
its total order (Table 2), and the behavioural specification of the
2-sort primitive (Definition 2.8).
"""

from .rgc import (
    all_codewords,
    first_difference,
    gray_decode,
    gray_encode,
    gray_encode_recursive,
    lemma_3_2_predicts,
    max_rg,
    min_rg,
    parity,
    successor_differs_at,
    two_sort_stable,
)
from .valid import (
    InvalidStringError,
    all_valid_strings,
    count_valid_strings,
    from_rank,
    is_valid,
    make_valid,
    rank,
    try_rank,
    validate,
    value_interval,
)
from .ops import (
    compare_valid,
    max_rg_closure,
    max_rg_order,
    min_rg_closure,
    min_rg_order,
    two_sort_closure,
    two_sort_order,
)

__all__ = [
    "all_codewords",
    "first_difference",
    "gray_decode",
    "gray_encode",
    "gray_encode_recursive",
    "lemma_3_2_predicts",
    "max_rg",
    "min_rg",
    "parity",
    "successor_differs_at",
    "two_sort_stable",
    "InvalidStringError",
    "all_valid_strings",
    "count_valid_strings",
    "from_rank",
    "is_valid",
    "make_valid",
    "rank",
    "try_rank",
    "validate",
    "value_interval",
    "compare_valid",
    "max_rg_closure",
    "max_rg_order",
    "min_rg_closure",
    "min_rg_order",
    "two_sort_closure",
    "two_sort_order",
]
