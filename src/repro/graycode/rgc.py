"""Binary reflected Gray code: encoding, decoding, structural lemmas.

The paper sorts Gray-code-encoded measurements because Gray code limits
the damage a single metastable bit can do: adjacent codewords differ in
exactly one position, so an ``M`` in that position encodes precisely the
uncertainty "x or x+1" (Section 2, Table 1).

We implement the recursive definition

    rg_1(0) = 0,   rg_1(1) = 1
    rg_B(x) = 0 . rg_{B-1}(x)                 for x in [2^{B-1}]
    rg_B(x) = 1 . rg_{B-1}(2^B - 1 - x)       otherwise

together with the standard O(B) bit-twiddling shortcuts, a decoder, and
the helper facts used by the correctness proofs (Lemma 3.2,
Observation 3.1).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from ..ternary.trit import Trit
from ..ternary.word import Word


def gray_encode(x: int, width: int) -> Word:
    """``rg_B(x)``: encode ``x`` into ``width``-bit reflected Gray code.

    >>> str(gray_encode(7, 4))
    '0100'
    """
    if width < 1:
        raise ValueError("Gray code width must be >= 1")
    if x < 0 or x >= (1 << width):
        raise ValueError(f"value {x} out of range for {width}-bit Gray code")
    gray = x ^ (x >> 1)
    return Word((gray >> (width - 1 - i)) & 1 for i in range(width))


def gray_decode(g: Word) -> int:
    """``<g>``: decode a *stable* Gray codeword to its integer value.

    Inverse of :func:`gray_encode`; raises ``ValueError`` if ``g``
    contains a metastable bit (use :mod:`repro.graycode.valid` for those).

    >>> gray_decode(gray_encode(13, 4))
    13
    """
    value = 0
    acc = 0
    for t in g:
        acc ^= t.to_int()
        value = (value << 1) | acc
    return value


def gray_encode_recursive(x: int, width: int) -> Word:
    """Reference implementation following the paper's recursion verbatim.

    Exists so tests can check the fast encoder against the definition.
    """
    if width < 1:
        raise ValueError("Gray code width must be >= 1")
    if x < 0 or x >= (1 << width):
        raise ValueError(f"value {x} out of range for {width}-bit Gray code")
    if width == 1:
        return Word([x])
    half = 1 << (width - 1)
    if x < half:
        return Word([0]).concat(gray_encode_recursive(x, width - 1))
    return Word([1]).concat(gray_encode_recursive((1 << width) - 1 - x, width - 1))


@lru_cache(maxsize=None)
def all_codewords(width: int) -> Tuple[Word, ...]:
    """All ``2**width`` codewords in ascending order of encoded value.

    Cached per width (immutable tuple): the enumeration is pure and
    reused by sweeps, tables, and workload generators.
    """
    return tuple(gray_encode(x, width) for x in range(1 << width))


def parity(g: Word) -> int:
    """``par(g)`` for a stable word: sum of bits mod 2.

    For reflected Gray code, ``par(rg_B(x)) = x mod 2`` -- the code flips
    exactly one bit per increment.
    """
    return sum(t.to_int() for t in g) % 2


def successor_differs_at(x: int, width: int) -> int:
    """1-based index of the single bit where ``rg(x)`` and ``rg(x+1)`` differ.

    The transition bit drives the definition of valid strings: the unique
    position that may be metastable while a measurement settles between
    ``x`` and ``x+1``.
    """
    if x < 0 or x + 1 >= (1 << width):
        raise ValueError(f"no successor of {x} in {width}-bit code")
    g0 = gray_encode(x, width)
    g1 = gray_encode(x + 1, width)
    diff = [i for i in range(width) if g0[i] is not g1[i]]
    if len(diff) != 1:  # pragma: no cover - defends the Gray property
        raise AssertionError("adjacent Gray codewords must differ in one bit")
    return diff[0] + 1


def first_difference(g: Word, h: Word) -> int:
    """1-based index of the first differing bit; 0 if the words are equal.

    Both words must be stable and of equal width.  This is the index
    ``i`` of Lemma 3.2.
    """
    if len(g) != len(h):
        raise ValueError("width mismatch")
    for i, (a, b) in enumerate(zip(g, h)):
        if a is not b:
            return i + 1
    return 0


def lemma_3_2_predicts(g: Word, h: Word) -> int:
    """Apply Lemma 3.2 to decide the comparison of stable codewords.

    Returns +1 if ``<g> > <h>``, -1 if smaller, 0 if equal -- computed
    *only* from the first differing bit and the prefix parity, never by
    decoding.  Used to cross-check the decoder and the FSM.
    """
    i = first_difference(g, h)
    if i == 0:
        return 0
    prefix_parity = parity(g.substring(1, i - 1)) if i > 1 else 0
    gi = g.bit(i).to_int()
    if prefix_parity == 0:
        return 1 if gi == 1 else -1
    return 1 if gi == 0 else -1


def max_rg(g: Word, h: Word) -> Word:
    """``max_rg{g, h}`` on stable codewords (Section 2)."""
    return g if gray_decode(g) >= gray_decode(h) else h


def min_rg(g: Word, h: Word) -> Word:
    """``min_rg{g, h}`` on stable codewords (Section 2)."""
    return g if gray_decode(g) <= gray_decode(h) else h


def two_sort_stable(g: Word, h: Word):
    """(max, min) of two stable codewords -- the Boolean 2-sort spec."""
    if gray_decode(g) >= gray_decode(h):
        return (g, h)
    return (h, g)
