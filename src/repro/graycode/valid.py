"""Valid strings ``S^B_rg`` and their total order (Definition 2.3, Table 2).

A valid string is either a Gray codeword ``rg(x)`` or the superposition
``rg(x) ∗ rg(x+1)`` of two adjacent codewords -- i.e., a codeword with
the unique transition bit replaced by ``M``.  Valid strings model the
possible outputs of a metastability-aware time-to-digital converter [7]:
at most one bit is "in flight" at any time.

The set carries a natural total order (Table 2):

    rg(0) < rg(0)∗rg(1) < rg(1) < rg(1)∗rg(2) < ... < rg(N-1)

under which ``max_rg_M`` / ``min_rg_M`` (the metastable closures of
max/min) are exactly the lattice max/min.  We expose the order through
:func:`rank`: stable ``rg(x)`` has rank ``2x``, the superposed
``rg(x)∗rg(x+1)`` has rank ``2x+1``, so ranks enumerate Table 2 rows.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

from ..ternary.trit import Trit
from ..ternary.word import Word
from .rgc import gray_decode, gray_encode


class InvalidStringError(ValueError):
    """Raised when a word is not a member of ``S^B_rg``."""


def make_valid(x: int, width: int, metastable: bool = False) -> Word:
    """Construct the valid string of value ``x`` (or ``x ∗ x+1``).

    With ``metastable=False`` this is plain ``rg(x)``; with
    ``metastable=True`` it is ``rg(x) ∗ rg(x+1)`` and requires
    ``x < 2**width - 1``.
    """
    if not metastable:
        return gray_encode(x, width)
    if x + 1 >= (1 << width):
        raise ValueError(
            f"no superposition rg({x})∗rg({x + 1}) in {width}-bit code"
        )
    return gray_encode(x, width).superpose(gray_encode(x + 1, width))


def from_rank(r: int, width: int) -> Word:
    """Inverse of :func:`rank`: the valid string with order-rank ``r``.

    Ranks run from 0 (``rg(0)``) to ``2**(width+1) - 2`` (``rg(N-1)``).
    """
    n_ranks = (1 << (width + 1)) - 1
    if not 0 <= r < n_ranks:
        raise ValueError(f"rank {r} out of range [0, {n_ranks})")
    return make_valid(r // 2, width, metastable=bool(r % 2))


def is_valid(w: Word) -> bool:
    """Membership test for ``S^B_rg``."""
    return try_rank(w) is not None


def try_rank(w: Word) -> Optional[int]:
    """Rank of ``w`` in the total order of Table 2, or None if invalid."""
    meta = w.metastable_positions()
    if len(meta) > 1:
        return None
    if not meta:
        return 2 * gray_decode(w)
    # Exactly one M: both resolutions must be codewords of adjacent value.
    pos = meta[0]
    lo = w.replace_bit(pos, 0)
    hi = w.replace_bit(pos, 1)
    a, b = gray_decode(lo), gray_decode(hi)
    if abs(a - b) != 1:
        return None
    return 2 * min(a, b) + 1


def rank(w: Word) -> int:
    """Rank of a valid string in the total order; raises if invalid.

    Stable ``rg(x)`` maps to ``2x``; ``rg(x)∗rg(x+1)`` maps to ``2x+1``.
    """
    r = try_rank(w)
    if r is None:
        raise InvalidStringError(f"{w!r} is not a valid string")
    return r


def value_interval(w: Word):
    """The closed integer interval of values ``w`` may represent.

    ``rg(x)`` yields ``(x, x)``; ``rg(x)∗rg(x+1)`` yields ``(x, x+1)``.
    """
    r = rank(w)
    if r % 2 == 0:
        return (r // 2, r // 2)
    return (r // 2, r // 2 + 1)


@lru_cache(maxsize=None)
def all_valid_strings(width: int) -> Tuple[Word, ...]:
    """All ``2**(width+1) - 1`` valid strings in ascending order.

    Enumerates Table 2 (for ``width == 4``) top-to-bottom through the
    interleaving stable / superposed pattern.  Cached per width (and
    returned as an immutable tuple) so exhaustive sweeps and workload
    generators never re-enumerate the valid domain.
    """
    return tuple(from_rank(r, width) for r in range((1 << (width + 1)) - 1))


def count_valid_strings(width: int) -> int:
    """``|S^B_rg| = 2^{B+1} - 1``."""
    return (1 << (width + 1)) - 1


def validate(w: Word) -> Word:
    """Assert validity, returning the word unchanged (pipeline helper)."""
    if not is_valid(w):
        raise InvalidStringError(f"{w!r} is not a valid string")
    return w
