"""Test-support machinery that ships with the library.

Fault injection for the distributed stack lives here
(:mod:`repro.testing.chaos`) rather than under ``tests/`` because the
CI chaos-smoke job and the examples drive it as a real process
(``python -m repro.testing.chaos``), and because downstream embedders
hardening their own deployments deserve the same harness we use.

Imported lazily by nothing in the library proper: ``import repro``
never pays for this package.
"""

from .chaos import ChaosProxy, FaultSchedule, FlakyChannel

__all__ = ["ChaosProxy", "FaultSchedule", "FlakyChannel"]
