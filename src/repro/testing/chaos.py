"""Chaos injection for the distributed stack: seeded, deterministic.

The fault-tolerance guarantees of :mod:`repro.distributed` -- durable
checkpoints, auto-reconnect, lease re-queues, first-write-wins merges
-- are only guarantees if they are *exercised*.  This module turns the
repo's own failure machinery on itself, in two shapes:

* :class:`FlakyChannel` wraps one
  :class:`~repro.distributed.wire.LineChannel` and injects faults at
  the message level (drop a send, delay it, truncate it mid-line and
  kill the connection).  It plugs into
  :class:`~repro.distributed.worker.ShardWorker` via its
  ``channel_wrapper`` seam, so every session a reconnecting worker
  opens is independently unreliable.

* :class:`ChaosProxy` is a TCP man-in-the-middle: point workers at the
  proxy, the proxy at the coordinator, and it forwards byte chunks
  while occasionally delaying, truncating, or killing whole
  connections.  Because it works below the protocol, it exercises
  exactly the failures a real network produces -- half-delivered
  lines, connections dying mid-reply -- and survives coordinator
  restarts (each client connection dials upstream fresh).

Everything is driven by :class:`FaultSchedule`, a seeded RNG over
fault rates, so a chaos run is *reproducible*: same seed, same faults,
same (byte-identical) final report.

CLI (used by the CI ``chaos-smoke`` job)::

    python -m repro.testing.chaos --port 7440 --target 127.0.0.1:7422 \\
        --seed 11 --delay-rate 0.05 --truncate-rate 0.01 --kill-after-bytes 200000
"""

from __future__ import annotations

import argparse
import random
import socket
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..distributed.wire import LineChannel, encode_line

__all__ = ["ChaosProxy", "FaultSchedule", "FlakyChannel"]


class FaultSchedule:
    """Deterministic stream of fault decisions.

    Each :meth:`next_fault` draws once from a seeded RNG and returns
    ``None`` (no fault) or one of ``"drop"``, ``"delay"``,
    ``"truncate"`` with the configured probabilities.  Determinism is
    per-instance: two schedules with the same seed and rates make
    identical decisions, which is what makes a chaos test a test.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        truncate_rate: float = 0.0,
        delay_s: float = 0.02,
    ):
        self.rng = random.Random(seed)
        self.drop_rate = drop_rate
        self.delay_rate = delay_rate
        self.truncate_rate = truncate_rate
        self.delay_s = delay_s
        self.counts: Dict[str, int] = {
            "drop": 0, "delay": 0, "truncate": 0, "clean": 0
        }
        self._lock = threading.Lock()

    def next_fault(self) -> Optional[str]:
        with self._lock:
            r = self.rng.random()
            if r < self.drop_rate:
                fault = "drop"
            elif r < self.drop_rate + self.delay_rate:
                fault = "delay"
            elif r < self.drop_rate + self.delay_rate + self.truncate_rate:
                fault = "truncate"
            else:
                fault = None
            self.counts[fault or "clean"] += 1
            return fault


class FlakyChannel:
    """A :class:`LineChannel` whose *sends* misbehave on schedule.

    Outgoing messages are the right injection point: from the wrapped
    endpoint's perspective a dropped send and a peer that never
    received are indistinguishable, so one seam covers both directions
    of protocol loss.  Faults:

    * ``drop`` -- the message silently never leaves (the peer's reply
      never comes; the sender's bounded recv must recover);
    * ``delay`` -- the message is held ``delay_s`` seconds first
      (reordering-free, so framing stays valid);
    * ``truncate`` -- half the encoded line is written and the
      connection is closed, exactly the torn write a crash mid-send
      produces.

    ``recv``/``request``/``close`` delegate to the wrapped channel, so
    a FlakyChannel drops into any LineChannel seat --
    ``ShardWorker(channel_wrapper=...)`` being the intended one.
    """

    def __init__(self, channel: LineChannel, schedule: FaultSchedule):
        self.channel = channel
        self.schedule = schedule

    def send(self, obj: Dict[str, Any]) -> None:
        fault = self.schedule.next_fault()
        if fault == "drop":
            return
        data = encode_line(obj)
        if fault == "delay":
            time.sleep(self.schedule.delay_s)
        elif fault == "truncate":
            try:
                self.channel.send_raw(data[: max(1, len(data) // 2)])
            finally:
                self.channel.close()
            return
        self.channel.send_raw(data)

    def send_raw(self, data: bytes) -> None:
        self.channel.send_raw(data)

    def recv(self, *args: Any, **kwargs: Any):
        return self.channel.recv(*args, **kwargs)

    def request(self, obj: Dict[str, Any], **kwargs: Any) -> Dict[str, Any]:
        self.send(obj)
        reply = self.channel.recv(**kwargs)
        if reply is None:
            raise ConnectionError("connection closed while awaiting reply")
        return reply

    def close(self) -> None:
        self.channel.close()

    def __enter__(self) -> "FlakyChannel":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class ChaosProxy:
    """Seeded TCP man-in-the-middle between workers and a coordinator.

    Listens on ``(host, port)`` (``port=0`` = ephemeral; read
    :attr:`port` after :meth:`start`) and forwards every accepted
    connection to ``(target_host, target_port)``.  Per forwarded chunk
    it may *delay*, *truncate* (forward half the chunk, then kill the
    connection), or *kill* (drop the connection outright);
    ``kill_after_bytes`` additionally kills any connection after that
    many relayed bytes, which guarantees churn on long-lived worker
    connections regardless of rates.

    Fault decisions derive deterministically from ``(seed, connection
    index)``, so a run is reproducible even though connections race.
    A dead upstream is survived: clients accepted while the target is
    down are closed immediately (the worker's backoff handles it), and
    new connections dial the target fresh -- so one proxy spans a
    coordinator restart.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        seed: int = 0,
        delay_rate: float = 0.0,
        truncate_rate: float = 0.0,
        kill_rate: float = 0.0,
        delay_s: float = 0.02,
        kill_after_bytes: Optional[int] = None,
    ):
        self.target_host = target_host
        self.target_port = target_port
        self.host = host
        self.port = port
        self.seed = seed
        self.delay_rate = delay_rate
        self.truncate_rate = truncate_rate
        self.kill_rate = kill_rate
        self.delay_s = delay_s
        self.kill_after_bytes = kill_after_bytes
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._closing = False
        self._conn_seq = 0
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "connections": 0,
            "refused": 0,
            "kills": 0,
            "truncations": 0,
            "delays": 0,
            "bytes": 0,
        }

    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.port = listener.getsockname()[1]
        self._listener = listener
        t = threading.Thread(
            target=self._accept_loop, name="repro-chaos-accept", daemon=True
        )
        t.start()
        self._threads.append(t)
        return self

    def close(self) -> None:
        self._closing = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                self._conn_seq += 1
                conn_index = self._conn_seq
                self.stats["connections"] += 1
            try:
                upstream = socket.create_connection(
                    (self.target_host, self.target_port), timeout=5.0
                )
            except OSError:
                # Target down (e.g. coordinator mid-restart): refuse the
                # client and keep serving -- its backoff will retry.
                with self._lock:
                    self.stats["refused"] += 1
                client.close()
                continue
            # Per-connection RNG keyed on (seed, index): deterministic
            # even though connections are accepted concurrently.
            rng = random.Random((self.seed << 20) ^ conn_index)
            state = _ConnState(client, upstream, rng)
            for src, dst, label in (
                (client, upstream, "up"),
                (upstream, client, "down"),
            ):
                t = threading.Thread(
                    target=self._pump,
                    args=(state, src, dst),
                    name=f"repro-chaos-{label}{conn_index}",
                    daemon=True,
                )
                t.start()
                self._threads.append(t)

    def _pump(
        self, state: "_ConnState", src: socket.socket, dst: socket.socket
    ) -> None:
        try:
            while True:
                chunk = src.recv(4096)
                if not chunk:
                    return
                fault = self._decide(state)
                if fault == "kill":
                    with self._lock:
                        self.stats["kills"] += 1
                    return
                if fault == "truncate":
                    with self._lock:
                        self.stats["truncations"] += 1
                    dst.sendall(chunk[: max(1, len(chunk) // 2)])
                    return
                if fault == "delay":
                    with self._lock:
                        self.stats["delays"] += 1
                    time.sleep(self.delay_s)
                dst.sendall(chunk)
                with state.lock:
                    state.relayed += len(chunk)
                with self._lock:
                    self.stats["bytes"] += len(chunk)
        except OSError:
            return
        finally:
            # One dead direction kills the pair: half-relayed
            # conversations must look like dropped connections, not
            # hang half-open.
            state.shutdown()

    def _decide(self, state: "_ConnState") -> Optional[str]:
        with state.lock:
            if (
                self.kill_after_bytes is not None
                and state.relayed >= self.kill_after_bytes
            ):
                return "kill"
            r = state.rng.random()
        if r < self.kill_rate:
            return "kill"
        if r < self.kill_rate + self.truncate_rate:
            return "truncate"
        if r < self.kill_rate + self.truncate_rate + self.delay_rate:
            return "delay"
        return None


class _ConnState:
    """Shared fate of one proxied connection (both pump directions)."""

    def __init__(self, client: socket.socket, upstream: socket.socket, rng):
        self.client = client
        self.upstream = upstream
        self.rng = rng
        self.relayed = 0
        self.lock = threading.Lock()
        self._dead = False

    def shutdown(self) -> None:
        with self.lock:
            if self._dead:
                return
            self._dead = True
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


def _parse_hostport(value: str) -> Tuple[str, int]:
    if ":" in value:
        host, _, port = value.rpartition(":")
        return host or "127.0.0.1", int(port)
    return "127.0.0.1", int(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.chaos",
        description="Seeded TCP fault-injection proxy (see module docs).",
    )
    parser.add_argument("--port", type=int, required=True,
                        help="port to listen on")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--target", required=True,
                        help="upstream HOST:PORT to forward to")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--delay-rate", type=float, default=0.0)
    parser.add_argument("--truncate-rate", type=float, default=0.0)
    parser.add_argument("--kill-rate", type=float, default=0.0)
    parser.add_argument("--delay-s", type=float, default=0.02)
    parser.add_argument("--kill-after-bytes", type=int, default=None)
    args = parser.parse_args(argv)
    target_host, target_port = _parse_hostport(args.target)
    proxy = ChaosProxy(
        target_host,
        target_port,
        host=args.host,
        port=args.port,
        seed=args.seed,
        delay_rate=args.delay_rate,
        truncate_rate=args.truncate_rate,
        kill_rate=args.kill_rate,
        delay_s=args.delay_s,
        kill_after_bytes=args.kill_after_bytes,
    ).start()
    print(
        f"chaos proxy: {proxy.host}:{proxy.port} -> "
        f"{target_host}:{target_port} (seed {args.seed})",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        proxy.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
