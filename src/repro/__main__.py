"""Command-line interface: ``python -m repro <command>``.

Commands
--------
table7              regenerate Table 7 (2-sort costs, measured vs published)
table8              regenerate Table 8 (sorting-network costs)
verify --width B    exhaustively verify 2-sort(B) against the closure spec
       --jobs N     shard the sweep across N worker processes (0 = cores)
       --shard-size approximate pair-lanes per shard
       --backend    plane backend: bigint (default) or array (numpy/words)
       --json       machine-readable result (counts, failures, timing)
export --width B    dump 2-sort(B) as structural Verilog (stdout)
sort g h [...]      sort valid strings with the paper's circuit
     --engine       2-sort engine (fsm default; compiled = batch path)
     --backend      plane backend for --engine compiled
     --json         machine-readable sorted output
serve               run the async job service (JSON lines over TCP)
     --port/--host  bind address (default 127.0.0.1:7421)
     --jobs         max concurrently *running* jobs
     --backend      default plane backend for requests that omit one
submit verify|sort  submit a job to a running service, stream progress
                    (stderr) and print the result exactly like the
                    direct command would
status JOB_ID       one job's state/progress as JSON
cancel JOB_ID       request cooperative cancellation

``verify`` and ``sort`` are thin clients of the same typed request
dataclasses (:mod:`repro.service.jobs`) the service executes, so a
served job and a direct CLI run are the same code path.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

from .analysis.compare import table7_rows, table8_rows
from .backends import available_backends
from .circuits.export import to_verilog
from .core.two_sort import build_two_sort
from .graycode.valid import InvalidStringError
from .networks.simulate import ENGINES
from .service import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    JobManager,
    ReproServer,
    ServiceClient,
    ServiceError,
    SortRequest,
    VerifyRequest,
)
from .service.jobs import MAX_VERIFY_WIDTH
from .verify.exhaustive import VerificationResult


def _cmd_table7(_args) -> int:
    for row in table7_rows():
        print(row.format())
    return 0


def _cmd_table8(_args) -> int:
    for row in table8_rows():
        print(row.format())
    return 0


def _check_positive_args(args) -> int:
    """Reject non-positive sharding arguments up front (exit code 2).

    Without this, a negative ``--jobs`` silently degraded to one worker
    (``max(1, jobs)`` deep in the pool planner) and ``--shard-size 0``
    died in shard planning with an opaque traceback.
    """
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 0:
        print(
            f"error: --jobs must be >= 0 (0 = one worker per core), "
            f"got {jobs}",
            file=sys.stderr,
        )
        return 2
    shard_size = getattr(args, "shard_size", None)
    if shard_size is not None and shard_size <= 0:
        print(
            f"error: --shard-size must be a positive lane count, "
            f"got {shard_size}",
            file=sys.stderr,
        )
        return 2
    return 0


def _verify_request(args) -> VerifyRequest:
    return VerifyRequest(
        width=args.width,
        jobs=args.jobs,
        shard_size=args.shard_size,
        backend=args.backend,
    )


def _print_verify_result(
    width: int, result: VerificationResult, as_json: bool
) -> int:
    if as_json:
        print(result.to_json(indent=2))
    else:
        print(f"2-sort({width}) vs closure spec: {result.summary()}")
        for failure in result.failures[:5]:
            print(f"  {failure}")
    return 0 if result.ok else 1


def _cmd_verify(args) -> int:
    bad = _check_positive_args(args)
    if bad:
        return bad
    width = args.width
    if width > MAX_VERIFY_WIDTH:
        # Sharded across workers the pair domain stays tractable up to
        # B=13 (268M pairs); beyond that 4^B outgrows a CLI run.
        print(
            f"exhaustive verification at B={width} would check "
            f"{((1 << (width + 1)) - 1) ** 2:,} pairs; "
            f"use B <= {MAX_VERIFY_WIDTH}",
            file=sys.stderr,
        )
        return 2
    request = _verify_request(args)
    try:
        request.validate()
    except ValueError as exc:
        # e.g. width < 1: a usage error, same exit code as the checks above.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    start = time.perf_counter()
    result = request.run()
    result.elapsed = time.perf_counter() - start
    return _print_verify_result(width, result, args.json)


def _cmd_export(args) -> int:
    sys.stdout.write(to_verilog(build_two_sort(args.width)))
    return 0


def _sort_request(args) -> SortRequest:
    return SortRequest.single(
        list(args.values),
        engine=args.engine,
        backend=args.backend,
    )


def _cmd_sort(args) -> int:
    if args.backend is not None and args.engine != "compiled":
        print(
            f"error: --backend selects a plane representation, which only "
            f"the compiled engine uses; pass --engine compiled "
            f"(got --engine {args.engine})",
            file=sys.stderr,
        )
        return 2
    try:
        rows = _sort_request(args).run()
    except InvalidStringError:
        # Word validity errors propagate (hard usage errors), as before
        # the service refactor.
        raise
    except ValueError as exc:
        # e.g. mixed widths: a friendly exit 2 from the shared validator.
        print(exc, file=sys.stderr)
        return 2
    sorted_words = rows[0]
    if args.json:
        print(json.dumps([str(w) for w in sorted_words]))
    else:
        for w in sorted_words:
            print(w)
    return 0


# ----------------------------------------------------------------------
# Service front-end
# ----------------------------------------------------------------------
def _cmd_serve(args) -> int:
    bad = _check_positive_args(args)
    if bad:
        return bad

    async def _serve() -> None:
        import os

        # --jobs 0 follows the verify convention: one (job slot) per core.
        manager = JobManager(
            jobs=args.jobs or os.cpu_count() or 1,
            cache_size=args.cache_size,
            default_backend=args.backend,
        )
        server = ReproServer(manager, host=args.host, port=args.port)
        await server.start()
        print(
            f"repro service listening on {args.host}:{server.port} "
            f"(max {manager.max_jobs} concurrent jobs)",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.aclose()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro service stopped", file=sys.stderr)
    except OSError as exc:
        # Typically EADDRINUSE: a usage error, not a crash.
        print(
            f"error: cannot bind {args.host}:{args.port} -- {exc}",
            file=sys.stderr,
        )
        return 2
    return 0


def _client(args) -> ServiceClient:
    return ServiceClient(host=args.host, port=args.port)


def _progress_line(kind: str, event) -> str:
    line = (
        f"[{event.get('id')}] {event.get('shards_done')}/"
        f"{event.get('shards_total')} shards"
    )
    if kind == "verify":
        line += (
            f", {event.get('checked')} pairs checked, "
            f"{event.get('failure_count')} failure(s)"
        )
    else:
        line += f", {event.get('items_done')} vector(s) sorted"
    return line


def _cmd_submit(args) -> int:
    if args.request_kind == "verify":
        request = _verify_request(args)
    else:
        request = _sort_request(args)
    try:
        # One validator (the request's own) covers jobs/shard-size/width;
        # validation failures are usage errors, exit 2.
        request.validate()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with _client(args) as client:
            job_id = client.submit(request)
            if args.no_wait:
                print(job_id)
                return 0
            for event in client.stream(job_id):
                kind = event.get("event")
                if kind == "progress" and not args.quiet:
                    print(_progress_line(args.request_kind, event),
                          file=sys.stderr)
                elif kind == "failure" and not args.quiet:
                    print(
                        f"[{event.get('id')}] FAIL {event.get('message')}",
                        file=sys.stderr,
                    )
            response = client.result(job_id)
    except (ServiceError, ConnectionError, OSError) as exc:
        print(
            f"error: service at {args.host}:{args.port} -- {exc}",
            file=sys.stderr,
        )
        return 2
    state = response["state"]
    if state == "cancelled":
        print(f"job {job_id} cancelled", file=sys.stderr)
        return 1
    if state == "failed":
        print(f"job {job_id} failed: {response.get('error')}", file=sys.stderr)
        return 1
    payload = response["result"]
    if args.request_kind == "verify":
        result = VerificationResult(
            checked=payload["checked"],
            failure_count=payload["failure_count"],
            failures=list(payload["failures"]),
            truncated=payload["truncated"],
            elapsed=payload.get("elapsed_s"),
        )
        return _print_verify_result(args.width, result, args.json)
    rows = payload["vectors"]
    if args.json:
        print(json.dumps(rows[0] if len(rows) == 1 else rows))
    else:
        for row in rows:
            for word in row:
                print(word)
    return 0


def _cmd_status(args) -> int:
    try:
        with _client(args) as client:
            status = client.status(args.job_id)
    except (ServiceError, ConnectionError, OSError) as exc:
        print(
            f"error: service at {args.host}:{args.port} -- {exc}",
            file=sys.stderr,
        )
        return 2
    status.pop("ok", None)
    print(json.dumps(status, indent=2))
    return 0


def _cmd_cancel(args) -> int:
    try:
        with _client(args) as client:
            cancelled = client.cancel(args.job_id)
    except (ServiceError, ConnectionError, OSError) as exc:
        print(
            f"error: service at {args.host}:{args.port} -- {exc}",
            file=sys.stderr,
        )
        return 2
    print(f"job {args.job_id}: " + ("cancelling" if cancelled else
                                    "already finished"))
    return 0 if cancelled else 1


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def _add_connection_args(parser) -> None:
    parser.add_argument(
        "--host", default=DEFAULT_HOST, help="service host (default %(default)s)"
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help="service port (default %(default)s)",
    )


def _add_verify_args(parser) -> None:
    parser.add_argument("--width", "-B", type=int, default=4)
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for the sharded sweep (0 = all cores)",
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="approximate pair-lanes per shard (default: auto)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="plane backend (default: bigint, or $REPRO_PLANE_BACKEND)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable result (counts, failures, truncation, timing)",
    )


def _add_sort_args(parser) -> None:
    parser.add_argument("values", nargs="+")
    parser.add_argument(
        "--engine",
        default="fsm",
        choices=sorted(ENGINES),
        help="2-sort engine (default: fsm; 'compiled' is the batch path)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="plane backend for --engine compiled",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the sorted words as JSON"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal metastability-containing sorting networks "
        "(DATE 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table7", help="regenerate Table 7").set_defaults(fn=_cmd_table7)
    sub.add_parser("table8", help="regenerate Table 8").set_defaults(fn=_cmd_table8)

    p = sub.add_parser("verify", help="exhaustively verify 2-sort(B)")
    _add_verify_args(p)
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser("export", help="emit structural Verilog for 2-sort(B)")
    p.add_argument("--width", "-B", type=int, default=8)
    p.set_defaults(fn=_cmd_export)

    p = sub.add_parser("sort", help="sort valid strings (e.g. 0M10 0110 0010)")
    _add_sort_args(p)
    p.set_defaults(fn=_cmd_sort)

    p = sub.add_parser(
        "serve", help="run the async job service (JSON lines over TCP)"
    )
    _add_connection_args(p)
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=2,
        help="max concurrently running jobs (default %(default)s; "
        "0 = one per core)",
    )
    p.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="default plane backend for requests that omit one",
    )
    p.add_argument(
        "--cache-size",
        type=int,
        default=8192,
        help="shard-cache entries (0 disables; default %(default)s)",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a job to a running service and wait for it"
    )
    kind_sub = p.add_subparsers(dest="request_kind", required=True)
    kv = kind_sub.add_parser("verify", help="submit a verification job")
    _add_verify_args(kv)
    ks = kind_sub.add_parser("sort", help="submit a sorting job")
    _add_sort_args(ks)
    for kp in (kv, ks):
        _add_connection_args(kp)
        kp.add_argument(
            "--no-wait",
            action="store_true",
            help="print the job id and exit instead of streaming",
        )
        kp.add_argument(
            "--quiet",
            action="store_true",
            help="suppress the progress stream on stderr",
        )
        kp.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("status", help="show one job's state and progress")
    p.add_argument("job_id")
    _add_connection_args(p)
    p.set_defaults(fn=_cmd_status)

    p = sub.add_parser("cancel", help="request cooperative job cancellation")
    p.add_argument("job_id")
    _add_connection_args(p)
    p.set_defaults(fn=_cmd_cancel)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
