"""Command-line interface: ``python -m repro <command>``.

Commands
--------
table7              regenerate Table 7 (2-sort costs, measured vs published)
table8              regenerate Table 8 (sorting-network costs)
verify --width B    exhaustively verify 2-sort(B) against the closure spec
       --jobs N     shard the sweep across N worker processes (0 = cores)
       --shard-size approximate pair-lanes per shard
       --executor   execution strategy: serial/process/array/distributed
       --listen A   (with --executor distributed) coordinator address,
                    PORT or HOST:PORT (bare port binds all interfaces)
       --backend    plane backend: auto (default -- native when its C
                    kernel builds on this host, else bigint), bigint,
                    array, or native
       --checkpoint durable shard journal: created if missing, resumed
                    if present (completed shards are never re-run)
       --resume P   resume strictly from an existing journal (exit 2
                    if it does not exist)
       --store S    unified result store (memory[:N] / journal:PATH /
                    sqlite:PATH / bare path): results are keyed per
                    output-cone region, so edits re-verify
                    incrementally; each completed sweep is audited
       --json       machine-readable result (counts, failures, timing,
                    and the store's hit/miss/put counters)
export --width B    dump 2-sort(B) as structural Verilog (stdout)
backends            list registered plane backends, their variant on
                    this host (e.g. whether the native C kernel built,
                    and why not if it fell back), and what the
                    ``auto`` alias resolves to
     --json         machine-readable registry
sort g h [...]      sort valid strings with the paper's circuit
     --engine       2-sort engine (fsm default; compiled = batch path)
     --executor     execution strategy for the sharded batch path
     --backend      plane backend for --engine compiled
     --json         machine-readable sorted output
serve               run the async job service (JSON lines over TCP)
     --port/--host  bind address (default 127.0.0.1:7421)
     --jobs         max concurrently *running* jobs
     --backend      default plane backend for requests that omit one
     --listen A     also run a shard coordinator ([HOST:]PORT), so
                    submitted jobs may use executor "distributed"
worker              attach a shard worker to a running coordinator
     --connect H:P  coordinator address
     --jobs N       local process fan-out under this one connection
     --retry-max    consecutive failed connects tolerated before giving
                    up (default 10; 0 = fail fast) -- startup order is
                    free: workers may start before the coordinator
     --backoff-base seed of the jittered exponential reconnect delay
submit verify|sort  submit a job to a running service, stream progress
                    (stderr) and print the result exactly like the
                    direct command would
status JOB_ID       one job's state/progress as JSON
cancel JOB_ID       request cooperative cancellation
store log           print the audit trail of a result store
      --store S     store spec (as for verify --store)
      --limit N     newest N records only
      --json        one JSON object per line

``verify`` and ``sort`` are thin clients of the same typed request
dataclasses (:mod:`repro.service.jobs`) the service executes, so a
served job and a direct CLI run are the same code path.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

from .analysis.compare import table7_rows, table8_rows
from .backends import known_backend_names
from .circuits.export import to_verilog
from .core.two_sort import build_two_sort
from .graycode.valid import InvalidStringError
from .networks.simulate import ENGINES
from .service import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    JobManager,
    ReproServer,
    ServiceClient,
    ServiceError,
    SortRequest,
    VerifyRequest,
)
from .service.jobs import MAX_VERIFY_WIDTH
from .verify.exhaustive import VerificationResult
from .verify.parallel import available_executors


def _cmd_table7(_args) -> int:
    for row in table7_rows():
        print(row.format())
    return 0


def _cmd_table8(_args) -> int:
    for row in table8_rows():
        print(row.format())
    return 0


def _check_positive_args(args) -> int:
    """Reject non-positive sharding arguments up front (exit code 2).

    Without this, a negative ``--jobs`` silently degraded to one worker
    (``max(1, jobs)`` deep in the pool planner) and ``--shard-size 0``
    died in shard planning with an opaque traceback.
    """
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 0:
        print(
            f"error: --jobs must be >= 0 (0 = one worker per core), "
            f"got {jobs}",
            file=sys.stderr,
        )
        return 2
    shard_size = getattr(args, "shard_size", None)
    if shard_size is not None and shard_size <= 0:
        print(
            f"error: --shard-size must be a positive lane count, "
            f"got {shard_size}",
            file=sys.stderr,
        )
        return 2
    return 0


def _check_backend_args(args) -> int:
    """Validate --backend against the registry (exit code 2 on misuse).

    Replaces argparse ``choices=``: the registry can grow (plugins,
    tests register fakes), and the error should enumerate what *this*
    process actually has -- including the ``auto`` alias.
    """
    backend = getattr(args, "backend", None)
    if backend is not None and backend not in known_backend_names():
        print(
            f"error: unknown plane backend {backend!r}; "
            f"available: {', '.join(known_backend_names())}",
            file=sys.stderr,
        )
        return 2
    return 0


def _check_executor_args(args) -> int:
    """Validate --executor/--listen up front (exit code 2 on misuse).

    The executor registry was CLI-unreachable before this flag existed
    (``--jobs`` hard-implied ``process``); validating against
    :func:`available_executors` here keeps the error a one-line usage
    message instead of a traceback from deep inside ``run_sharded``.
    """
    executor = getattr(args, "executor", None)
    if executor is not None and executor not in available_executors():
        print(
            f"error: unknown executor {executor!r}; "
            f"available: {', '.join(available_executors())}",
            file=sys.stderr,
        )
        return 2
    listen = getattr(args, "listen", None)
    if listen is not None and executor != "distributed":
        print(
            "error: --listen starts a shard coordinator, which only "
            "--executor distributed uses",
            file=sys.stderr,
        )
        return 2
    if executor == "distributed" and hasattr(args, "listen") and listen is None:
        print(
            "error: --executor distributed needs --listen PORT (the "
            "coordinator address workers connect to; 0 = ephemeral)",
            file=sys.stderr,
        )
        return 2
    return 0


def _check_checkpoint_args(args, *, local: bool = True) -> int:
    """Validate --checkpoint/--resume (exit code 2 on misuse).

    ``--checkpoint`` is create-or-resume; ``--resume`` insists the
    journal already exists, so a typo'd path fails loudly instead of
    silently starting the sweep from scratch under a fresh file.  With
    ``local=False`` (``submit``: the journal lives wherever the service
    runs) the existence check is skipped.
    """
    resume = getattr(args, "resume", None)
    checkpoint = getattr(args, "checkpoint", None)
    if getattr(args, "store", None) is not None and (
        resume is not None or checkpoint is not None
    ):
        print(
            "error: --store and --checkpoint/--resume are mutually "
            "exclusive (a checkpoint *is* the journal store; pass "
            "--store journal:PATH for the same file, or --store "
            "sqlite:PATH for the shared backend)",
            file=sys.stderr,
        )
        return 2
    if resume is None:
        return 0
    if checkpoint is not None and checkpoint != resume:
        print(
            "error: --resume and --checkpoint name different journals; "
            "pass just one of them",
            file=sys.stderr,
        )
        return 2
    if local and not os.path.exists(resume):
        print(
            f"error: --resume {resume}: no such checkpoint journal "
            f"(use --checkpoint to create one on the first run)",
            file=sys.stderr,
        )
        return 2
    return 0


def _parse_listen(value):
    """``--listen`` accepts ``PORT`` or ``HOST:PORT``.

    The bare form binds all interfaces (cross-host is the point); the
    ``HOST:`` prefix is how a user restricts the coordinator -- which
    moves pickles, so exposure matters -- to e.g. ``127.0.0.1`` or an
    internal interface.  Returns ``(host, port)`` or raises
    ``ValueError`` with a usage message.
    """
    host, sep, port_text = value.rpartition(":")
    if not sep:
        host, port_text = "0.0.0.0", value
    if not port_text.isdigit() or not 0 <= int(port_text) <= 65535 or not host:
        raise ValueError(
            f"--listen expects PORT or HOST:PORT (port 0-65535, "
            f"0 = ephemeral), got {value!r}"
        )
    return host, int(port_text)


def _start_coordinator(args) -> int:
    """Run the shard coordinator for a distributed CLI sweep.

    Returns 0, or 2 on a usage-level failure (unparseable address,
    unbindable port) -- matching the bind-errors-exit-2 convention of
    ``serve``.
    """
    from .distributed import ensure_coordinator

    try:
        host, port = _parse_listen(args.listen)
        coordinator = ensure_coordinator(host=host, port=port)
    except (ValueError, OSError) as exc:
        print(f"error: cannot start coordinator -- {exc}", file=sys.stderr)
        return 2
    print(
        f"shard coordinator listening on {coordinator.host}:"
        f"{coordinator.port} -- attach workers with `python -m repro "
        f"worker --connect HOST:{coordinator.port}`",
        file=sys.stderr,
        flush=True,
    )
    return 0


def _verify_request(args) -> VerifyRequest:
    return VerifyRequest(
        width=args.width,
        jobs=args.jobs,
        shard_size=args.shard_size,
        executor=args.executor,
        backend=args.backend,
        checkpoint=getattr(args, "resume", None) or getattr(args, "checkpoint", None),
        store=getattr(args, "store", None),
    )


def _print_verify_result(
    width: int, result: VerificationResult, as_json: bool,
    store_counters=None,
) -> int:
    if as_json:
        payload = result.to_dict()
        if store_counters is not None:
            payload["store"] = store_counters
        print(json.dumps(payload, indent=2))
    else:
        print(f"2-sort({width}) vs closure spec: {result.summary()}")
        for failure in result.failures[:5]:
            print(f"  {failure}")
    return 0 if result.ok else 1


def _cmd_verify(args) -> int:
    bad = (
        _check_positive_args(args)
        or _check_executor_args(args)
        or _check_backend_args(args)
        or _check_checkpoint_args(args)
    )
    if bad:
        return bad
    width = args.width
    if width > MAX_VERIFY_WIDTH:
        # Sharded across workers the pair domain stays tractable up to
        # B=13 (268M pairs); beyond that 4^B outgrows a CLI run.
        print(
            f"exhaustive verification at B={width} would check "
            f"{((1 << (width + 1)) - 1) ** 2:,} pairs; "
            f"use B <= {MAX_VERIFY_WIDTH}",
            file=sys.stderr,
        )
        return 2
    request = _verify_request(args)
    try:
        request.validate()
    except ValueError as exc:
        # e.g. width < 1: a usage error, same exit code as the checks above.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if request.checkpoint and os.path.exists(request.checkpoint):
        # Tell the operator how much of the sweep is already on file --
        # the resume story is useless if it runs silently.
        from .distributed.checkpoint import SweepCheckpoint

        with SweepCheckpoint(request.checkpoint, fsync=False) as peek:
            on_file = len(peek)
        print(
            f"checkpoint {request.checkpoint}: {on_file} shard "
            f"result(s) on file; finished shards will not be re-run",
            file=sys.stderr,
            flush=True,
        )
    if args.executor == "distributed":
        bad = _start_coordinator(args)
        if bad:
            return bad
    store_counters = None
    start = time.perf_counter()
    try:
        if request.store is not None:
            # Opened here (not inside run()) so the handle's hit/miss/
            # put counters and audit trail are reportable afterwards.
            import dataclasses

            from .store import open_store

            with open_store(request.store) as store:
                result = dataclasses.replace(request, store=None).run(
                    store=store
                )
                store_counters = store.counters()
                # Summary on stderr: stdout stays byte-identical across
                # cold and warm runs (the determinism contract).
                print(
                    f"store {request.store}: {store.hits} hit(s), "
                    f"{store.misses} miss(es), {store.puts} new "
                    f"result(s); {len(store.runs() or [])} audited "
                    f"run(s)",
                    file=sys.stderr,
                    flush=True,
                )
        else:
            result = request.run()
    finally:
        if args.executor == "distributed":
            # Orderly teardown: workers polling this coordinator get a
            # "bye" and exit 0 instead of burning their reconnect
            # budget against a vanished port.
            from .distributed import shutdown_coordinator

            shutdown_coordinator()
    result.elapsed = time.perf_counter() - start
    return _print_verify_result(
        width, result, args.json, store_counters=store_counters
    )


def _cmd_export(args) -> int:
    sys.stdout.write(to_verilog(build_two_sort(args.width)))
    return 0


def _cmd_backends(args) -> int:
    """Print the plane-backend registry with availability and variant.

    Resolving ``native`` here may trigger its one-time kernel build --
    that is the point: the command answers "what would ``--backend
    auto`` do on this host, and why".
    """
    from .backends import (
        AUTO_BACKEND,
        available_backends,
        default_backend_name,
        get_backend,
        resolve_backend_name,
    )

    default = default_backend_name()
    rows = []
    for name in available_backends():
        be = get_backend(name)
        variant = getattr(be, "variant", None)
        detail = variant or "-"
        if name == "native":
            if variant == "built":
                detail = "built (C kernel)"
            else:
                from .backends._kernel import load_failure_reason

                detail = f"fallback -> bigint ({load_failure_reason()})"
        rows.append(
            {
                "name": name,
                "variant": variant,
                "detail": detail,
                "default": name == default,
            }
        )
    auto_target = resolve_backend_name(AUTO_BACKEND)
    if args.json:
        print(
            json.dumps(
                {"backends": rows, "auto": auto_target, "default": default},
                indent=2,
            )
        )
        return 0
    width_col = max(len(r["name"]) for r in rows) + 2
    for r in rows:
        marker = "  (default)" if r["default"] else ""
        print(f"{r['name']:<{width_col}}{r['detail']}{marker}")
    print(f"{AUTO_BACKEND:<{width_col}}alias -> {auto_target}")
    return 0


def _sort_request(args) -> SortRequest:
    return SortRequest.single(
        list(args.values),
        engine=args.engine,
        executor=args.executor,
        backend=args.backend,
    )


def _cmd_sort(args) -> int:
    bad = _check_executor_args(args) or _check_backend_args(args)
    if bad:
        return bad
    if args.executor == "distributed":
        # sort has no --listen to host a coordinator; keep this a
        # one-line usage error, not a RuntimeError from run_sharded.
        print(
            "error: sort cannot host a shard coordinator; run one with "
            "`serve --listen PORT` and use "
            "`submit sort --executor distributed` instead",
            file=sys.stderr,
        )
        return 2
    if args.backend is not None and args.engine != "compiled":
        print(
            f"error: --backend selects a plane representation, which only "
            f"the compiled engine uses; pass --engine compiled "
            f"(got --engine {args.engine})",
            file=sys.stderr,
        )
        return 2
    try:
        rows = _sort_request(args).run()
    except InvalidStringError:
        # Word validity errors propagate (hard usage errors), as before
        # the service refactor.
        raise
    except ValueError as exc:
        # e.g. mixed widths: a friendly exit 2 from the shared validator.
        print(exc, file=sys.stderr)
        return 2
    sorted_words = rows[0]
    if args.json:
        print(json.dumps([str(w) for w in sorted_words]))
    else:
        for w in sorted_words:
            print(w)
    return 0


# ----------------------------------------------------------------------
# Service front-end
# ----------------------------------------------------------------------
def _cmd_serve(args) -> int:
    bad = _check_positive_args(args) or _check_backend_args(args)
    if bad:
        return bad
    if args.listen is not None:
        from .distributed import ensure_coordinator

        try:
            listen_host, listen_port = _parse_listen(args.listen)
            coordinator = ensure_coordinator(host=listen_host, port=listen_port)
        except (ValueError, OSError) as exc:
            print(
                f"error: cannot start coordinator -- {exc}", file=sys.stderr
            )
            return 2
        print(
            f"shard coordinator listening on {coordinator.host}:"
            f"{coordinator.port} -- jobs submitted with executor "
            f"\"distributed\" run on attached workers",
            flush=True,
        )

    async def _serve() -> None:
        import os

        durable = None
        if args.store is not None:
            from .store import open_store

            durable = open_store(args.store)
        # --jobs 0 follows the verify convention: one (job slot) per core.
        manager = JobManager(
            jobs=args.jobs or os.cpu_count() or 1,
            cache_size=args.cache_size,
            default_backend=args.backend,
            store=durable,
        )
        server = ReproServer(manager, host=args.host, port=args.port)
        await server.start()
        print(
            f"repro service listening on {args.host}:{server.port} "
            f"(max {manager.max_jobs} concurrent jobs)",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.aclose()
            if durable is not None:
                durable.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro service stopped", file=sys.stderr)
    except OSError as exc:
        # Typically EADDRINUSE: a usage error, not a crash.
        print(
            f"error: cannot bind {args.host}:{args.port} -- {exc}",
            file=sys.stderr,
        )
        return 2
    return 0


def _client(args) -> ServiceClient:
    return ServiceClient(host=args.host, port=args.port)


def _progress_line(kind: str, event) -> str:
    line = (
        f"[{event.get('id')}] {event.get('shards_done')}/"
        f"{event.get('shards_total')} shards"
    )
    if kind == "verify":
        line += (
            f", {event.get('checked')} pairs checked, "
            f"{event.get('failure_count')} failure(s)"
        )
    else:
        line += f", {event.get('items_done')} vector(s) sorted"
    return line


def _cmd_submit(args) -> int:
    bad = (
        _check_executor_args(args)
        or _check_backend_args(args)
        or _check_checkpoint_args(args, local=False)
    )
    if bad:
        return bad
    if args.request_kind == "verify":
        request = _verify_request(args)
    else:
        request = _sort_request(args)
    try:
        # One validator (the request's own) covers jobs/shard-size/width;
        # validation failures are usage errors, exit 2.
        request.validate()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with _client(args) as client:
            job_id = client.submit(request)
            if args.no_wait:
                print(job_id)
                return 0
            for event in client.stream(job_id):
                kind = event.get("event")
                if kind == "progress" and not args.quiet:
                    print(_progress_line(args.request_kind, event),
                          file=sys.stderr)
                elif kind == "failure" and not args.quiet:
                    print(
                        f"[{event.get('id')}] FAIL {event.get('message')}",
                        file=sys.stderr,
                    )
            response = client.result(job_id)
    except (ServiceError, ConnectionError, OSError) as exc:
        print(
            f"error: service at {args.host}:{args.port} -- {exc}",
            file=sys.stderr,
        )
        return 2
    state = response["state"]
    if state == "cancelled":
        print(f"job {job_id} cancelled", file=sys.stderr)
        return 1
    if state == "failed":
        print(f"job {job_id} failed: {response.get('error')}", file=sys.stderr)
        return 1
    payload = response["result"]
    if args.request_kind == "verify":
        result = VerificationResult(
            checked=payload["checked"],
            failure_count=payload["failure_count"],
            failures=list(payload["failures"]),
            truncated=payload["truncated"],
            elapsed=payload.get("elapsed_s"),
        )
        return _print_verify_result(args.width, result, args.json)
    rows = payload["vectors"]
    if args.json:
        print(json.dumps(rows[0] if len(rows) == 1 else rows))
    else:
        for row in rows:
            for word in row:
                print(word)
    return 0


def _cmd_worker(args) -> int:
    from .distributed import ShardWorker

    host, sep, port_text = args.connect.rpartition(":")
    if not sep or not host or not port_text.isdigit():
        print(
            f"error: --connect expects HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 0:
        print(
            f"error: --jobs must be >= 0 (0 = one worker per core), "
            f"got {args.jobs}",
            file=sys.stderr,
        )
        return 2
    if args.retry_max < 0:
        print(
            f"error: --retry-max must be >= 0 (0 = fail on the first "
            f"refused connect), got {args.retry_max}",
            file=sys.stderr,
        )
        return 2
    if args.backoff_base <= 0:
        print(
            f"error: --backoff-base must be a positive delay in "
            f"seconds, got {args.backoff_base}",
            file=sys.stderr,
        )
        return 2
    bad = _check_backend_args(args)
    if bad:
        return bad
    jobs = args.jobs or os.cpu_count() or 1
    worker = ShardWorker(
        host,
        int(port_text),
        jobs=jobs,
        backend=args.backend,
        name=args.name,
        throttle=args.throttle,
        retry_max=args.retry_max,
        backoff_base=args.backoff_base,
    )
    try:
        completed = worker.run()
    except KeyboardInterrupt:
        print("worker stopped", file=sys.stderr)
        return 0
    except (ConnectionError, OSError) as exc:
        print(
            f"error: coordinator at {args.connect} -- {exc}",
            file=sys.stderr,
        )
        return 2
    print(f"worker done: {completed} shard(s) completed", file=sys.stderr)
    return 0


def _cmd_store_log(args) -> int:
    """Print a store's audit trail: one line per completed sweep."""
    from .store import open_store

    if args.limit is not None and args.limit <= 0:
        print(
            f"error: --limit must be a positive record count, got "
            f"{args.limit}",
            file=sys.stderr,
        )
        return 2
    try:
        with open_store(args.store) as store:
            runs = store.runs(args.limit)
    except (OSError, ValueError) as exc:
        print(f"error: store {args.store!r} -- {exc}", file=sys.stderr)
        return 2
    for run in runs or []:
        if args.json:
            print(json.dumps(run.to_dict(), sort_keys=True))
        else:
            stamp = time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(run.timestamp)
            )
            status = "OK" if run.ok else f"{run.failure_count} FAILURES"
            print(
                f"{stamp}  {run.circuit} [{run.circuit_hash}]  B={run.width} "
                f"backend={run.backend} executor={run.executor} "
                f"mode={run.mode} shards={run.shards} "
                f"checked={run.checked} digest={run.result_digest}  "
                f"{status}  ({run.host}:{run.pid})"
            )
    if not runs and not args.json:
        print("no audited runs on file", file=sys.stderr)
    return 0


def _cmd_status(args) -> int:
    try:
        with _client(args) as client:
            status = client.status(args.job_id)
    except (ServiceError, ConnectionError, OSError) as exc:
        print(
            f"error: service at {args.host}:{args.port} -- {exc}",
            file=sys.stderr,
        )
        return 2
    status.pop("ok", None)
    print(json.dumps(status, indent=2))
    return 0


def _cmd_cancel(args) -> int:
    try:
        with _client(args) as client:
            cancelled = client.cancel(args.job_id)
    except (ServiceError, ConnectionError, OSError) as exc:
        print(
            f"error: service at {args.host}:{args.port} -- {exc}",
            file=sys.stderr,
        )
        return 2
    print(f"job {args.job_id}: " + ("cancelling" if cancelled else
                                    "already finished"))
    return 0 if cancelled else 1


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def _add_connection_args(parser) -> None:
    parser.add_argument(
        "--host", default=DEFAULT_HOST, help="service host (default %(default)s)"
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help="service port (default %(default)s)",
    )


def _add_verify_args(parser) -> None:
    parser.add_argument("--width", "-B", type=int, default=4)
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for the sharded sweep (0 = all cores)",
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="approximate pair-lanes per shard (default: auto)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        help="execution strategy (serial, process, array, distributed; "
        "default: process when --jobs > 1, else serial)",
    )
    parser.add_argument(
        "--backend",
        default="auto",
        help="plane backend: auto (default -- native when its C kernel "
        "builds, else bigint), bigint, array, or native",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="durable shard journal (JSON lines): created if missing, "
        "resumed if present -- journaled shards are never re-run",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume strictly from an existing journal (error if PATH "
        "does not exist); implies --checkpoint PATH",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="SPEC",
        help="unified result store: memory[:N], journal:PATH, "
        "sqlite:PATH, or a bare path (suffix picks the backend). "
        "Results are keyed per output-cone region, so re-verifying "
        "an edited circuit only runs the affected cones; every "
        "completed sweep appends an audit record (see `store log`)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable result (counts, failures, truncation, timing)",
    )


def _add_sort_args(parser) -> None:
    parser.add_argument("values", nargs="+")
    parser.add_argument(
        "--engine",
        default="fsm",
        choices=sorted(ENGINES),
        help="2-sort engine (default: fsm; 'compiled' is the batch path)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        help="execution strategy for the sharded batch path "
        "(serial, process, array, distributed)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="plane backend for --engine compiled (auto/bigint/array/native)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the sorted words as JSON"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal metastability-containing sorting networks "
        "(DATE 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table7", help="regenerate Table 7").set_defaults(fn=_cmd_table7)
    sub.add_parser("table8", help="regenerate Table 8").set_defaults(fn=_cmd_table8)

    p = sub.add_parser("verify", help="exhaustively verify 2-sort(B)")
    _add_verify_args(p)
    p.add_argument(
        "--listen",
        default=None,
        metavar="[HOST:]PORT",
        help="with --executor distributed: run the shard coordinator "
        "here (bare PORT binds all interfaces; 0 = ephemeral) and wait "
        "for workers to connect",
    )
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser("export", help="emit structural Verilog for 2-sort(B)")
    p.add_argument("--width", "-B", type=int, default=8)
    p.set_defaults(fn=_cmd_export)

    p = sub.add_parser(
        "backends", help="list plane backends with availability and variant"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=_cmd_backends)

    p = sub.add_parser("sort", help="sort valid strings (e.g. 0M10 0110 0010)")
    _add_sort_args(p)
    p.set_defaults(fn=_cmd_sort)

    p = sub.add_parser(
        "serve", help="run the async job service (JSON lines over TCP)"
    )
    _add_connection_args(p)
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=2,
        help="max concurrently running jobs (default %(default)s; "
        "0 = one per core)",
    )
    p.add_argument(
        "--backend",
        default=None,
        help="default plane backend for requests that omit one "
        "(auto/bigint/array/native)",
    )
    p.add_argument(
        "--cache-size",
        type=int,
        default=8192,
        help="shard-cache entries (0 disables; default %(default)s)",
    )
    p.add_argument(
        "--listen",
        default=None,
        metavar="[HOST:]PORT",
        help="also run a shard coordinator here (bare PORT binds all "
        "interfaces), so submitted jobs may use executor \"distributed\"",
    )
    p.add_argument(
        "--store",
        default=None,
        metavar="SPEC",
        help="server-wide durable result store (as for verify --store): "
        "job results survive restarts and are shared with CLI runs "
        "against the same path",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "worker", help="attach a shard worker to a running coordinator"
    )
    p.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of the coordinator (verify --listen / serve --listen)",
    )
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="local worker processes under this connection "
        "(default %(default)s; 0 = one per core)",
    )
    p.add_argument(
        "--backend",
        default=None,
        help="plane backend for sweeps that do not pin one "
        "(auto/bigint/array/native)",
    )
    p.add_argument("--name", default=None, help="worker name in coordinator stats")
    p.add_argument(
        "--retry-max",
        type=int,
        default=10,
        metavar="N",
        help="consecutive failed connects tolerated before giving up "
        "(default %(default)s; 0 = fail fast) -- lets workers start "
        "before the coordinator and survive its restarts",
    )
    p.add_argument(
        "--backoff-base",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="first reconnect delay; later attempts back off "
        "exponentially with jitter, capped at 15s (default %(default)s)",
    )
    p.add_argument(
        "--throttle",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep after each completed shard (load shaping / testing)",
    )
    p.set_defaults(fn=_cmd_worker)

    p = sub.add_parser(
        "submit", help="submit a job to a running service and wait for it"
    )
    kind_sub = p.add_subparsers(dest="request_kind", required=True)
    kv = kind_sub.add_parser("verify", help="submit a verification job")
    _add_verify_args(kv)
    ks = kind_sub.add_parser("sort", help="submit a sorting job")
    _add_sort_args(ks)
    for kp in (kv, ks):
        _add_connection_args(kp)
        kp.add_argument(
            "--no-wait",
            action="store_true",
            help="print the job id and exit instead of streaming",
        )
        kp.add_argument(
            "--quiet",
            action="store_true",
            help="suppress the progress stream on stderr",
        )
        kp.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("store", help="inspect a verification result store")
    store_sub = p.add_subparsers(dest="store_command", required=True)
    sl = store_sub.add_parser(
        "log", help="print the audit trail of completed sweeps"
    )
    sl.add_argument(
        "--store",
        required=True,
        metavar="SPEC",
        help="store spec (as for verify --store)",
    )
    sl.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="newest N records only (default: all, oldest first)",
    )
    sl.add_argument(
        "--json",
        action="store_true",
        help="one JSON object per audit record",
    )
    sl.set_defaults(fn=_cmd_store_log)

    p = sub.add_parser("status", help="show one job's state and progress")
    p.add_argument("job_id")
    _add_connection_args(p)
    p.set_defaults(fn=_cmd_status)

    p = sub.add_parser("cancel", help="request cooperative job cancellation")
    p.add_argument("job_id")
    _add_connection_args(p)
    p.set_defaults(fn=_cmd_cancel)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
