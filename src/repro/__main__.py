"""Command-line interface: ``python -m repro <command>``.

Commands
--------
table7              regenerate Table 7 (2-sort costs, measured vs published)
table8              regenerate Table 8 (sorting-network costs)
verify --width B    exhaustively verify 2-sort(B) against the closure spec
       --jobs N     shard the sweep across N worker processes (0 = cores)
       --shard-size approximate pair-lanes per shard
       --backend    plane backend: bigint (default) or array (numpy/words)
export --width B    dump 2-sort(B) as structural Verilog (stdout)
sort g h [...]      sort valid strings with the paper's circuit
     --engine       2-sort engine (fsm default; compiled = batch path)
     --backend      plane backend for --engine compiled
"""

from __future__ import annotations

import argparse
import sys

from .analysis.compare import table7_rows, table8_rows
from .backends import available_backends
from .circuits.export import to_verilog
from .core.two_sort import build_two_sort
from .graycode.valid import validate
from .networks.simulate import ENGINES, sort_words, sort_words_batch
from .networks.topologies import best_known
from .ternary.word import Word
from .verify.exhaustive import verify_two_sort_circuit
from .verify.parallel import verify_two_sort_sharded


def _cmd_table7(_args) -> int:
    for row in table7_rows():
        print(row.format())
    return 0


def _cmd_table8(_args) -> int:
    for row in table8_rows():
        print(row.format())
    return 0


def _check_positive_args(args) -> int:
    """Reject non-positive sharding arguments up front (exit code 2).

    Without this, a negative ``--jobs`` silently degraded to one worker
    (``max(1, jobs)`` deep in the pool planner) and ``--shard-size 0``
    died in shard planning with an opaque traceback.
    """
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 0:
        print(
            f"error: --jobs must be >= 0 (0 = one worker per core), "
            f"got {jobs}",
            file=sys.stderr,
        )
        return 2
    shard_size = getattr(args, "shard_size", None)
    if shard_size is not None and shard_size <= 0:
        print(
            f"error: --shard-size must be a positive lane count, "
            f"got {shard_size}",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_verify(args) -> int:
    bad = _check_positive_args(args)
    if bad:
        return bad
    width = args.width
    if width > 13:
        # Sharded across workers the pair domain stays tractable up to
        # B=13 (268M pairs); beyond that 4^B outgrows a CLI run.
        print(
            f"exhaustive verification at B={width} would check "
            f"{((1 << (width + 1)) - 1) ** 2:,} pairs; use B <= 13",
            file=sys.stderr,
        )
        return 2
    circuit = build_two_sort(width)
    if args.jobs == 1 and args.shard_size is None:
        result = verify_two_sort_circuit(
            circuit, width, backend=args.backend
        )
    else:
        # jobs=0 -> one worker per core (verify_two_sort_sharded default)
        result = verify_two_sort_sharded(
            circuit,
            width,
            jobs=args.jobs or None,
            shard_size=args.shard_size,
            backend=args.backend,
        )
    print(f"2-sort({width}) vs closure spec: {result.summary()}")
    for failure in result.failures[:5]:
        print(f"  {failure}")
    return 0 if result.ok else 1


def _cmd_export(args) -> int:
    sys.stdout.write(to_verilog(build_two_sort(args.width)))
    return 0


def _cmd_sort(args) -> int:
    if args.backend is not None and args.engine != "compiled":
        print(
            f"error: --backend selects a plane representation, which only "
            f"the compiled engine uses; pass --engine compiled "
            f"(got --engine {args.engine})",
            file=sys.stderr,
        )
        return 2
    words = [validate(Word(s)) for s in args.values]
    widths = {len(w) for w in words}
    if len(widths) != 1:
        print("all inputs must share one width", file=sys.stderr)
        return 2
    network = best_known(len(words))
    if args.engine == "compiled":
        # The batch path: one-vector batch through the compiled two-plane
        # program on the selected backend.
        sorted_words = sort_words_batch(
            network, [words], engine="compiled", backend=args.backend
        )[0]
    else:
        sorted_words = sort_words(network, words, engine=args.engine)
    for w in sorted_words:
        print(w)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal metastability-containing sorting networks "
        "(DATE 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table7", help="regenerate Table 7").set_defaults(fn=_cmd_table7)
    sub.add_parser("table8", help="regenerate Table 8").set_defaults(fn=_cmd_table8)

    p = sub.add_parser("verify", help="exhaustively verify 2-sort(B)")
    p.add_argument("--width", "-B", type=int, default=4)
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for the sharded sweep (0 = all cores)",
    )
    p.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="approximate pair-lanes per shard (default: auto)",
    )
    p.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="plane backend (default: bigint, or $REPRO_PLANE_BACKEND)",
    )
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser("export", help="emit structural Verilog for 2-sort(B)")
    p.add_argument("--width", "-B", type=int, default=8)
    p.set_defaults(fn=_cmd_export)

    p = sub.add_parser("sort", help="sort valid strings (e.g. 0M10 0110 0010)")
    p.add_argument("values", nargs="+")
    p.add_argument(
        "--engine",
        default="fsm",
        choices=sorted(ENGINES),
        help="2-sort engine (default: fsm; 'compiled' is the batch path)",
    )
    p.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="plane backend for --engine compiled",
    )
    p.set_defaults(fn=_cmd_sort)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
