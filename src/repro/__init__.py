"""repro -- Optimal Metastability-Containing Sorting Networks.

A from-scratch Python reproduction of Bund, Lenzen & Medina,
*Optimal Metastability-Containing Sorting Networks* (DATE 2018,
arXiv:1801.07549): asymptotically optimal combinational circuits that
sort Gray-code measurements *without resolving metastability first*.

Quickstart
----------
>>> from repro import Word, build_two_sort, evaluate_words
>>> circuit = build_two_sort(4)            # the paper's 2-sort(4)
>>> out = evaluate_words(circuit, Word("0M10"), Word("0110"))
>>> str(out[:4]), str(out[4:])             # (max, min)
('0110', '0M10')

Layers (see DESIGN.md):

* :mod:`repro.ternary`   -- {0, 1, M} logic, resolution/superposition/closure
* :mod:`repro.graycode`  -- reflected Gray code, valid strings, ordered max/min
* :mod:`repro.circuits`  -- netlists, 3-valued simulation, cost models
* :mod:`repro.ppc`       -- Ladner-Fischer parallel prefix framework
* :mod:`repro.core`      -- the paper's 2-sort(B) construction
* :mod:`repro.baselines` -- DATE 2017 reconstruction and Bin-comp
* :mod:`repro.networks`  -- sorting-network topologies and composition
* :mod:`repro.analysis`  -- Table 7 / Table 8 / Figure 1 measurement
* :mod:`repro.verify`    -- exhaustive checkers and workload generators
"""

from .ternary import META, ONE, ZERO, Trit, Word, resolutions, superpose, word
from .graycode import (
    all_valid_strings,
    gray_decode,
    gray_encode,
    is_valid,
    make_valid,
    max_rg_closure,
    min_rg_closure,
    rank,
    two_sort_closure,
)
from .circuits import (
    Circuit,
    CompiledCircuit,
    CostReport,
    TritVec,
    compile_circuit,
    evaluate_words,
    logic_depth,
    report,
)
from .core import build_two_sort, predicted_gate_count, two_sort_via_fsm
from .baselines import build_bincomp_two_sort, build_date17_two_sort
from .networks import (
    SORT4,
    SORT7,
    SORT10_DEPTH,
    SORT10_SIZE,
    TABLE8_NETWORKS,
    SortingNetwork,
    batcher_odd_even,
    build_sorting_circuit,
    sort_words,
    sort_words_batch,
)
from .analysis import measure_network, measure_two_sort, table7_rows, table8_rows
from .verify import (
    ValidStringSource,
    verify_random_pairs,
    verify_two_sort_circuit,
)

__version__ = "1.0.0"

__all__ = [
    "META",
    "ONE",
    "ZERO",
    "Trit",
    "Word",
    "resolutions",
    "superpose",
    "word",
    "all_valid_strings",
    "gray_decode",
    "gray_encode",
    "is_valid",
    "make_valid",
    "max_rg_closure",
    "min_rg_closure",
    "rank",
    "two_sort_closure",
    "Circuit",
    "CompiledCircuit",
    "CostReport",
    "TritVec",
    "compile_circuit",
    "evaluate_words",
    "logic_depth",
    "report",
    "build_two_sort",
    "predicted_gate_count",
    "two_sort_via_fsm",
    "build_bincomp_two_sort",
    "build_date17_two_sort",
    "SORT4",
    "SORT7",
    "SORT10_DEPTH",
    "SORT10_SIZE",
    "TABLE8_NETWORKS",
    "SortingNetwork",
    "batcher_odd_even",
    "build_sorting_circuit",
    "sort_words",
    "sort_words_batch",
    "measure_network",
    "measure_two_sort",
    "table7_rows",
    "table8_rows",
    "ValidStringSource",
    "verify_random_pairs",
    "verify_two_sort_circuit",
    "__version__",
]
