"""``Bin-comp``: the standard, non-containing binary comparator baseline.

The paper's third design point (Section 6, Listing 1): a plain VHDL
``if (a > b)`` comparator on *binary* (not Gray) inputs, synthesised
with the full standard-cell library -- including XOR and MUX cells --
and conventional optimisation.  It is smaller and fast, but **not**
metastability-containing: a single metastable input bit can make the
select signal metastable, poisoning *both* outputs in positions where
the inputs differ (demonstrated by ``repro.verify`` and the fault
injection example).

Two comparator structures are provided, mirroring the paper's
observation that the synthesis optimiser switched structures between
B = 8 and B = 16 ("resulting in a decrease of the delay of the binary
implementation"):

* ``ripple`` -- LSB-to-MSB greater-than chain, minimal area,
  delay Θ(B);
* ``tree`` -- the (equality, greater) pair is an associative monoid, so
  the chain is replaced by a balanced reduction, delay Θ(log B).

``style="auto"`` (default) uses ripple up to 8 bits and tree above,
like the paper's tool did.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuits.builder import mux_word_cell
from ..circuits.gates import AND2, INV, OR2, XNOR2
from ..circuits.netlist import Circuit, NetId

#: Published Bin-comp numbers from Table 7: ``width -> (gates, area, delay)``.
PUBLISHED_BINCOMP_2SORT = {
    2: (8, 15.582, 145),
    4: (19, 34.58, 288),
    8: (41, 73.752, 477),
    16: (81, 151.648, 422),
}


def _bit_terms(
    circuit: Circuit, a: Sequence[NetId], b: Sequence[NetId]
) -> Tuple[List[NetId], List[NetId]]:
    """Per-bit (equal, greater) signals: ``e_i = a_i ⊙ b_i``,
    ``t_i = a_i · b̄_i``."""
    eq: List[NetId] = []
    gt: List[NetId] = []
    for ai, bi in zip(a, b):
        nb = circuit.add_gate(INV, [bi])
        gt.append(circuit.add_gate(AND2, [ai, nb]))
        eq.append(circuit.add_gate(XNOR2, [ai, bi]))
    return eq, gt


def _greater_ripple(
    circuit: Circuit, eq: List[NetId], gt: List[NetId]
) -> NetId:
    """``a > b`` via an MSB-first ripple: ``G_i = t_i + e_i·G_{i+1}``."""
    acc = gt[-1]
    for e, t in zip(reversed(eq[:-1]), reversed(gt[:-1])):
        acc = circuit.add_gate(OR2, [t, circuit.add_gate(AND2, [e, acc])])
    return acc


def _greater_tree(
    circuit: Circuit, eq: List[NetId], gt: List[NetId]
) -> NetId:
    """``a > b`` via balanced reduction of the (e, t) comparison monoid.

    ``(e_L, t_L) ∘ (e_R, t_R) = (e_L·e_R, t_L + e_L·t_R)`` with the left
    operand covering more-significant bits.
    """
    pairs: List[Tuple[NetId, NetId]] = list(zip(eq, gt))
    while len(pairs) > 1:
        nxt: List[Tuple[NetId, NetId]] = []
        for i in range(0, len(pairs) - 1, 2):
            (el, tl), (er, tr) = pairs[i], pairs[i + 1]
            e = circuit.add_gate(AND2, [el, er])
            t = circuit.add_gate(OR2, [tl, circuit.add_gate(AND2, [el, tr])])
            nxt.append((e, t))
        if len(pairs) % 2:
            nxt.append(pairs[-1])
        pairs = nxt
    return pairs[0][1]


def build_bincomp_two_sort(width: int, style: str = "auto") -> Circuit:
    """Non-containing binary 2-sort: comparator + two MUX2 banks.

    Inputs ``a_1..a_B, b_1..b_B`` (plain binary, MSB first); outputs the
    larger word then the smaller word.  ``style`` in
    {"ripple", "tree", "auto"}.
    """
    if width < 1:
        raise ValueError("comparator width must be >= 1")
    if style == "auto":
        style = "ripple" if width <= 8 else "tree"
    if style not in ("ripple", "tree"):
        raise ValueError(f"unknown comparator style {style!r}")

    circuit = Circuit(f"bincomp_{width}b_{style}")
    a = [circuit.add_input(f"a{i}") for i in range(1, width + 1)]
    b = [circuit.add_input(f"b{i}") for i in range(1, width + 1)]

    if width == 1:
        nb = circuit.add_gate(INV, [b[0]])
        greater = circuit.add_gate(AND2, [a[0], nb])
    else:
        eq, gt = _bit_terms(circuit, a, b)
        if style == "ripple":
            greater = _greater_ripple(circuit, eq, gt)
        else:
            greater = _greater_tree(circuit, eq, gt)

    # greater = 1 -> max is a; both outputs share the select (Listing 1).
    circuit.add_outputs(mux_word_cell(circuit, greater, b, a))
    circuit.add_outputs(mux_word_cell(circuit, greater, a, b))
    return circuit


def predicted_bincomp_gate_count(width: int, style: str = "auto") -> int:
    """Closed-form gate count of :func:`build_bincomp_two_sort`."""
    if width < 1:
        raise ValueError("comparator width must be >= 1")
    if style == "auto":
        style = "ripple" if width <= 8 else "tree"
    if width == 1:
        return 2 + 2  # INV + AND + two MUX2
    prep = 3 * width
    if style == "ripple":
        chain = 2 * (width - 1)
    else:
        chain = 3 * (width - 1)
    return prep + chain + 2 * width
