"""Comparison baselines from the paper's evaluation (Section 6).

* :mod:`~repro.baselines.date17` -- reconstruction of the Θ(B log B)
  metastability-containing 2-sort of Bund et al., DATE 2017 [2];
* :mod:`~repro.baselines.bincomp` -- ``Bin-comp``, the standard
  non-containing binary comparator + multiplexer design.
"""

from .date17 import (
    PUBLISHED_DATE17_2SORT,
    build_date17_two_sort,
    predicted_date17_gate_count,
)
from .bincomp import (
    PUBLISHED_BINCOMP_2SORT,
    build_bincomp_two_sort,
    predicted_bincomp_gate_count,
)

__all__ = [
    "PUBLISHED_DATE17_2SORT",
    "build_date17_two_sort",
    "predicted_date17_gate_count",
    "PUBLISHED_BINCOMP_2SORT",
    "build_bincomp_two_sort",
    "predicted_bincomp_gate_count",
]
