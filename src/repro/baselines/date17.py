"""Reconstruction of the DATE 2017 baseline [2]: near-optimal MC 2-sort.

The paper compares against Bund/Lenzen/Medina, *Near-Optimal
Metastability-Containing Sorting Networks* (DATE 2017), whose 2-sort(B)
uses ``Θ(B log B)`` gates -- a ``Θ(log B)`` factor more than the 2018
construction.  The exact DATE 2017 netlists are not public, so this is
a **documented reconstruction** (see DESIGN.md "Substitutions"): a
divide-and-conquer comparator-sorter that

* splits each string into high and low halves and recurses on both
  pairs (two independent sub-sorters -- *no prefix sharing*, which is
  precisely the redundancy the 2018 paper eliminates via PPC),
* combines the halves' FSM states with one hatted ``⋄̂_M`` cell, and
* selects every low-half output bit through a tree of
  metastability-containing multiplexers (the ``cmux`` of [6], with the
  consensus term ``a·b`` that forwards agreeing data under a metastable
  select) keyed on the high-half comparison state.

The recursion satisfies ``f(B) = 2·f(B/2) + Θ(B)``, i.e.
``f(B) = Θ(B log B)``, reproducing the baseline's asymptotics and
landing within ~15% of its published gate counts (34/160/504/1344 for
B = 2/4/8/16; our reconstruction gives 48/168/468/1188).  Benchmarks
report both measured and published numbers.

Correctness (gate-level output == ``max_rg_M``/``min_rg_M`` closure) is
checked exhaustively in the tests, exactly like the 2018 design.
"""

from __future__ import annotations

from typing import List, Tuple

from ..circuits.builder import and2, inv, or2
from ..circuits.netlist import Circuit, NetId
from ..core.selection import StateNets, build_diamond_hat_cell


def _cmux(
    circuit: Circuit, sel: NetId, nsel: NetId, a: NetId, b: NetId
) -> NetId:
    """The cmux of [6]: ``s̄·a + s·b + a·b`` (5 gates; inverter shared).

    Unlike a plain AND/OR mux, the consensus term ``a·b`` keeps the
    output stable when ``sel`` is metastable but both data agree --
    required for containment of the select trees below.
    """
    return or2(
        circuit,
        or2(circuit, and2(circuit, nsel, a), and2(circuit, sel, b)),
        and2(circuit, a, b),
    )


def _select4(
    circuit: Circuit,
    s_hat: StateNets,
    ns1: NetId,
    ns2: NetId,
    eq0_val: NetId,
    lt_val: NetId,
    eq1_val: NetId,
    gt_val: NetId,
) -> NetId:
    """4-way MC selection keyed on a hatted FSM state.

    ``s_hat = (s̄1, s2)``; state map: 00 → eq0, 01 → lt, 11 → eq1,
    10 → gt.  Built as a tree of three cmuxes (15 gates; the state
    inverters ``ns1 = s1``, ``ns2 = s̄2`` are created once per module
    level and shared).
    """
    s1_bar, s2 = s_hat
    # s1 = 0 branch (states 00 / 01, i.e. s̄1 = 1): select by s2.
    low_branch = _cmux(circuit, s2, ns2, eq0_val, lt_val)
    # s1 = 1 branch (states 10 / 11): select by s2.
    high_branch = _cmux(circuit, s2, ns2, gt_val, eq1_val)
    # Outer select by s1; note sel = s1 = ¬s̄1 = ns1, nsel = s̄1.
    return _cmux(circuit, ns1, s1_bar, low_branch, high_branch)


def _build_recursive(
    circuit: Circuit, g: List[NetId], h: List[NetId]
) -> Tuple[StateNets, List[NetId], List[NetId]]:
    """Returns ``(hatted FSM state, max bits, min bits)`` for ``g`` vs ``h``."""
    width = len(g)
    if width == 1:
        s_hat: StateNets = (inv(circuit, g[0]), h[0])
        return (s_hat, [or2(circuit, g[0], h[0])], [and2(circuit, g[0], h[0])])

    half = (width + 1) // 2
    s_hi, max_hi, min_hi = _build_recursive(circuit, g[:half], h[:half])
    s_lo, max_lo, min_lo = _build_recursive(circuit, g[half:], h[half:])

    # Full-prefix state (for the parent): s = s_hi ⋄ s_lo, hatted domain.
    s_full = build_diamond_hat_cell(circuit, s_hi, s_lo)

    # Shared state inverters for this module level.
    ns1 = inv(circuit, s_hi[0])  # = s1
    ns2 = inv(circuit, s_hi[1])  # = s̄2

    max_bits = list(max_hi)
    min_bits = list(min_hi)
    for i in range(width - half):
        max_bits.append(
            _select4(
                circuit, s_hi, ns1, ns2,
                eq0_val=max_lo[i], lt_val=h[half + i],
                eq1_val=min_lo[i], gt_val=g[half + i],
            )
        )
        min_bits.append(
            _select4(
                circuit, s_hi, ns1, ns2,
                eq0_val=min_lo[i], lt_val=g[half + i],
                eq1_val=max_lo[i], gt_val=h[half + i],
            )
        )
    return (s_full, max_bits, min_bits)


def build_date17_two_sort(width: int) -> Circuit:
    """DATE 2017-style MC ``2-sort(width)`` (reconstruction).

    Same interface as :func:`repro.core.two_sort.build_two_sort`:
    inputs ``g_1..g_B, h_1..h_B``, outputs ``max`` then ``min`` bits.
    """
    if width < 1:
        raise ValueError("2-sort width must be >= 1")
    circuit = Circuit(f"date17_two_sort_{width}b")
    g = [circuit.add_input(f"g{i}") for i in range(1, width + 1)]
    h = [circuit.add_input(f"h{i}") for i in range(1, width + 1)]
    _, max_bits, min_bits = _build_recursive(circuit, g, h)
    circuit.add_outputs(max_bits)
    circuit.add_outputs(min_bits)
    return circuit


def predicted_date17_gate_count(width: int) -> int:
    """Closed-form gate count of the reconstruction.

    ``f(1) = 3``; ``f(B) = f(⌈B/2⌉) + f(⌊B/2⌋) + 12 + 30·⌊B/2⌋``
    (one ⋄̂ cell, two shared inverters, and two 15-gate select trees per
    low-half bit).
    """
    if width < 1:
        raise ValueError("2-sort width must be >= 1")
    if width == 1:
        return 3
    half = (width + 1) // 2
    low = width - half
    return (
        predicted_date17_gate_count(half)
        + predicted_date17_gate_count(low)
        + 12
        + 30 * low
    )


#: Published DATE 2017 numbers from Table 7 of the 2018 paper:
#: ``width -> (gates, area_um2, delay_ps)``.
PUBLISHED_DATE17_2SORT = {
    2: (34, 49.42, 268),
    4: (160, 230.3, 498),
    8: (504, 723.52, 827),
    16: (1344, 1928.262, 1233),
}
