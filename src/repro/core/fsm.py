"""The Gray code comparison FSM of the paper's Fig. 2.

Scanning two stable codewords ``g, h`` MSB-first, the machine tracks one
of four facts about the prefixes read so far:

====== =========================================  ==========
state  meaning                                     encoding
====== =========================================  ==========
EQ0    ``g_{1,i} = h_{1,i}`` with parity 0         ``00``
EQ1    ``g_{1,i} = h_{1,i}`` with parity 1         ``11``
LT     ``<g> < <h>`` decided                       ``01``
GT     ``<g> > <h>`` decided                       ``10``
====== =========================================  ==========

``LT``/``GT`` are absorbing.  Correctness rests on Lemma 3.2: at the
first differing bit, *which* string is larger depends only on the prefix
parity, because the reflected code "counts down" inside the upper half.
The final state directly yields max/min per bit (Table 4), and the
transition operator ``⋄`` is associative (Observation 3.3) -- the fact
the whole paper leverages.
"""

from __future__ import annotations

from typing import List, Tuple

from ..ternary.trit import Trit
from ..ternary.word import Word

#: State encodings (Fig. 2, square brackets).
EQ_EVEN = Word("00")
LESS = Word("01")
EQ_ODD = Word("11")
GREATER = Word("10")

ALL_STATES = (EQ_EVEN, LESS, EQ_ODD, GREATER)

#: Initial state: equal empty prefixes, parity 0.
INITIAL = EQ_EVEN


def fsm_step(state: Word, g_bit: Trit, h_bit: Trit) -> Word:
    """One transition of the Fig. 2 automaton on stable inputs.

    Equivalent to the ``⋄`` operator with the state as left operand
    (:mod:`repro.core.diamond` provides the table-driven form).
    """
    if state == EQ_EVEN:
        # Bits equal: parity toggles iff the common bit is 1; otherwise
        # Lemma 3.2 with parity 0: g_i = 1 means g is larger.
        if g_bit is h_bit:
            return EQ_ODD if g_bit is Trit.ONE else EQ_EVEN
        return GREATER if g_bit is Trit.ONE else LESS
    if state == EQ_ODD:
        if g_bit is h_bit:
            return EQ_EVEN if g_bit is Trit.ONE else EQ_ODD
        # Parity 1 reverses the comparison (the code is counting down).
        return LESS if g_bit is Trit.ONE else GREATER
    # LT / GT are absorbing.
    return state


def run_fsm(g: Word, h: Word) -> List[Word]:
    """All states ``s^{(0)} .. s^{(B)}`` for stable codewords ``g, h``."""
    if len(g) != len(h):
        raise ValueError("width mismatch")
    states = [INITIAL]
    for i in range(1, len(g) + 1):
        states.append(fsm_step(states[-1], g.bit(i), h.bit(i)))
    return states


def classify(g: Word, h: Word) -> Word:
    """Final state: GT / LT, or EQ with the parity of the common value."""
    return run_fsm(g, h)[-1]


def output_bits(state: Word, g_bit: Trit, h_bit: Trit) -> Tuple[Trit, Trit]:
    """Table 4: ``(max_i, min_i)`` from the pre-bit state and the bit pair.

    Stable-input form; the closure lives in :mod:`repro.core.out_op`.
    """
    from ..ternary.kleene import kleene_and, kleene_or

    if state == EQ_EVEN:
        return (kleene_or(g_bit, h_bit), kleene_and(g_bit, h_bit))
    if state == GREATER:
        return (g_bit, h_bit)
    if state == EQ_ODD:
        return (kleene_and(g_bit, h_bit), kleene_or(g_bit, h_bit))
    if state == LESS:
        return (h_bit, g_bit)
    raise ValueError(f"not an FSM state: {state!r}")


def two_sort_via_fsm_stable(g: Word, h: Word) -> Tuple[Word, Word]:
    """Reference 2-sort on *stable* codewords through the FSM (Section 3).

    Checked against the decoding-based spec in the tests; this is the
    construction Lemma 3.2 justifies.
    """
    states = run_fsm(g, h)
    max_bits = []
    min_bits = []
    for i in range(1, len(g) + 1):
        mx, mn = output_bits(states[i - 1], g.bit(i), h.bit(i))
        max_bits.append(mx)
        min_bits.append(mn)
    return (Word(max_bits), Word(min_bits))
