"""Value-level 2-sort implementations (the proofs' decompositions).

Three independent routes to ``(max_rg_M, min_rg_M)`` exist in this
package; agreement between them on all valid inputs is the core
correctness evidence for the reproduction:

1. the closure *specification* (:func:`repro.graycode.ops.two_sort_closure`),
2. this module's **FSM decomposition**: prefix states via ``⋄_M``
   (serial or Ladner-Fischer order -- identical by Theorem 4.1), output
   bits via ``out_M`` (Theorem 4.3),
3. the **gate-level circuit** (:func:`repro.core.two_sort.build_two_sort`)
   simulated in three-valued logic.
"""

from __future__ import annotations

from typing import List, Tuple

from ..graycode.valid import validate
from ..ppc.prefix import ladner_fischer_prefixes, serial_prefixes
from ..ternary.word import Word
from .diamond import diamond_m
from .out_op import out_m


def _pairs(g: Word, h: Word) -> List[Word]:
    """The input items ``g_i h_i`` fed to the prefix computation."""
    if len(g) != len(h):
        raise ValueError("width mismatch")
    return [Word([g.bit(i), h.bit(i)]) for i in range(1, len(g) + 1)]


def prefix_states(g: Word, h: Word, order: str = "ladner_fischer") -> List[Word]:
    """All closure states ``s^{(0)}_M .. s^{(B)}_M``.

    ``order`` picks the evaluation order of the ``⋄_M`` fold; on valid
    strings the result is order-independent (Theorem 4.1).
    """
    items = _pairs(g, h)
    if order == "serial":
        prefixes = serial_prefixes(items, diamond_m)
    elif order == "ladner_fischer":
        prefixes = ladner_fischer_prefixes(items, diamond_m)
    else:
        raise ValueError(f"unknown order {order!r}")
    return [Word("00")] + prefixes


def two_sort_via_fsm(
    g: Word, h: Word, order: str = "ladner_fischer", check_valid: bool = True
) -> Tuple[Word, Word]:
    """``(max_rg_M, min_rg_M)`` via the paper's decomposition.

    Computes ``out_M(s^{(i-1)}_M, g_i h_i)`` for every position
    (Theorem 4.3).  With ``check_valid`` the inputs are asserted to be
    valid strings first -- outside ``S^B_rg`` the theorems do not apply
    and the result is unspecified.
    """
    if check_valid:
        validate(g)
        validate(h)
    states = prefix_states(g, h, order=order)
    items = _pairs(g, h)
    max_bits = []
    min_bits = []
    for i in range(1, len(g) + 1):
        pair = out_m(states[i - 1], items[i - 1])
        max_bits.append(pair.bit(1))
        min_bits.append(pair.bit(2))
    return (Word(max_bits), Word(min_bits))
