"""The ``⋄`` transition operator, its closure, and the hatted variant.

``⋄`` (Table 5, left) expresses the FSM transition as a binary operator
on 2-bit state/input codes so that ``s^{(i)} = ⋄_{j≤i} g_j h_j``.  It is
associative (Observation 3.3); its metastable closure ``⋄_M`` is *not*
associative in general but behaves associatively on inputs arising from
valid strings (Theorem 4.1) -- the linchpin that lets the paper use
parallel prefix computation.

The gate-level implementation works with *inverted first bits*:
``N(x) := x̄_1 x_2`` and ``x ⋄̂ y := N(Nx ⋄ Ny)`` (Section 5.1).  This
saves inverters inside the 10-gate selection cells; the PPC operates
entirely in the hatted domain.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ternary.kleene import kleene_not
from ..ternary.resolution import metastable_closure
from ..ternary.word import Word

#: Table 5 (left): first operand indexes rows, second columns.
DIAMOND_TABLE: Dict[Tuple[str, str], str] = {
    ("00", "00"): "00", ("00", "01"): "01", ("00", "11"): "11", ("00", "10"): "10",
    ("01", "00"): "01", ("01", "01"): "01", ("01", "11"): "01", ("01", "10"): "01",
    ("11", "00"): "11", ("11", "01"): "10", ("11", "11"): "00", ("11", "10"): "01",
    ("10", "00"): "10", ("10", "01"): "10", ("10", "11"): "10", ("10", "10"): "10",
}


def diamond(a: Word, b: Word) -> Word:
    """``a ⋄ b`` on stable 2-bit words (Table 5)."""
    _check2(a)
    _check2(b)
    return Word(DIAMOND_TABLE[(str(a), str(b))])


#: ``⋄_M``: metastable closure of ``⋄`` (Definition 2.7).
diamond_m = metastable_closure(diamond)
diamond_m.__name__ = "diamond_m"


def n_transform(x: Word) -> Word:
    """``N(x) = x̄_1 x_2``: invert the first bit (M stays M)."""
    _check2(x)
    return Word([kleene_not(x.bit(1)), x.bit(2)])


def diamond_hat(x: Word, y: Word) -> Word:
    """``x ⋄̂ y = N(Nx ⋄ Ny)`` on stable 2-bit words."""
    return n_transform(diamond(n_transform(x), n_transform(y)))


#: ``⋄̂_M``: closure of the hatted operator; equals ``N(⋄_M(Nx, Ny))``
#: because ``N`` is a bit permutation-with-inversion (closure commutes
#: with per-bit inversions) -- a fact the tests verify.
diamond_hat_m = metastable_closure(diamond_hat)
diamond_hat_m.__name__ = "diamond_hat_m"


def _check2(w: Word) -> None:
    if len(w) != 2:
        raise ValueError(f"expected a 2-bit word, got {w!r}")


# ----------------------------------------------------------------------
# Non-associativity of closures in general (paper's counter-example)
# ----------------------------------------------------------------------
def add_mod4(a: Word, b: Word) -> Word:
    """Binary addition modulo 4 on 2-bit words (MSB first).

    An associative Boolean operator whose closure is *not* associative:
    ``(0M +_M 01) +_M 01 = MM`` while ``0M +_M (01 +_M 01) = 1M``
    (Section 4.1).  Exists to make the paper's cautionary remark
    executable; see ``tests/test_diamond.py``.
    """
    _check2(a)
    _check2(b)
    return Word.from_int((a.to_int() + b.to_int()) % 4, 2)


add_mod4_m = metastable_closure(add_mod4)
add_mod4_m.__name__ = "add_mod4_m"
